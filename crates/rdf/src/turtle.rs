//! A Turtle subset parser and serializer.
//!
//! Supports the Turtle features real KG dumps rely on day-to-day:
//! `@prefix`/`@base`-free prefixed names, the `a` keyword, `;` predicate
//! lists, `,` object lists, `_:` blank nodes, string literals with escapes,
//! language tags, `^^` datatypes, and bare numeric/boolean literal
//! shorthand. Out of scope (rejected with an error, never silently
//! mis-parsed): collections `( … )`, anonymous blank nodes `[ … ]`, and
//! `@base`-relative IRIs.

use crate::error::RdfError;
use crate::hash::FxHashMap;
use crate::literal::Literal;
use crate::term::{BlankNode, Iri, Term};
use crate::triple::{Graph, Triple};
use crate::vocab::{rdf, xsd};
use std::fmt::Write as _;

/// Parse a Turtle document into a [`Graph`].
pub fn parse_turtle(input: &str) -> Result<Graph, RdfError> {
    Parser::new(input).parse()
}

/// Serialize a graph as Turtle, grouping by subject with `;` lists and
/// shortening IRIs under `prefixes` (pairs of `(prefix, namespace)`).
pub fn write_turtle(graph: &Graph, prefixes: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (prefix, ns) in prefixes {
        let _ = writeln!(out, "@prefix {prefix}: <{ns}> .");
    }
    if !prefixes.is_empty() {
        out.push('\n');
    }

    let shorten = |term: &Term| -> String {
        if let Term::Iri(iri) = term {
            for (prefix, ns) in prefixes {
                if let Some(local) = iri.as_str().strip_prefix(ns) {
                    if !local.is_empty()
                        && local
                            .chars()
                            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                    {
                        return format!("{prefix}:{local}");
                    }
                }
            }
        }
        term.to_string()
    };

    let mut last_subject: Option<&Term> = None;
    for triple in graph.iter() {
        let predicate = if triple.predicate.as_iri().map(Iri::as_str) == Some(rdf::TYPE) {
            "a".to_string()
        } else {
            shorten(&triple.predicate)
        };
        if last_subject == Some(&triple.subject) {
            let _ = write!(out, " ;\n    {} {}", predicate, shorten(&triple.object));
        } else {
            if last_subject.is_some() {
                out.push_str(" .\n");
            }
            let _ = write!(
                out,
                "{} {} {}",
                shorten(&triple.subject),
                predicate,
                shorten(&triple.object)
            );
            last_subject = Some(&triple.subject);
        }
    }
    if last_subject.is_some() {
        out.push_str(" .\n");
    }
    out
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    prefixes: FxHashMap<String, String>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Parser<'a> {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            line: 1,
            prefixes: FxHashMap::default(),
        }
    }

    fn err(&self, message: impl Into<String>) -> RdfError {
        RdfError::Syntax {
            line: self.line,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'#' => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), RdfError> {
        if self.eat(byte) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {:?}, found {:?}",
                byte as char,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn parse(mut self) -> Result<Graph, RdfError> {
        let mut graph = Graph::new();
        loop {
            self.skip_ws();
            if self.pos >= self.bytes.len() {
                return Ok(graph);
            }
            if self.input[self.pos..].starts_with("@prefix") {
                self.parse_prefix()?;
                continue;
            }
            if self.input[self.pos..].starts_with("@base") {
                return Err(self.err("@base is not supported by this Turtle subset"));
            }
            self.parse_statement(&mut graph)?;
        }
    }

    fn parse_prefix(&mut self) -> Result<(), RdfError> {
        self.pos += "@prefix".len();
        self.skip_ws();
        let name_start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
        {
            self.pos += 1;
        }
        let prefix = self.input[name_start..self.pos].to_string();
        self.expect(b':')?;
        self.skip_ws();
        let iri = match self.parse_term()? {
            Term::Iri(iri) => iri,
            other => return Err(self.err(format!("expected IRI in @prefix, found {other}"))),
        };
        self.skip_ws();
        self.expect(b'.')?;
        self.prefixes.insert(prefix, iri.as_str().to_string());
        Ok(())
    }

    fn parse_statement(&mut self, graph: &mut Graph) -> Result<(), RdfError> {
        let subject = self.parse_term()?;
        loop {
            self.skip_ws();
            let predicate = if self.peek() == Some(b'a') && self.is_bare_a() {
                self.pos += 1;
                Term::iri(rdf::TYPE)
            } else {
                self.parse_term()?
            };
            loop {
                self.skip_ws();
                let object = self.parse_term()?;
                graph.insert(Triple::new(subject.clone(), predicate.clone(), object)?);
                self.skip_ws();
                if !self.eat(b',') {
                    break;
                }
            }
            if !self.eat(b';') {
                break;
            }
            self.skip_ws();
            // Dangling ';' before '.' is legal Turtle.
            if self.peek() == Some(b'.') {
                break;
            }
        }
        self.skip_ws();
        self.expect(b'.')?;
        Ok(())
    }

    /// Is the `a` at the cursor the bare keyword (vs. a prefixed name)?
    fn is_bare_a(&self) -> bool {
        matches!(
            self.bytes.get(self.pos + 1),
            Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r') | Some(b'<')
        )
    }

    fn parse_term(&mut self) -> Result<Term, RdfError> {
        self.skip_ws();
        match self.peek() {
            Some(b'<') => {
                self.pos += 1;
                let start = self.pos;
                while self.peek().is_some_and(|b| b != b'>') {
                    self.pos += 1;
                }
                let iri = self.input[start..self.pos].to_string();
                self.expect(b'>')?;
                Ok(Term::Iri(Iri::new(iri)?))
            }
            Some(b'_') => {
                self.pos += 1;
                self.expect(b':')?;
                let start = self.pos;
                while self
                    .peek()
                    .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
                {
                    self.pos += 1;
                }
                Ok(Term::Blank(BlankNode::new(&self.input[start..self.pos])?))
            }
            Some(b'"') | Some(b'\'') => self.parse_literal(),
            Some(b'[') => Err(self.err("anonymous blank nodes are not supported")),
            Some(b'(') => Err(self.err("collections are not supported")),
            Some(b) if b.is_ascii_digit() || b == b'-' || b == b'+' => self.parse_numeric(),
            Some(_) => self.parse_prefixed_or_keyword(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self) -> Result<Term, RdfError> {
        let quote = self.bytes[self.pos];
        self.pos += 1;
        let mut value = String::new();
        loop {
            match self.peek() {
                Some(b) if b == quote => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => value.push('"'),
                        Some(b'\'') => value.push('\''),
                        Some(b'\\') => value.push('\\'),
                        Some(b'n') => value.push('\n'),
                        Some(b't') => value.push('\t'),
                        Some(b'r') => value.push('\r'),
                        _ => return Err(self.err("invalid string escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    value.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    let ch = self.input[self.pos..].chars().next().expect("valid utf8");
                    value.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.err("unterminated string literal")),
            }
        }
        // Lang tag or datatype.
        if self.eat(b'@') {
            let start = self.pos;
            while self
                .peek()
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'-')
            {
                self.pos += 1;
            }
            if self.pos == start {
                return Err(self.err("empty language tag"));
            }
            return Ok(Term::Literal(Literal::lang_string(
                value,
                &self.input[start..self.pos],
            )));
        }
        if self.peek() == Some(b'^') {
            self.pos += 1;
            self.expect(b'^')?;
            let datatype = match self.parse_term()? {
                Term::Iri(iri) => iri,
                other => return Err(self.err(format!("expected datatype IRI, found {other}"))),
            };
            return Ok(Term::Literal(Literal::typed(value, datatype)));
        }
        Ok(Term::Literal(Literal::string(value)))
    }

    fn parse_numeric(&mut self) -> Result<Term, RdfError> {
        let start = self.pos;
        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
            self.pos += 1;
        }
        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !saw_dot
                    && !saw_exp
                    && self.bytes.get(self.pos + 1).is_some_and(u8::is_ascii_digit) =>
                {
                    saw_dot = true;
                    self.pos += 1;
                }
                b'e' | b'E' if !saw_exp => {
                    saw_exp = true;
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text = &self.input[start..self.pos];
        let datatype = if saw_exp {
            xsd::DOUBLE
        } else if saw_dot {
            xsd::DECIMAL
        } else {
            xsd::INTEGER
        };
        Ok(Term::Literal(Literal::typed(
            text,
            Iri::new_unchecked(datatype),
        )))
    }

    fn parse_prefixed_or_keyword(&mut self) -> Result<Term, RdfError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
        {
            self.pos += 1;
        }
        let word = &self.input[start..self.pos];
        if self.eat(b':') {
            let local_start = self.pos;
            while self
                .peek()
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
            {
                self.pos += 1;
            }
            let local = &self.input[local_start..self.pos];
            let ns = self
                .prefixes
                .get(word)
                .ok_or_else(|| self.err(format!("undeclared prefix {word:?}")))?;
            return Ok(Term::iri(format!("{ns}{local}")));
        }
        match word {
            "true" => Ok(Term::Literal(Literal::boolean(true))),
            "false" => Ok(Term::Literal(Literal::boolean(false))),
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_prefixed_document() {
        let doc = "\
@prefix ex: <http://e/> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .

ex:alice a foaf:Person ;
    foaf:name \"Alice\" ;
    foaf:knows ex:bob , ex:carol .
ex:bob foaf:age 42 .
";
        let g = parse_turtle(doc).expect("parses");
        // alice: type + name + knows×2; bob: age.
        assert_eq!(g.len(), 5);
        assert!(g.contains(&Triple::new_unchecked(
            Term::iri("http://e/alice"),
            Term::iri(rdf::TYPE),
            Term::iri("http://xmlns.com/foaf/0.1/Person"),
        )));
        assert!(g.contains(&Triple::new_unchecked(
            Term::iri("http://e/bob"),
            Term::iri("http://xmlns.com/foaf/0.1/age"),
            Term::Literal(Literal::typed("42", Iri::new_unchecked(xsd::INTEGER))),
        )));
    }

    #[test]
    fn numeric_and_boolean_shorthand() {
        let doc = "<http://e/s> <http://e/p> 5 . \
                   <http://e/s> <http://e/q> 2.5 . \
                   <http://e/s> <http://e/r> 1e3 . \
                   <http://e/s> <http://e/b> true .";
        let g = parse_turtle(doc).unwrap();
        assert_eq!(g.len(), 4);
        let datatypes: Vec<String> = g
            .iter()
            .map(|t| t.object.as_literal().unwrap().datatype_str().to_string())
            .collect();
        assert!(datatypes.contains(&xsd::INTEGER.to_string()));
        assert!(datatypes.contains(&xsd::DECIMAL.to_string()));
        assert!(datatypes.contains(&xsd::DOUBLE.to_string()));
        assert!(datatypes.contains(&xsd::BOOLEAN.to_string()));
    }

    #[test]
    fn lang_and_datatype_literals() {
        let doc = "@prefix x: <http://x/> .\n\
                   x:s x:p \"bonjour\"@fr ; x:q \"2020\"^^x:year .";
        let g = parse_turtle(doc).unwrap();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn blank_nodes_and_single_quotes() {
        let doc = "_:b1 <http://e/p> 'single' .";
        let g = parse_turtle(doc).unwrap();
        let t = g.iter().next().unwrap();
        assert!(t.subject.is_blank());
        assert_eq!(t.object.as_literal().unwrap().lexical(), "single");
    }

    #[test]
    fn errors_are_informative() {
        assert!(parse_turtle("@base <http://e/> .").is_err());
        assert!(parse_turtle("<http://e/s> <http://e/p> [ ] .").is_err());
        assert!(parse_turtle("<http://e/s> <http://e/p> (1 2) .").is_err());
        assert!(parse_turtle("x:s x:p x:o .").is_err(), "undeclared prefix");
        assert!(parse_turtle("<http://e/s> <http://e/p> ").is_err());
        // Line numbers survive multi-line documents.
        match parse_turtle("<http://e/s> <http://e/p> <http://e/o> .\n~nonsense") {
            Err(RdfError::Syntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn serializer_round_trips() {
        let doc = "\
@prefix ex: <http://e/> .
ex:a ex:p ex:b ;
    ex:q \"v\" , 5 .
ex:b a ex:C .
";
        let g1 = parse_turtle(doc).unwrap();
        let out = write_turtle(&g1, &[("ex", "http://e/")]);
        let g2 = parse_turtle(&out).unwrap_or_else(|e| panic!("{out}\n{e}"));
        assert_eq!(g1, g2);
    }

    #[test]
    fn serializer_handles_unprefixed_graphs() {
        let mut g = Graph::new();
        g.insert(Triple::new_unchecked(
            Term::iri("http://other/s"),
            Term::iri(rdf::TYPE),
            Term::iri("http://other/C"),
        ));
        let out = write_turtle(&g, &[]);
        assert!(
            out.contains("<http://other/s> a <http://other/C> ."),
            "{out}"
        );
        let back = parse_turtle(&out).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn ntriples_and_turtle_agree() {
        let nt = "\
<http://e/s> <http://e/p> \"x\" .
<http://e/s> <http://e/q> <http://e/o> .
";
        let from_nt = crate::ntriples::parse_ntriples(nt).unwrap();
        let ttl = write_turtle(&from_nt, &[]);
        let from_ttl = parse_turtle(&ttl).unwrap();
        assert_eq!(from_nt, from_ttl);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_term() -> impl Strategy<Value = Term> {
        prop_oneof![
            "[a-z]{1,8}".prop_map(|l| Term::iri(format!("http://example.org/{l}"))),
            "[a-z][a-z0-9]{0,6}".prop_map(Term::blank),
            "[ -~]{0,12}".prop_map(Term::literal_str),
            any::<i64>().prop_map(Term::literal_int),
        ]
    }

    proptest! {
        #[test]
        fn turtle_round_trip(
            triples in proptest::collection::vec(
                (arb_term(), "[a-z]{1,8}", arb_term()),
                0..25,
            )
        ) {
            let mut g1 = Graph::new();
            for (s, p, o) in triples {
                if !s.is_literal() {
                    g1.insert(Triple::new_unchecked(
                        s,
                        Term::iri(format!("http://example.org/{p}")),
                        o,
                    ));
                }
            }
            let text = write_turtle(&g1, &[("ex", "http://example.org/")]);
            let g2 = parse_turtle(&text)
                .unwrap_or_else(|e| panic!("serializer output must parse: {text}\n{e}"));
            prop_assert_eq!(g1, g2);
        }
    }
}
