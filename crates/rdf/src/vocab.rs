//! IRI constants for the vocabularies SOFOS uses.
//!
//! Besides the standard RDF/RDFS/XSD namespaces this declares the `sofos:`
//! namespace used by the materializer (§3.1 of the paper: views are encoded
//! as "extra blank nodes to which is attached the value of the aggregation").

/// The `rdf:` namespace.
pub mod rdf {
    /// `rdf:type` — instance-of edges (also written `a` in Turtle/SPARQL).
    pub const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
}

/// The `rdfs:` namespace.
pub mod rdfs {
    /// `rdfs:label` — human-readable names.
    pub const LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
    /// `rdfs:subClassOf` — class hierarchy edges.
    pub const SUB_CLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
}

/// The `xsd:` datatype namespace.
pub mod xsd {
    /// `xsd:string`.
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    /// `xsd:boolean`.
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
    /// `xsd:integer`.
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    /// `xsd:decimal`.
    pub const DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
    /// `xsd:double`.
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    /// `xsd:dateTime`.
    pub const DATE_TIME: &str = "http://www.w3.org/2001/XMLSchema#dateTime";
    /// `xsd:gYear`.
    pub const G_YEAR: &str = "http://www.w3.org/2001/XMLSchema#gYear";
    /// `rdf:langString` (the datatype of language-tagged strings).
    pub const LANG_STRING: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString";
}

/// The SOFOS namespace: vocabulary of the materialized-view encoding.
pub mod sofos {
    /// Namespace prefix for everything SOFOS writes into `G+`.
    pub const NS: &str = "http://sofos.ics.forth.gr/ns#";
    /// Predicate attaching the SUM component of an observation.
    pub const SUM: &str = "http://sofos.ics.forth.gr/ns#sum";
    /// Predicate attaching the COUNT component of an observation.
    pub const COUNT: &str = "http://sofos.ics.forth.gr/ns#count";
    /// Predicate attaching the MIN component of an observation.
    pub const MIN: &str = "http://sofos.ics.forth.gr/ns#min";
    /// Predicate attaching the MAX component of an observation.
    pub const MAX: &str = "http://sofos.ics.forth.gr/ns#max";
    /// rdf:type object marking an observation blank node.
    pub const OBSERVATION: &str = "http://sofos.ics.forth.gr/ns#Observation";

    /// Predicate binding an observation to the value of grouping dimension
    /// `index` (`sofos:dim0`, `sofos:dim1`, ...).
    pub fn dim(index: usize) -> String {
        format!("{NS}dim{index}")
    }

    /// IRI of the named graph holding the materialized view identified by
    /// the lattice bitmask `mask` of facet `facet_id`.
    pub fn view_graph(facet_id: &str, mask: u64) -> String {
        format!("{NS}view/{facet_id}/{mask}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_iris_are_distinct_and_namespaced() {
        assert_eq!(sofos::dim(0), "http://sofos.ics.forth.gr/ns#dim0");
        assert_ne!(sofos::dim(1), sofos::dim(2));
        assert!(sofos::dim(3).starts_with(sofos::NS));
    }

    #[test]
    fn view_graph_iris_encode_facet_and_mask() {
        let g = sofos::view_graph("pop", 5);
        assert!(g.contains("pop"));
        assert!(g.ends_with("/5"));
        assert_ne!(g, sofos::view_graph("pop", 6));
        assert_ne!(g, sofos::view_graph("other", 5));
    }

    #[test]
    fn xsd_constants_look_like_xsd() {
        for c in [
            xsd::STRING,
            xsd::BOOLEAN,
            xsd::INTEGER,
            xsd::DECIMAL,
            xsd::DOUBLE,
            xsd::DATE_TIME,
            xsd::G_YEAR,
        ] {
            assert!(c.starts_with("http://www.w3.org/2001/XMLSchema#"), "{c}");
        }
    }
}
