//! # sofos-rewrite — answering facet queries from materialized views
//!
//! Implements the paper's §3.2: "When answering a query, Sofos identifies
//! the best view to adopt and translates the input query Q into a query Q′
//! in the expanded RDF graph G+ targeting the data of the selected view. In
//! practice, the translation straightforwardly substitutes aggregate
//! variables with the blank nodes representing the aggregation and
//! reformulates triple patterns accordingly."
//!
//! Pipeline:
//! 1. [`analyze_query`] checks that `Q` targets the facet (same pattern `P`,
//!    grouping over facet dimensions, one aggregate over the measure, extra
//!    `FILTER`s over dimensions only) and extracts its *required mask* —
//!    grouping dims ∪ filter dims;
//! 2. [`best_view`] picks the smallest materialized view covering the mask
//!    (by row count — the relational heuristic whose graph-side fidelity
//!    SOFOS is built to interrogate);
//! 3. [`rewrite_query`] emits `Q′` over the view's named graph, re-deriving
//!    the aggregate from the view's distributive components (SUM of sums,
//!    SUM of counts, MIN of minima, ...; AVG = SUM(sums)/SUM(counts)).

use sofos_cube::{AggOp, Facet, ViewMask};
use sofos_rdf::vocab::sofos;
use sofos_rdf::Iri;
use sofos_sparql::{
    Aggregate, ArithOp, Expr, GraphSpec, GroupPattern, PatternElement, PatternTerm, Query,
    SelectItem, TriplePattern,
};
use std::fmt;

/// Why a query cannot be rewritten (it then runs on the base graph).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// The query's pattern does not match the facet's pattern `P`.
    PatternMismatch(String),
    /// The query groups by a variable that is not a facet dimension.
    UnknownGroupVar(String),
    /// The query has no (or more than one) aggregate over the measure.
    BadAggregate(String),
    /// A filter references a non-dimension variable.
    FilterOutsideDimensions(String),
    /// The aggregate cannot be derived from the facet's materialized
    /// components (e.g. AVG query over a SUM-only facet).
    UnderivableAggregate {
        /// The aggregate the query asked for.
        requested: AggOp,
        /// The facet's aggregate (determines stored components).
        available: AggOp,
    },
    /// Query uses a feature the rewriter does not handle (DISTINCT/HAVING).
    Unsupported(&'static str),
    /// No materialized view covers the query's required dimensions.
    NoCoveringView,
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::PatternMismatch(why) => write!(f, "pattern mismatch: {why}"),
            RewriteError::UnknownGroupVar(v) => {
                write!(f, "grouping variable ?{v} is not a facet dimension")
            }
            RewriteError::BadAggregate(why) => write!(f, "bad aggregate: {why}"),
            RewriteError::FilterOutsideDimensions(v) => {
                write!(f, "filter references non-dimension variable ?{v}")
            }
            RewriteError::UnderivableAggregate {
                requested,
                available,
            } => write!(
                f,
                "{requested} cannot be derived from views materialized for {available}"
            ),
            RewriteError::Unsupported(what) => write!(f, "unsupported feature: {what}"),
            RewriteError::NoCoveringView => write!(f, "no materialized view covers the query"),
        }
    }
}

impl std::error::Error for RewriteError {}

/// The distilled structure of a facet query.
#[derive(Debug, Clone)]
pub struct QueryAnalysis {
    /// Dimensions the query groups by.
    pub group_mask: ViewMask,
    /// Dimensions referenced by extra filters.
    pub filter_mask: ViewMask,
    /// `group_mask ∪ filter_mask` — a view must cover this to apply.
    pub required: ViewMask,
    /// The query's aggregate operator.
    pub agg: AggOp,
    /// Alias of the aggregate output column.
    pub value_alias: String,
    /// Extra filters (beyond the facet pattern), all over dimensions.
    pub filters: Vec<Expr>,
    /// Pass-through `ORDER BY`.
    pub order_by: Vec<sofos_sparql::OrderCond>,
    /// Pass-through `LIMIT`.
    pub limit: Option<usize>,
    /// Pass-through `OFFSET`.
    pub offset: Option<usize>,
}

/// Check that `query` targets `facet` and extract its structure.
pub fn analyze_query(facet: &Facet, query: &Query) -> Result<QueryAnalysis, RewriteError> {
    if query.distinct {
        return Err(RewriteError::Unsupported("DISTINCT"));
    }
    if query.having.is_some() {
        return Err(RewriteError::Unsupported("HAVING"));
    }
    if query.wildcard {
        return Err(RewriteError::Unsupported("SELECT *"));
    }

    // The query pattern must be the facet pattern plus extra FILTERs.
    let mut extra_filters: Vec<Expr> = Vec::new();
    let mut base_elements: Vec<&PatternElement> = Vec::new();
    for element in &query.pattern.elements {
        match element {
            PatternElement::Filter(e) => extra_filters.push(e.clone()),
            other => base_elements.push(other),
        }
    }
    let mut facet_filters: Vec<&Expr> = Vec::new();
    let mut facet_base: Vec<&PatternElement> = Vec::new();
    for element in &facet.pattern.elements {
        match element {
            PatternElement::Filter(e) => facet_filters.push(e),
            other => facet_base.push(other),
        }
    }
    if base_elements.len() != facet_base.len()
        || base_elements.iter().zip(&facet_base).any(|(a, b)| *a != *b)
    {
        return Err(RewriteError::PatternMismatch(
            "triple blocks differ from the facet pattern".into(),
        ));
    }
    // Filters that are part of the facet pattern itself are not "extra".
    extra_filters.retain(|e| !facet_filters.contains(&e));

    // Grouping mask.
    let mut group_mask = ViewMask::APEX;
    for var in &query.group_by {
        match facet.dim_index(var) {
            Some(i) => group_mask = group_mask.with(i),
            None => return Err(RewriteError::UnknownGroupVar(var.clone())),
        }
    }

    // Filters must stay within dimensions.
    let mut filter_mask = ViewMask::APEX;
    for filter in &extra_filters {
        for var in filter.variables() {
            match facet.dim_index(&var) {
                Some(i) => filter_mask = filter_mask.with(i),
                None => return Err(RewriteError::FilterOutsideDimensions(var)),
            }
        }
    }

    // Exactly one aggregate select item over the measure.
    let mut agg_item: Option<(AggOp, String)> = None;
    for item in &query.select {
        match item {
            SelectItem::Var(_) => {}
            SelectItem::Expr { expr, alias } => {
                let Expr::Aggregate(aggregate) = expr else {
                    return Err(RewriteError::BadAggregate(
                        "projected expression is not a plain aggregate".into(),
                    ));
                };
                if agg_item.is_some() {
                    return Err(RewriteError::BadAggregate(
                        "more than one aggregate in SELECT".into(),
                    ));
                }
                let op = classify_aggregate(facet, aggregate)?;
                agg_item = Some((op, alias.clone()));
            }
        }
    }
    let Some((agg, value_alias)) = agg_item else {
        return Err(RewriteError::BadAggregate("no aggregate in SELECT".into()));
    };

    // Derivability: the query aggregate's components must be materialized.
    let available = facet.agg.components();
    if !agg.components().iter().all(|c| available.contains(c)) {
        return Err(RewriteError::UnderivableAggregate {
            requested: agg,
            available: facet.agg,
        });
    }

    Ok(QueryAnalysis {
        group_mask,
        filter_mask,
        required: group_mask.union(filter_mask),
        agg,
        value_alias,
        filters: extra_filters,
        order_by: query.order_by.clone(),
        limit: query.limit,
        offset: query.offset,
    })
}

fn classify_aggregate(facet: &Facet, aggregate: &Aggregate) -> Result<AggOp, RewriteError> {
    let op = match aggregate {
        Aggregate::Count {
            distinct: false,
            expr: None,
        } => return Ok(AggOp::Count),
        Aggregate::Count { distinct: true, .. }
        | Aggregate::Sum { distinct: true, .. }
        | Aggregate::Avg { distinct: true, .. } => {
            return Err(RewriteError::BadAggregate(
                "DISTINCT aggregates are not derivable from views".into(),
            ))
        }
        Aggregate::Count { expr: Some(e), .. } => {
            check_measure(facet, e)?;
            AggOp::Count
        }
        Aggregate::Sum { expr, .. } => {
            check_measure(facet, expr)?;
            AggOp::Sum
        }
        Aggregate::Avg { expr, .. } => {
            check_measure(facet, expr)?;
            AggOp::Avg
        }
        Aggregate::Min { expr } => {
            check_measure(facet, expr)?;
            AggOp::Min
        }
        Aggregate::Max { expr } => {
            check_measure(facet, expr)?;
            AggOp::Max
        }
    };
    Ok(op)
}

fn check_measure(facet: &Facet, expr: &Expr) -> Result<(), RewriteError> {
    match expr {
        Expr::Var(v) if *v == facet.measure => Ok(()),
        other => Err(RewriteError::BadAggregate(format!(
            "aggregate argument {other:?} is not the facet measure ?{}",
            facet.measure
        ))),
    }
}

/// Pick the best applicable view: the covering view with the fewest rows
/// (ties broken by mask for determinism). `views` pairs each materialized
/// mask with its row count.
pub fn best_view(views: &[(ViewMask, usize)], required: ViewMask) -> Option<ViewMask> {
    views
        .iter()
        .filter(|(mask, _)| mask.covers(required))
        .min_by_key(|(mask, rows)| (*rows, mask.0))
        .map(|(mask, _)| *mask)
}

/// Build `Q′`: the rewritten query over the materialized view's graph.
pub fn rewrite_query(facet: &Facet, analysis: &QueryAnalysis, view: ViewMask) -> Query {
    debug_assert!(view.covers(analysis.required));
    let graph_iri = Iri::new_unchecked(sofos::view_graph(&facet.id, view.0));
    let obs = PatternTerm::var("__obs");

    // Fetch only the dimensions the query needs: group dims + filter dims.
    // Each observation carries exactly one triple per dimension, so this
    // preserves row multiplicity regardless of which subset we match.
    let mut patterns: Vec<TriplePattern> = Vec::new();
    for d in analysis.required.dims() {
        patterns.push(TriplePattern::new(
            obs.clone(),
            PatternTerm::iri(sofos::dim(d)),
            PatternTerm::var(facet.dimensions[d].var.clone()),
        ));
    }
    // Fetch the needed components.
    let (primary, secondary) = component_predicates(analysis.agg);
    patterns.push(TriplePattern::new(
        obs.clone(),
        PatternTerm::iri(primary),
        PatternTerm::var("__c0"),
    ));
    if let Some(pred) = secondary {
        patterns.push(TriplePattern::new(
            obs.clone(),
            PatternTerm::iri(pred),
            PatternTerm::var("__c1"),
        ));
    }

    let mut elements = vec![PatternElement::Triples {
        graph: GraphSpec::Named(graph_iri),
        patterns,
    }];
    for filter in &analysis.filters {
        elements.push(PatternElement::Filter(filter.clone()));
    }

    // Re-aggregation expression over the components.
    let c0 = Box::new(Expr::var("__c0"));
    let value_expr = match analysis.agg {
        AggOp::Sum | AggOp::Count => Expr::Aggregate(Aggregate::Sum {
            distinct: false,
            expr: c0,
        }),
        AggOp::Min => Expr::Aggregate(Aggregate::Min { expr: c0 }),
        AggOp::Max => Expr::Aggregate(Aggregate::Max { expr: c0 }),
        AggOp::Avg => Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::Aggregate(Aggregate::Sum {
                distinct: false,
                expr: c0,
            })),
            Box::new(Expr::Aggregate(Aggregate::Sum {
                distinct: false,
                expr: Box::new(Expr::var("__c1")),
            })),
        ),
    };

    let mut select: Vec<SelectItem> = Vec::new();
    let mut group_by: Vec<String> = Vec::new();
    for d in analysis.group_mask.dims() {
        let var = facet.dimensions[d].var.clone();
        select.push(SelectItem::Var(var.clone()));
        group_by.push(var);
    }
    select.push(SelectItem::Expr {
        expr: value_expr,
        alias: analysis.value_alias.clone(),
    });

    Query {
        select,
        wildcard: false,
        distinct: false,
        pattern: GroupPattern { elements },
        group_by,
        having: None,
        order_by: analysis.order_by.clone(),
        limit: analysis.limit,
        offset: analysis.offset,
    }
}

fn component_predicates(agg: AggOp) -> (&'static str, Option<&'static str>) {
    match agg {
        AggOp::Sum => (sofos::SUM, None),
        AggOp::Count => (sofos::COUNT, None),
        AggOp::Avg => (sofos::SUM, Some(sofos::COUNT)),
        AggOp::Min => (sofos::MIN, None),
        AggOp::Max => (sofos::MAX, None),
    }
}

/// Convenience: analyze, pick a view, and rewrite in one call.
pub fn plan_rewrite(
    facet: &Facet,
    views: &[(ViewMask, usize)],
    query: &Query,
) -> Result<(ViewMask, Query), RewriteError> {
    let analysis = analyze_query(facet, query)?;
    let view = best_view(views, analysis.required).ok_or(RewriteError::NoCoveringView)?;
    Ok((view, rewrite_query(facet, &analysis, view)))
}

/// Did the analysis ask for the aggregate value only (apex query)?
pub fn is_apex_query(analysis: &QueryAnalysis) -> bool {
    analysis.group_mask == ViewMask::APEX
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofos_cube::{facet_query, Dimension};
    use sofos_sparql::CompareOp;

    const NS: &str = "http://e/";

    fn sample_facet(agg: AggOp) -> Facet {
        let pattern = GroupPattern::triples(vec![
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri(format!("{NS}country")),
                PatternTerm::var("country"),
            ),
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri(format!("{NS}lang")),
                PatternTerm::var("lang"),
            ),
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri(format!("{NS}pop")),
                PatternTerm::var("pop"),
            ),
        ]);
        Facet::new(
            "pop",
            vec![Dimension::new("country"), Dimension::new("lang")],
            pattern,
            "pop",
            agg,
        )
        .unwrap()
    }

    fn lang_filter() -> Expr {
        Expr::Compare(
            CompareOp::Eq,
            Box::new(Expr::var("lang")),
            Box::new(Expr::Const(sofos_rdf::Term::literal_str("french"))),
        )
    }

    #[test]
    fn analyzes_facet_query() {
        let facet = sample_facet(AggOp::Sum);
        let q = facet_query(
            &facet,
            ViewMask::from_dims(&[0]),
            AggOp::Sum,
            vec![lang_filter()],
        );
        let a = analyze_query(&facet, &q).expect("analyzable");
        assert_eq!(a.group_mask, ViewMask::from_dims(&[0]));
        assert_eq!(a.filter_mask, ViewMask::from_dims(&[1]));
        assert_eq!(a.required, ViewMask::from_dims(&[0, 1]));
        assert_eq!(a.agg, AggOp::Sum);
        assert_eq!(a.value_alias, "value");
        assert_eq!(a.filters.len(), 1);
        assert!(!is_apex_query(&a));
    }

    #[test]
    fn apex_query_detection() {
        let facet = sample_facet(AggOp::Sum);
        let q = facet_query(&facet, ViewMask::APEX, AggOp::Sum, vec![]);
        let a = analyze_query(&facet, &q).unwrap();
        assert!(is_apex_query(&a));
    }

    #[test]
    fn rejects_foreign_pattern() {
        let facet = sample_facet(AggOp::Sum);
        let q = sofos_sparql::parse_query(
            "SELECT (SUM(?pop) AS ?value) WHERE { ?o <http://other/p> ?pop }",
        )
        .unwrap();
        assert!(matches!(
            analyze_query(&facet, &q),
            Err(RewriteError::PatternMismatch(_))
        ));
    }

    #[test]
    fn rejects_filter_on_measure() {
        let facet = sample_facet(AggOp::Sum);
        let filter = Expr::Compare(
            CompareOp::Gt,
            Box::new(Expr::var("pop")),
            Box::new(Expr::int(10)),
        );
        let q = facet_query(&facet, ViewMask::from_dims(&[0]), AggOp::Sum, vec![filter]);
        assert!(matches!(
            analyze_query(&facet, &q),
            Err(RewriteError::FilterOutsideDimensions(v)) if v == "pop"
        ));
    }

    #[test]
    fn derivability_rules() {
        // AVG facet materializes SUM+COUNT ⇒ SUM, COUNT and AVG queries
        // are all derivable; MIN is not.
        let facet = sample_facet(AggOp::Avg);
        for (agg, ok) in [
            (AggOp::Sum, true),
            (AggOp::Count, true),
            (AggOp::Avg, true),
            (AggOp::Min, false),
            (AggOp::Max, false),
        ] {
            let q = facet_query(&facet, ViewMask::from_dims(&[0]), agg, vec![]);
            let result = analyze_query(&facet, &q);
            assert_eq!(result.is_ok(), ok, "{agg}: {result:?}");
        }
        // SUM facet cannot answer AVG.
        let facet = sample_facet(AggOp::Sum);
        let q = facet_query(&facet, ViewMask::from_dims(&[0]), AggOp::Avg, vec![]);
        assert!(matches!(
            analyze_query(&facet, &q),
            Err(RewriteError::UnderivableAggregate { .. })
        ));
    }

    #[test]
    fn best_view_prefers_smallest_covering() {
        let views = [
            (ViewMask::from_dims(&[0, 1]), 100),
            (ViewMask::from_dims(&[0]), 10),
            (ViewMask::from_dims(&[1]), 5),
        ];
        assert_eq!(
            best_view(&views, ViewMask::from_dims(&[0])),
            Some(ViewMask::from_dims(&[0]))
        );
        assert_eq!(
            best_view(&views, ViewMask::from_dims(&[0, 1])),
            Some(ViewMask::from_dims(&[0, 1]))
        );
        assert_eq!(
            best_view(&views, ViewMask::APEX),
            Some(ViewMask::from_dims(&[1]))
        );
        assert_eq!(best_view(&[], ViewMask::APEX), None);
    }

    #[test]
    fn rewrite_targets_view_graph_with_needed_dims_only() {
        let facet = sample_facet(AggOp::Sum);
        let q = facet_query(
            &facet,
            ViewMask::from_dims(&[0]),
            AggOp::Sum,
            vec![lang_filter()],
        );
        let a = analyze_query(&facet, &q).unwrap();
        let view = ViewMask::from_dims(&[0, 1]);
        let rewritten = rewrite_query(&facet, &a, view);

        // Targets the view's named graph.
        let PatternElement::Triples { graph, patterns } = &rewritten.pattern.elements[0] else {
            panic!("first element must be triples");
        };
        assert_eq!(
            *graph,
            GraphSpec::Named(Iri::new_unchecked(sofos::view_graph("pop", view.0)))
        );
        // dims 0 and 1 fetched + 1 component = 3 patterns.
        assert_eq!(patterns.len(), 3);
        // Groups by country, preserves alias.
        assert_eq!(rewritten.group_by, ["country"]);
        assert_eq!(rewritten.select.last().unwrap().name(), "value");
        // Filter preserved.
        assert!(rewritten
            .pattern
            .elements
            .iter()
            .any(|e| matches!(e, PatternElement::Filter(_))));
    }

    #[test]
    fn avg_rewrite_divides_component_sums() {
        let facet = sample_facet(AggOp::Avg);
        let q = facet_query(&facet, ViewMask::from_dims(&[1]), AggOp::Avg, vec![]);
        let a = analyze_query(&facet, &q).unwrap();
        let rewritten = rewrite_query(&facet, &a, ViewMask::full(2));
        let SelectItem::Expr { expr, .. } = rewritten.select.last().unwrap() else {
            panic!("aggregate item expected");
        };
        assert!(matches!(expr, Expr::Arith(ArithOp::Div, _, _)));
        // Rewritten text is valid SPARQL.
        let text = sofos_sparql::query_to_sparql(&rewritten);
        sofos_sparql::parse_query(&text).expect("rewritten query parses");
    }

    #[test]
    fn plan_rewrite_end_to_end() {
        let facet = sample_facet(AggOp::Sum);
        let views = [(ViewMask::full(2), 50), (ViewMask::from_dims(&[0]), 5)];
        let q = facet_query(&facet, ViewMask::from_dims(&[0]), AggOp::Sum, vec![]);
        let (view, rewritten) = plan_rewrite(&facet, &views, &q).unwrap();
        assert_eq!(
            view,
            ViewMask::from_dims(&[0]),
            "smaller covering view wins"
        );
        assert!(!rewritten.pattern.elements.is_empty());

        // Query needing lang cannot use the country-only view.
        let q = facet_query(&facet, ViewMask::from_dims(&[1]), AggOp::Sum, vec![]);
        let (view, _) = plan_rewrite(&facet, &views, &q).unwrap();
        assert_eq!(view, ViewMask::full(2));

        // No views at all → NoCoveringView.
        assert!(matches!(
            plan_rewrite(&facet, &[], &q),
            Err(RewriteError::NoCoveringView)
        ));
    }

    #[test]
    fn unsupported_features_are_reported() {
        let facet = sample_facet(AggOp::Sum);
        let mut q = facet_query(&facet, ViewMask::from_dims(&[0]), AggOp::Sum, vec![]);
        q.distinct = true;
        assert!(matches!(
            analyze_query(&facet, &q),
            Err(RewriteError::Unsupported("DISTINCT"))
        ));
    }

    #[test]
    fn modifiers_pass_through() {
        let facet = sample_facet(AggOp::Sum);
        let mut q = facet_query(&facet, ViewMask::from_dims(&[0]), AggOp::Sum, vec![]);
        q.limit = Some(3);
        q.order_by = vec![sofos_sparql::OrderCond {
            expr: Expr::var("value"),
            descending: true,
        }];
        let a = analyze_query(&facet, &q).unwrap();
        let rewritten = rewrite_query(&facet, &a, ViewMask::full(2));
        assert_eq!(rewritten.limit, Some(3));
        assert_eq!(rewritten.order_by.len(), 1);
    }
}
