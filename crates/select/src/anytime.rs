//! # Anytime local-search view selection
//!
//! The frozen algorithms wall out at lattice scale: [`greedy_select_with`](crate::greedy_select_with)
//! re-prices every remaining candidate against every demand per pick, and
//! [`exhaustive_select_with`](crate::exhaustive_select_with) is exponential. This module trades those
//! guarantees for a *deadline*: hill-climbing over add / drop / swap moves,
//! seeded from greedy-on-a-sample (or the caller's current catalog), with
//! random restarts — interruptible at any point with a valid best-so-far
//! [`SelectionOutcome`].
//!
//! Two properties are load-bearing and property-tested:
//!
//! * **Never worse than the seed.** The returned outcome's combined cost is
//!   ≤ the seed selection's combined cost, always — even with a zero-move
//!   budget the seed itself is returned.
//! * **Anytime monotonicity.** For a fixed RNG seed the proposal stream is
//!   a pure function of the accepted-move history, never of the budget, so
//!   a larger move budget explores a superset of the same trajectory and
//!   the best-so-far result can only improve.
//!
//! Costs are priced through a per-run memo, so a move re-prices only the
//! views it touches (each distinct view is priced **once** per run) — this,
//! not the move set, is what makes 10–100× larger lattices tractable.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sofos_cost::{CostContext, CostModel};
use sofos_cube::{Lattice, ViewMask};
use sofos_rdf::{FxHashMap, FxHashSet};

use crate::{
    base_graph_cost, greedy_over_candidates, selection_upkeep, workload_cost, Budget, Objective,
    SelectionOutcome, WorkloadProfile,
};

/// Millisecond time source for wall deadlines. A closure rather than a
/// clock trait so any caller-side clock (e.g. `core::policy::Clock`, whose
/// `ManualClock` makes deadline tests deterministic) adapts without this
/// crate growing a dependency on it.
pub type ClockFn = Arc<dyn Fn() -> u64 + Send + Sync>;

/// How long the search may run: a move-count cap, a wall deadline, both,
/// or neither (run to convergence).
///
/// The budget is checked *before* each proposal, so `moves(0)` or an
/// already-expired deadline returns the seed outcome untouched — still a
/// valid selection.
#[derive(Clone, Default)]
pub struct SearchBudget {
    max_moves: Option<u64>,
    deadline: Option<(ClockFn, u64)>,
}

impl SearchBudget {
    /// No cap: run until every restart converges.
    pub fn unlimited() -> SearchBudget {
        SearchBudget::default()
    }

    /// Cap the number of proposed moves.
    pub fn moves(max_moves: u64) -> SearchBudget {
        SearchBudget::unlimited().with_moves(max_moves)
    }

    /// Replace the move cap.
    pub fn with_moves(mut self, max_moves: u64) -> SearchBudget {
        self.max_moves = Some(max_moves);
        self
    }

    /// Stop once `clock()` reaches `deadline_ms`. The clock is sampled
    /// between proposals; each proposal is O(demands), so overshoot is
    /// bounded by a single move's evaluation.
    pub fn with_deadline(mut self, clock: ClockFn, deadline_ms: u64) -> SearchBudget {
        self.deadline = Some((clock, deadline_ms));
        self
    }

    /// The configured move cap, if any.
    pub fn max_moves(&self) -> Option<u64> {
        self.max_moves
    }

    fn is_exhausted(&self, moves_tried: u64) -> bool {
        if let Some(max) = self.max_moves {
            if moves_tried >= max {
                return true;
            }
        }
        if let Some((clock, deadline)) = &self.deadline {
            if clock() >= *deadline {
                return true;
            }
        }
        false
    }
}

impl std::fmt::Debug for SearchBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchBudget")
            .field("max_moves", &self.max_moves)
            .field("deadline_ms", &self.deadline.as_ref().map(|(_, at)| *at))
            .finish()
    }
}

/// Tuning for [`local_search_select_with`]. The defaults suit lattices of
/// hundreds to thousands of candidate views.
#[derive(Debug, Clone)]
pub struct LocalSearchConfig {
    /// Seed for the (deterministic) proposal stream.
    pub rng_seed: u64,
    /// Diversification restarts after the first descent converges.
    pub restarts: usize,
    /// Target size of the candidate pool moves draw from (demand masks,
    /// their pairwise unions, base/apex, plus random lattice samples).
    pub pool_target: usize,
    /// Consecutive rejected proposals before a descent is declared
    /// converged. `0` picks `max(64, 2 × pool size)` automatically.
    pub stall_limit: usize,
    /// Seed the search from this catalog (e.g. the currently materialized
    /// views) instead of greedy-on-a-sample. Views outside the lattice or
    /// over budget are dropped; an empty/fully-invalid catalog falls back
    /// to the greedy seed.
    pub initial: Option<Vec<ViewMask>>,
}

impl Default for LocalSearchConfig {
    fn default() -> LocalSearchConfig {
        LocalSearchConfig {
            rng_seed: 0x50F0_5E1E,
            restarts: 2,
            pool_target: 256,
            stall_limit: 0,
            initial: None,
        }
    }
}

/// What the search did — returned alongside the outcome so callers (and
/// the E14 bench) can tell a converged run from a deadline-truncated one.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport {
    /// Proposals evaluated (accepted or not).
    pub moves_tried: u64,
    /// Proposals that improved the incumbent and were applied.
    pub moves_accepted: u64,
    /// Restarts actually performed.
    pub restarts: u64,
    /// Combined cost of the seed selection (exact, re-evaluated).
    pub seed_cost: f64,
    /// Combined cost of the returned selection (exact, re-evaluated).
    pub final_cost: f64,
    /// Distinct views priced during the run — the incremental-repricing
    /// counter; compare against the lattice's view count.
    pub views_priced: usize,
    /// The budget ran out before every restart converged.
    pub budget_exhausted: bool,
    /// Every descent (initial + all restarts) reached its stall limit.
    pub converged: bool,
}

/// [`local_search_select_with`] over a query-only objective.
pub fn local_search_select(
    ctx: &CostContext<'_>,
    lattice: &Lattice,
    model: &dyn CostModel,
    profile: &WorkloadProfile,
    budget: Budget,
    config: &LocalSearchConfig,
    search: &SearchBudget,
) -> (SelectionOutcome, SearchReport) {
    local_search_select_with(
        ctx,
        lattice,
        &Objective::query_only(model),
        profile,
        budget,
        config,
        search,
    )
}

/// Per-run price memo: each distinct view is priced against the cost model
/// and maintenance term at most once, however many moves touch it.
struct Pricer {
    prices: FxHashMap<u64, (f64, f64)>,
}

impl Pricer {
    fn new() -> Pricer {
        Pricer {
            prices: FxHashMap::default(),
        }
    }

    /// `(query cost, λ-weighted upkeep)` of one view; either may be
    /// non-finite for unpriceable views.
    fn price(
        &mut self,
        ctx: &CostContext<'_>,
        objective: &Objective<'_>,
        view: ViewMask,
    ) -> (f64, f64) {
        *self.prices.entry(view.0).or_insert_with(|| {
            (
                objective.query_model().cost(ctx, view),
                objective.upkeep(ctx, view),
            )
        })
    }

    fn priced(&self) -> usize {
        self.prices.len()
    }
}

/// The incumbent selection plus everything needed to evaluate a move in
/// O(demands) instead of re-pricing the lattice: the per-demand cheapest
/// covering cost and the running byte/upkeep totals.
#[derive(Clone)]
struct State {
    selected: Vec<ViewMask>,
    /// Cheapest covering cost per demand (≤ the base-graph cost).
    current: Vec<f64>,
    bytes_used: usize,
    upkeep: f64,
}

impl State {
    fn from_selection(
        selected: Vec<ViewMask>,
        ctx: &CostContext<'_>,
        objective: &Objective<'_>,
        profile: &WorkloadProfile,
        pricer: &mut Pricer,
        base_cost: f64,
    ) -> State {
        let mut current = vec![base_cost; profile.demands.len()];
        let mut bytes_used = 0usize;
        let mut upkeep = 0.0;
        for &v in &selected {
            let (cost, up) = pricer.price(ctx, objective, v);
            upkeep += up;
            bytes_used = bytes_used.saturating_add(ctx.stats(v).map_or(0, |s| s.bytes));
            for (d, &(demand, _)) in profile.demands.iter().enumerate() {
                if v.covers(demand) && cost < current[d] {
                    current[d] = cost;
                }
            }
        }
        State {
            selected,
            current,
            bytes_used,
            upkeep,
        }
    }

    /// Combined objective value of the incumbent (query side from the
    /// per-demand table, plus upkeep).
    fn total(&self, profile: &WorkloadProfile) -> f64 {
        let query: f64 = profile
            .demands
            .iter()
            .zip(&self.current)
            .map(|(&(_, w), &c)| w * c)
            .sum();
        query + self.upkeep
    }
}

enum Move {
    Add(ViewMask),
    Drop(usize),
    Swap { out: usize, inn: ViewMask },
}

/// Anytime local search under a combined [`Objective`] and materialization
/// budget. Returns the best selection found plus a [`SearchReport`].
///
/// Budget semantics match [`greedy_select_with`](crate::greedy_select_with): `Budget::Views(k)` /
/// `Budget::Bytes(b)` are ceilings; with an *active* maintenance term the
/// search only keeps views that pay for their upkeep, and at λ = 0 upkeep
/// is identically zero so the objective degenerates to query cost exactly
/// as the frozen algorithms' does.
#[allow(clippy::too_many_arguments)]
pub fn local_search_select_with(
    ctx: &CostContext<'_>,
    lattice: &Lattice,
    objective: &Objective<'_>,
    profile: &WorkloadProfile,
    budget: Budget,
    config: &LocalSearchConfig,
    search: &SearchBudget,
) -> (SelectionOutcome, SearchReport) {
    let model = objective.query_model();
    let active = objective.is_active();
    let base_cost = base_graph_cost(ctx, model);
    let baseline_cost = workload_cost(ctx, model, profile, &[]);
    let mut pricer = Pricer::new();
    let mut rng = StdRng::seed_from_u64(config.rng_seed);

    let pool = build_pool(lattice, profile, &mut rng, config.pool_target.max(8));
    let stall_limit = if config.stall_limit > 0 {
        config.stall_limit
    } else {
        (2 * pool.len()).max(64)
    };

    // ---- seed -----------------------------------------------------------
    let seed_selected = match &config.initial {
        Some(views) if !views.is_empty() => {
            let sanitized = sanitize_initial(views, lattice, ctx, budget);
            if sanitized.is_empty() {
                greedy_over_candidates(ctx, objective, profile, budget, pool.clone()).selected
            } else {
                sanitized
            }
        }
        _ => greedy_over_candidates(ctx, objective, profile, budget, pool.clone()).selected,
    };
    let seed_cost = combined_exact(ctx, objective, profile, &seed_selected);

    let mut state = State::from_selection(
        seed_selected.clone(),
        ctx,
        objective,
        profile,
        &mut pricer,
        base_cost,
    );
    let mut best_selected = state.selected.clone();
    let mut best_total = state.total(profile);

    // ---- descend --------------------------------------------------------
    let mut report = SearchReport {
        moves_tried: 0,
        moves_accepted: 0,
        restarts: 0,
        seed_cost,
        final_cost: seed_cost,
        views_priced: 0,
        budget_exhausted: false,
        converged: false,
    };
    let mut stall = 0usize;

    loop {
        if search.is_exhausted(report.moves_tried) {
            report.budget_exhausted = true;
            break;
        }
        if stall >= stall_limit {
            if report.restarts as usize >= config.restarts {
                report.converged = true;
                break;
            }
            // Diversify: restart from a random budget-feasible selection.
            report.restarts += 1;
            stall = 0;
            let restart = random_selection(&pool, &mut rng, ctx, objective, budget, &mut pricer);
            state = State::from_selection(restart, ctx, objective, profile, &mut pricer, base_cost);
            let total = state.total(profile);
            if total < best_total {
                best_total = total;
                best_selected = state.selected.clone();
            }
            continue;
        }

        let proposal = propose(&mut rng, &state, &pool, active);
        report.moves_tried += 1;
        let eps = 1e-9 * best_total.abs().max(1.0);
        let accepted = match proposal {
            Some(mv) => try_apply(
                mv,
                &mut state,
                ctx,
                objective,
                profile,
                budget,
                &mut pricer,
                eps,
            ),
            None => false,
        };
        if accepted {
            report.moves_accepted += 1;
            stall = 0;
            let total = state.total(profile);
            if total < best_total - eps {
                best_total = total;
                best_selected = state.selected.clone();
            }
        } else {
            stall += 1;
        }
    }

    // ---- finalize -------------------------------------------------------
    // Exact re-evaluation guards the "never worse than the seed" contract
    // against incremental float drift.
    let best_cost = combined_exact(ctx, objective, profile, &best_selected);
    let (chosen, chosen_cost) = if best_cost <= seed_cost {
        (best_selected, best_cost)
    } else {
        (seed_selected, seed_cost)
    };
    report.final_cost = chosen_cost;
    report.views_priced = pricer.priced();

    let estimated_cost = workload_cost(ctx, model, profile, &chosen);
    let upkeep_cost = selection_upkeep(ctx, objective, &chosen);
    (
        SelectionOutcome {
            selected: chosen,
            estimated_cost,
            baseline_cost,
            upkeep_cost,
        },
        report,
    )
}

fn combined_exact(
    ctx: &CostContext<'_>,
    objective: &Objective<'_>,
    profile: &WorkloadProfile,
    selected: &[ViewMask],
) -> f64 {
    workload_cost(ctx, objective.query_model(), profile, selected)
        + selection_upkeep(ctx, objective, selected)
}

/// The candidate pool moves draw from: every demand mask, pairwise unions
/// of demand masks (the views that serve several demands at once), the
/// base and apex views, topped up with random lattice samples.
fn build_pool(
    lattice: &Lattice,
    profile: &WorkloadProfile,
    rng: &mut StdRng,
    target: usize,
) -> Vec<ViewMask> {
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    let mut pool: Vec<ViewMask> = Vec::new();
    let push = |pool: &mut Vec<ViewMask>, seen: &mut FxHashSet<u64>, v: ViewMask| {
        if v.0 < lattice.num_views() && seen.insert(v.0) {
            pool.push(v);
        }
    };
    push(&mut pool, &mut seen, lattice.base());
    push(&mut pool, &mut seen, ViewMask::APEX);
    for &(demand, _) in &profile.demands {
        push(&mut pool, &mut seen, demand);
    }
    'unions: for i in 0..profile.demands.len() {
        for j in i + 1..profile.demands.len() {
            if pool.len() >= target {
                break 'unions;
            }
            let union = ViewMask(profile.demands[i].0 .0 | profile.demands[j].0 .0);
            push(&mut pool, &mut seen, union);
        }
    }
    let mut attempts = 0usize;
    while pool.len() < target && attempts < 4 * target {
        attempts += 1;
        let v = ViewMask(rng.gen_range(0..lattice.num_views()));
        push(&mut pool, &mut seen, v);
    }
    pool
}

/// Clamp a caller-provided seed catalog to the lattice and budget:
/// dedup, drop out-of-lattice masks, keep a prefix that fits.
fn sanitize_initial(
    views: &[ViewMask],
    lattice: &Lattice,
    ctx: &CostContext<'_>,
    budget: Budget,
) -> Vec<ViewMask> {
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    let mut out: Vec<ViewMask> = Vec::new();
    let mut bytes_used = 0usize;
    for &v in views {
        if v.0 >= lattice.num_views() || !seen.insert(v.0) {
            continue;
        }
        match budget {
            Budget::Views(k) => {
                if out.len() >= k {
                    break;
                }
            }
            Budget::Bytes(b) => {
                let size = ctx.stats(v).map_or(usize::MAX, |s| s.bytes);
                if bytes_used.saturating_add(size) > b {
                    continue;
                }
                bytes_used += size;
            }
        }
        out.push(v);
    }
    out
}

/// A random budget-feasible selection from the pool (restart diversifier).
fn random_selection(
    pool: &[ViewMask],
    rng: &mut StdRng,
    ctx: &CostContext<'_>,
    objective: &Objective<'_>,
    budget: Budget,
    pricer: &mut Pricer,
) -> Vec<ViewMask> {
    let target = match budget {
        Budget::Views(k) => k,
        Budget::Bytes(_) => pool.len().min(8),
    };
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    let mut out: Vec<ViewMask> = Vec::new();
    let mut bytes_used = 0usize;
    let attempts = (4 * target + 8).min(4 * pool.len().max(1));
    for _ in 0..attempts {
        if out.len() >= target || pool.is_empty() {
            break;
        }
        let v = pool[rng.gen_range(0..pool.len())];
        if !seen.insert(v.0) {
            continue;
        }
        let (cost, upkeep) = pricer.price(ctx, objective, v);
        if !cost.is_finite() || !upkeep.is_finite() {
            continue;
        }
        if let Budget::Bytes(b) = budget {
            let size = ctx.stats(v).map_or(usize::MAX, |s| s.bytes);
            if bytes_used.saturating_add(size) > b {
                continue;
            }
            bytes_used += size;
        }
        out.push(v);
    }
    out
}

/// Draw the next move from the deterministic proposal stream. Drop moves
/// are only proposed under an active maintenance term — without upkeep,
/// dropping a view can never improve the objective.
fn propose(rng: &mut StdRng, state: &State, pool: &[ViewMask], active: bool) -> Option<Move> {
    if pool.is_empty() {
        return None;
    }
    let roll: u32 = rng.gen_range(0..100);
    let kind = if state.selected.is_empty() {
        0 // add
    } else if active {
        match roll {
            0..=39 => 0,
            40..=69 => 2,
            _ => 1, // drop
        }
    } else if roll < 50 {
        0
    } else {
        2
    };
    match kind {
        0 => Some(Move::Add(pool[rng.gen_range(0..pool.len())])),
        1 => Some(Move::Drop(rng.gen_range(0..state.selected.len()))),
        _ => Some(Move::Swap {
            out: rng.gen_range(0..state.selected.len()),
            inn: pool[rng.gen_range(0..pool.len())],
        }),
    }
}

/// Evaluate one move against the incumbent; apply it if it strictly
/// improves the combined objective. Only the demands the touched views
/// cover are re-costed.
#[allow(clippy::too_many_arguments)]
fn try_apply(
    mv: Move,
    state: &mut State,
    ctx: &CostContext<'_>,
    objective: &Objective<'_>,
    profile: &WorkloadProfile,
    budget: Budget,
    pricer: &mut Pricer,
    eps: f64,
) -> bool {
    match mv {
        Move::Add(v) => {
            if state.selected.contains(&v) {
                return false;
            }
            match budget {
                Budget::Views(k) => {
                    if state.selected.len() >= k {
                        return false;
                    }
                }
                Budget::Bytes(b) => {
                    let size = ctx.stats(v).map_or(usize::MAX, |s| s.bytes);
                    if state.bytes_used.saturating_add(size) > b {
                        return false;
                    }
                }
            }
            let (cost, upkeep) = pricer.price(ctx, objective, v);
            if !cost.is_finite() || !upkeep.is_finite() {
                return false;
            }
            let mut gain = -upkeep;
            for (d, &(demand, weight)) in profile.demands.iter().enumerate() {
                if v.covers(demand) && cost < state.current[d] {
                    gain += weight * (state.current[d] - cost);
                }
            }
            if gain <= eps {
                return false;
            }
            for (d, &(demand, _)) in profile.demands.iter().enumerate() {
                if v.covers(demand) && cost < state.current[d] {
                    state.current[d] = cost;
                }
            }
            state.upkeep += upkeep;
            state.bytes_used = state
                .bytes_used
                .saturating_add(ctx.stats(v).map_or(0, |s| s.bytes));
            state.selected.push(v);
            true
        }
        Move::Drop(index) => {
            let v = state.selected[index];
            let (_, upkeep) = pricer.price(ctx, objective, v);
            // New per-demand costs with `v` gone, for the demands it covers.
            let mut updates: Vec<(usize, f64)> = Vec::new();
            let base_cost = base_graph_cost(ctx, objective.query_model());
            let mut loss = 0.0;
            for (d, &(demand, weight)) in profile.demands.iter().enumerate() {
                if !v.covers(demand) {
                    continue;
                }
                let mut new_cost = base_cost;
                for (i, &other) in state.selected.iter().enumerate() {
                    if i == index || !other.covers(demand) {
                        continue;
                    }
                    let (c, _) = pricer.price(ctx, objective, other);
                    if c < new_cost {
                        new_cost = c;
                    }
                }
                if new_cost > state.current[d] {
                    loss += weight * (new_cost - state.current[d]);
                    updates.push((d, new_cost));
                }
            }
            let gain = upkeep - loss;
            if gain <= eps {
                return false;
            }
            for (d, c) in updates {
                state.current[d] = c;
            }
            state.upkeep -= upkeep;
            state.bytes_used = state
                .bytes_used
                .saturating_sub(ctx.stats(v).map_or(0, |s| s.bytes));
            state.selected.swap_remove(index);
            true
        }
        Move::Swap { out, inn } => {
            let old = state.selected[out];
            if old == inn || state.selected.contains(&inn) {
                return false;
            }
            let old_size = ctx.stats(old).map_or(0, |s| s.bytes);
            if let Budget::Bytes(b) = budget {
                let inn_size = ctx.stats(inn).map_or(usize::MAX, |s| s.bytes);
                let after = state
                    .bytes_used
                    .saturating_sub(old_size)
                    .saturating_add(inn_size);
                if after > b {
                    return false;
                }
            }
            let (inn_cost, inn_upkeep) = pricer.price(ctx, objective, inn);
            if !inn_cost.is_finite() || !inn_upkeep.is_finite() {
                return false;
            }
            let (_, old_upkeep) = pricer.price(ctx, objective, old);
            let base_cost = base_graph_cost(ctx, objective.query_model());
            let mut updates: Vec<(usize, f64)> = Vec::new();
            let mut delta_query = 0.0;
            for (d, &(demand, weight)) in profile.demands.iter().enumerate() {
                if !old.covers(demand) && !inn.covers(demand) {
                    continue;
                }
                let mut new_cost = base_cost;
                if inn.covers(demand) && inn_cost < new_cost {
                    new_cost = inn_cost;
                }
                for (i, &other) in state.selected.iter().enumerate() {
                    if i == out || !other.covers(demand) {
                        continue;
                    }
                    let (c, _) = pricer.price(ctx, objective, other);
                    if c < new_cost {
                        new_cost = c;
                    }
                }
                if new_cost != state.current[d] {
                    delta_query += weight * (new_cost - state.current[d]);
                    updates.push((d, new_cost));
                }
            }
            let gain = -(delta_query + inn_upkeep - old_upkeep);
            if gain <= eps {
                return false;
            }
            for (d, c) in updates {
                state.current[d] = c;
            }
            state.upkeep += inn_upkeep - old_upkeep;
            state.bytes_used = state
                .bytes_used
                .saturating_sub(old_size)
                .saturating_add(ctx.stats(inn).map_or(0, |s| s.bytes));
            state.selected[out] = inn;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::with_ctx;
    use crate::{combined_cost, greedy_select, Budget};
    use sofos_cost::{AggValuesCost, TriplesCost};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn config(seed: u64) -> LocalSearchConfig {
        LocalSearchConfig {
            rng_seed: seed,
            ..LocalSearchConfig::default()
        }
    }

    #[test]
    fn zero_move_budget_returns_the_seed() {
        with_ctx(3, 24, |ctx, lattice| {
            let profile = WorkloadProfile::uniform(lattice);
            let (outcome, report) = local_search_select(
                ctx,
                lattice,
                &TriplesCost,
                &profile,
                Budget::Views(3),
                &config(7),
                &SearchBudget::moves(0),
            );
            assert!(report.budget_exhausted);
            assert!(!report.converged);
            assert_eq!(report.moves_tried, 0);
            assert_eq!(report.seed_cost, report.final_cost);
            assert_eq!(outcome.selected.len(), 3, "greedy seed fills the budget");
        });
    }

    #[test]
    fn respects_view_budget_and_improves_on_baseline() {
        with_ctx(3, 24, |ctx, lattice| {
            let profile = WorkloadProfile::uniform(lattice);
            let (outcome, report) = local_search_select(
                ctx,
                lattice,
                &AggValuesCost,
                &profile,
                Budget::Views(3),
                &config(42),
                &SearchBudget::unlimited(),
            );
            assert!(outcome.selected.len() <= 3);
            assert!(outcome.estimated_cost <= outcome.baseline_cost);
            assert!(report.converged);
            assert!(!report.budget_exhausted);
            assert!(report.final_cost <= report.seed_cost);
        });
    }

    #[test]
    fn matches_greedy_quality_on_small_lattices() {
        with_ctx(3, 24, |ctx, lattice| {
            let profile = WorkloadProfile::uniform(lattice);
            let greedy = greedy_select(ctx, lattice, &AggValuesCost, &profile, Budget::Views(3));
            let (local, _) = local_search_select(
                ctx,
                lattice,
                &AggValuesCost,
                &profile,
                Budget::Views(3),
                &config(3),
                &SearchBudget::unlimited(),
            );
            assert!(
                local.total_cost() <= greedy.total_cost() + 1e-9,
                "local {} > greedy {}",
                local.total_cost(),
                greedy.total_cost()
            );
        });
    }

    #[test]
    fn seeds_from_the_provided_catalog() {
        with_ctx(3, 24, |ctx, lattice| {
            let profile = WorkloadProfile::uniform(lattice);
            let catalog = vec![ViewMask::APEX, lattice.base()];
            let mut cfg = config(11);
            cfg.initial = Some(catalog.clone());
            let (outcome, report) = local_search_select(
                ctx,
                lattice,
                &TriplesCost,
                &profile,
                Budget::Views(2),
                &cfg,
                &SearchBudget::moves(0),
            );
            assert_eq!(outcome.selected, catalog, "zero moves keeps the catalog");
            assert_eq!(
                report.seed_cost,
                combined_cost(
                    ctx,
                    &Objective::query_only(&TriplesCost),
                    &profile,
                    &catalog
                )
            );
        });
    }

    #[test]
    fn byte_budget_is_respected() {
        with_ctx(3, 24, |ctx, lattice| {
            let profile = WorkloadProfile::uniform(lattice);
            let apex_bytes = ctx.stats(ViewMask::APEX).unwrap().bytes;
            let budget = apex_bytes * 3;
            let (outcome, _) = local_search_select(
                ctx,
                lattice,
                &TriplesCost,
                &profile,
                Budget::Bytes(budget),
                &config(5),
                &SearchBudget::unlimited(),
            );
            let used: usize = outcome
                .selected
                .iter()
                .map(|v| ctx.stats(*v).unwrap().bytes)
                .sum();
            assert!(used <= budget, "used {used} of {budget}");
        });
    }

    #[test]
    fn deadline_off_a_manual_clock_interrupts_immediately() {
        with_ctx(3, 24, |ctx, lattice| {
            let profile = WorkloadProfile::uniform(lattice);
            // A frozen clock already past the deadline: the search must
            // return the (valid) seed without proposing a single move.
            let now = Arc::new(AtomicU64::new(100));
            let clock = now.clone();
            let budget = SearchBudget::unlimited()
                .with_deadline(Arc::new(move || clock.load(Ordering::Relaxed)), 50);
            let (outcome, report) = local_search_select(
                ctx,
                lattice,
                &TriplesCost,
                &profile,
                Budget::Views(3),
                &config(9),
                &budget,
            );
            assert!(report.budget_exhausted);
            assert_eq!(report.moves_tried, 0);
            assert_eq!(outcome.selected.len(), 3);
            assert!(outcome.estimated_cost <= outcome.baseline_cost);
        });
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        with_ctx(3, 24, |ctx, lattice| {
            let profile = WorkloadProfile::uniform(lattice);
            let run = |seed| {
                local_search_select(
                    ctx,
                    lattice,
                    &AggValuesCost,
                    &profile,
                    Budget::Views(3),
                    &config(seed),
                    &SearchBudget::moves(500),
                )
            };
            let (a, ra) = run(21);
            let (b, rb) = run(21);
            assert_eq!(a, b);
            assert_eq!(ra, rb);
        });
    }

    #[test]
    fn pool_contains_demands_and_extremes() {
        with_ctx(3, 24, |ctx, lattice| {
            let _ = ctx;
            let profile = WorkloadProfile::from_masks([ViewMask::from_dims(&[0, 1])]);
            let mut rng = StdRng::seed_from_u64(1);
            let pool = build_pool(lattice, &profile, &mut rng, 64);
            assert!(pool.contains(&lattice.base()));
            assert!(pool.contains(&ViewMask::APEX));
            assert!(pool.contains(&ViewMask::from_dims(&[0, 1])));
            let distinct: FxHashSet<u64> = pool.iter().map(|v| v.0).collect();
            assert_eq!(distinct.len(), pool.len(), "pool is duplicate-free");
        });
    }
}
