//! # sofos-select — view-selection algorithms
//!
//! "To select the best set of views, we adopt a greedy approach \[7\]. Given a
//! set of selected views, the greedy approach exploits the estimated time
//! from the cost function and compares the expected running time of a set of
//! queries with and without including the candidate view Vi" (§3). This is
//! the classic Harinarayan–Rajaraman–Ullman (HRU'96) benefit greedy, here
//! parameterized by any of the six [`sofos_cost::CostModel`]s.
//!
//! Also provided:
//! * [`exhaustive_select`] — the optimal subset by enumeration (the oracle
//!   for the demo's "Hands-on Challenge", E6);
//! * [`random_select`] — an explicit random `k`-subset (equivalent to
//!   greedy under the constant cost model, §3.1);
//! * [`Budget::Bytes`] — the paper's "instead of selecting k views, select
//!   up to k views up to a certain memory budget" variant;
//! * [`WorkloadProfile`] — the query-demand distribution the greedy
//!   optimizes for (which grouping masks arrive, with what frequency).
//!
//! ## The maintenance-aware objective
//!
//! On a living graph the frozen objective (query cost alone) over-selects:
//! a view that answers queries cheaply may churn on every update batch.
//! [`Objective`] combines both sides, Goasdoué-style:
//!
//! ```text
//! total(S) = Σ_q w_q · cost(q | S)  +  λ · Σ_{v ∈ S} m(v, rates)
//! ```
//!
//! where `m` is a [`sofos_cost::MaintenanceCostModel`] and λ bridges the
//! upkeep units to the query-cost scale. [`greedy_select_with`] and
//! [`exhaustive_select_with`] optimize the combined total; at λ = 0 they
//! reproduce the frozen-graph algorithms *exactly* (property-tested). The
//! λ sweep is exposed as [`lambda_sweep`]. See `README.md` for semantics.

use sofos_cost::{CostContext, CostModel, MaintenanceCostModel, UpdateRates};
use sofos_cube::{Lattice, ViewMask};
use sofos_rdf::FxHashSet;

pub mod anytime;

pub use anytime::{
    local_search_select, local_search_select_with, ClockFn, LocalSearchConfig, SearchBudget,
    SearchReport,
};

/// How much may be materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// At most this many views (the paper's primary budget: "a constraint
    /// on the number of views to materialize").
    Views(usize),
    /// Any number of views whose *encoded bytes* fit this budget.
    Bytes(usize),
}

/// The anticipated query demand: `(required mask, weight)` pairs. A query
/// requiring mask `m` can be answered by any selected view covering `m`.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Demands with relative frequencies (need not be normalized).
    pub demands: Vec<(ViewMask, f64)>,
}

impl WorkloadProfile {
    /// Uniform demand over every view of the lattice (the default when the
    /// workload is unknown).
    pub fn uniform(lattice: &Lattice) -> WorkloadProfile {
        WorkloadProfile {
            demands: lattice.views().map(|v| (v, 1.0)).collect(),
        }
    }

    /// Demand from an observed/generated list of required masks.
    pub fn from_masks(masks: impl IntoIterator<Item = ViewMask>) -> WorkloadProfile {
        let mut demands: Vec<(ViewMask, f64)> = Vec::new();
        for mask in masks {
            match demands.iter_mut().find(|(m, _)| *m == mask) {
                Some((_, w)) => *w += 1.0,
                None => demands.push((mask, 1.0)),
            }
        }
        WorkloadProfile { demands }
    }

    /// Total demand weight.
    pub fn total_weight(&self) -> f64 {
        self.demands.iter().map(|(_, w)| w).sum()
    }
}

/// The maintenance side of a combined objective: a model, the anticipated
/// update pressure, and the weight λ bridging upkeep units to query-cost
/// units.
#[derive(Clone, Copy)]
pub struct MaintenanceTerm<'a> {
    /// Predicts per-round upkeep of a candidate view.
    pub model: &'a dyn MaintenanceCostModel,
    /// Anticipated update pressure per round.
    pub rates: UpdateRates,
    /// Weight of upkeep relative to query cost (λ = 0 ⇒ frozen-graph
    /// objective).
    pub lambda: f64,
}

/// What selection minimizes: expected workload query cost, optionally plus
/// λ-weighted per-view maintenance cost.
#[derive(Clone, Copy)]
pub struct Objective<'a> {
    query: &'a dyn CostModel,
    maintenance: Option<MaintenanceTerm<'a>>,
}

impl<'a> Objective<'a> {
    /// The frozen-graph objective: query cost only (today's behaviour).
    pub fn query_only(query: &'a dyn CostModel) -> Objective<'a> {
        Objective {
            query,
            maintenance: None,
        }
    }

    /// The combined objective `query_cost + λ · maintenance_cost`.
    pub fn maintenance_aware(
        query: &'a dyn CostModel,
        model: &'a dyn MaintenanceCostModel,
        rates: UpdateRates,
        lambda: f64,
    ) -> Objective<'a> {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "lambda must be finite and non-negative, got {lambda}"
        );
        Objective {
            query,
            maintenance: Some(MaintenanceTerm {
                model,
                rates,
                lambda,
            }),
        }
    }

    /// The query-cost model.
    pub fn query_model(&self) -> &dyn CostModel {
        self.query
    }

    /// The configured λ (0 without a maintenance term).
    pub fn lambda(&self) -> f64 {
        self.maintenance.map_or(0.0, |m| m.lambda)
    }

    /// λ-weighted upkeep of one view (0 without an *active* maintenance
    /// term, so the λ = 0 objective is bit-identical to query-only).
    pub fn upkeep(&self, ctx: &CostContext<'_>, view: ViewMask) -> f64 {
        match &self.maintenance {
            Some(m) if m.lambda > 0.0 => m.lambda * m.model.maintenance_cost(ctx, view, &m.rates),
            _ => 0.0,
        }
    }

    /// True when the maintenance term actually shapes the objective
    /// (present, λ > 0, and updates are expected).
    pub fn is_active(&self) -> bool {
        self.maintenance
            .as_ref()
            .is_some_and(|m| m.lambda > 0.0 && !m.rates.is_frozen())
    }
}

impl std::fmt::Debug for Objective<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Objective")
            .field("query", &self.query.name())
            .field(
                "maintenance",
                &self
                    .maintenance
                    .map(|m| (m.model.name(), m.rates, m.lambda)),
            )
            .finish()
    }
}

/// The result of a selection run.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionOutcome {
    /// Selected views, in pick order.
    pub selected: Vec<ViewMask>,
    /// Estimated workload *query* cost with the selection in place.
    pub estimated_cost: f64,
    /// Estimated workload query cost with no views at all (base graph
    /// only).
    pub baseline_cost: f64,
    /// λ-weighted maintenance cost of the selection (0 under a query-only
    /// objective or λ = 0).
    pub upkeep_cost: f64,
}

impl SelectionOutcome {
    /// Estimated speedup factor (`baseline / with-views`).
    ///
    /// Both costs are [`workload_cost`] sums over the *same* profile, so
    /// the profile's weight scale cancels — the ratio is identical whether
    /// or not the weights were normalized. A zero-total-weight (or empty)
    /// profile makes both costs zero; that degenerate case reports a
    /// speedup of 1 (no work either way), not infinity.
    pub fn estimated_speedup(&self) -> f64 {
        if self.estimated_cost > 0.0 {
            self.baseline_cost / self.estimated_cost
        } else if self.baseline_cost > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }

    /// The combined objective value: query cost plus λ-weighted upkeep.
    pub fn total_cost(&self) -> f64 {
        self.estimated_cost + self.upkeep_cost
    }
}

/// Cost of answering the raw graph `G` (no views). Answering a facet query
/// from `G` must reassemble each observation from the `|P|` triple patterns
/// of the facet; we charge the finest view's cost times the pattern count —
/// the same statistic every model uses, kept consistent across models.
pub fn base_graph_cost(ctx: &CostContext<'_>, model: &dyn CostModel) -> f64 {
    let base_mask = ViewMask::full(ctx.facet.dim_count());
    let pattern_cost = pattern_count(ctx).max(1) as f64;
    let view_cost = model.cost(ctx, base_mask);
    if view_cost.is_finite() {
        view_cost * pattern_cost
    } else {
        f64::MAX / 4.0
    }
}

fn pattern_count(ctx: &CostContext<'_>) -> usize {
    ctx.facet
        .pattern
        .elements
        .iter()
        .map(|e| match e {
            sofos_sparql::PatternElement::Triples { patterns, .. } => patterns.len(),
            _ => 0,
        })
        .sum()
}

/// Expected cost of one demand under a selection: the cheapest covering
/// view, or the base graph when none covers.
fn demand_cost(
    ctx: &CostContext<'_>,
    model: &dyn CostModel,
    selected: &[ViewMask],
    demand: ViewMask,
    base_cost: f64,
) -> f64 {
    selected
        .iter()
        .filter(|v| v.covers(demand))
        .map(|&v| model.cost(ctx, v))
        .fold(base_cost, f64::min)
}

/// Expected total workload cost under a selection (the quantity the greedy
/// minimizes and E6 compares against the oracle).
///
/// Demand weights need **not** sum to 1 — the result scales linearly with
/// the profile's total weight, so absolute values are only comparable
/// between calls sharing one profile. Ratios of such calls (e.g.
/// [`SelectionOutcome::estimated_speedup`]) are weight-scale invariant.
/// Weights must be finite and non-negative (debug-asserted); a
/// zero-total-weight profile yields cost 0.
pub fn workload_cost(
    ctx: &CostContext<'_>,
    model: &dyn CostModel,
    profile: &WorkloadProfile,
    selected: &[ViewMask],
) -> f64 {
    debug_assert!(
        profile
            .demands
            .iter()
            .all(|(_, w)| w.is_finite() && *w >= 0.0),
        "workload weights must be finite and non-negative: {:?}",
        profile.demands
    );
    let base_cost = base_graph_cost(ctx, model);
    profile
        .demands
        .iter()
        .map(|&(demand, weight)| weight * demand_cost(ctx, model, selected, demand, base_cost))
        .sum()
}

/// λ-weighted upkeep of a whole selection under an objective (0 for
/// query-only objectives).
pub fn selection_upkeep(
    ctx: &CostContext<'_>,
    objective: &Objective<'_>,
    selected: &[ViewMask],
) -> f64 {
    selected.iter().map(|&v| objective.upkeep(ctx, v)).sum()
}

/// The combined objective value of a selection: expected workload query
/// cost plus λ-weighted maintenance cost of the selected views.
pub fn combined_cost(
    ctx: &CostContext<'_>,
    objective: &Objective<'_>,
    profile: &WorkloadProfile,
    selected: &[ViewMask],
) -> f64 {
    workload_cost(ctx, objective.query_model(), profile, selected)
        + selection_upkeep(ctx, objective, selected)
}

/// HRU-style benefit greedy under an arbitrary cost model and budget
/// (frozen-graph objective). Equivalent to [`greedy_select_with`] over
/// [`Objective::query_only`].
pub fn greedy_select(
    ctx: &CostContext<'_>,
    lattice: &Lattice,
    model: &dyn CostModel,
    profile: &WorkloadProfile,
    budget: Budget,
) -> SelectionOutcome {
    greedy_select_with(ctx, lattice, &Objective::query_only(model), profile, budget)
}

/// HRU-style benefit greedy under a combined [`Objective`] and budget.
///
/// Each round picks the candidate with the largest *net* benefit
/// `Σ_q w_q · (cost(q | S) − cost(q | S ∪ {v})) − λ · m(v)`; ties break
/// toward the cheaper candidate, then the smaller mask, for determinism.
///
/// Under a query-only (or λ = 0) objective, when every remaining candidate
/// has zero benefit the algorithm keeps filling the budget with the
/// cheapest remaining candidates (so that a `k`-view budget always yields
/// `k` views, matching the demo's fixed-budget comparisons). With an
/// *active* maintenance term that padding would be harmful — every extra
/// view costs real upkeep — so selection stops at the first round whose
/// best net benefit is ≤ 0: the budget becomes a ceiling, not a target.
pub fn greedy_select_with(
    ctx: &CostContext<'_>,
    lattice: &Lattice,
    objective: &Objective<'_>,
    profile: &WorkloadProfile,
    budget: Budget,
) -> SelectionOutcome {
    greedy_over_candidates(ctx, objective, profile, budget, lattice.views().collect())
}

/// The greedy core, parameterized by an explicit candidate set. Shared by
/// [`greedy_select_with`] (candidates = the whole lattice) and the anytime
/// selector's greedy-on-a-sample seeding (candidates = a pool), so both
/// inherit identical tie-breaking and budget semantics.
pub(crate) fn greedy_over_candidates(
    ctx: &CostContext<'_>,
    objective: &Objective<'_>,
    profile: &WorkloadProfile,
    budget: Budget,
    candidates: Vec<ViewMask>,
) -> SelectionOutcome {
    let model = objective.query_model();
    let active = objective.is_active();
    let base_cost = base_graph_cost(ctx, model);
    let baseline_cost = workload_cost(ctx, model, profile, &[]);

    // Current best cost per demand.
    let mut current: Vec<f64> = vec![base_cost; profile.demands.len()];
    let mut selected: Vec<ViewMask> = Vec::new();
    let mut remaining: Vec<ViewMask> = candidates;
    let mut bytes_left = match budget {
        Budget::Bytes(b) => b as isize,
        Budget::Views(_) => isize::MAX,
    };
    let target_views = match budget {
        Budget::Views(k) => k.min(remaining.len()),
        Budget::Bytes(_) => remaining.len(),
    };

    while selected.len() < target_views {
        let mut best: Option<(usize, f64, f64)> = None; // (index, net benefit, cost)
        for (i, &candidate) in remaining.iter().enumerate() {
            if let Budget::Bytes(_) = budget {
                let size = ctx.stats(candidate).map_or(usize::MAX, |s| s.bytes);
                if size as isize > bytes_left {
                    continue;
                }
            }
            let candidate_cost = model.cost(ctx, candidate);
            if !candidate_cost.is_finite() {
                continue;
            }
            let upkeep = objective.upkeep(ctx, candidate);
            if !upkeep.is_finite() {
                continue; // unpriceable upkeep: never worth materializing
            }
            let mut benefit = 0.0;
            for (d, &(demand, weight)) in profile.demands.iter().enumerate() {
                if candidate.covers(demand) && candidate_cost < current[d] {
                    benefit += weight * (current[d] - candidate_cost);
                }
            }
            let net = benefit - upkeep;
            let better = match best {
                None => true,
                Some((bi, bb, bc)) => {
                    net > bb
                        || (net == bb
                            && (candidate_cost < bc
                                || (candidate_cost == bc && candidate.0 < remaining[bi].0)))
                }
            };
            if better {
                best = Some((i, net, candidate_cost));
            }
        }
        let Some((index, net, cost)) = best else {
            break; // nothing affordable / priceable
        };
        if active && net <= 0.0 {
            break; // the next view costs more upkeep than it saves
        }
        let view = remaining.swap_remove(index);
        if let Budget::Bytes(_) = budget {
            bytes_left -= ctx.stats(view).map_or(0, |s| s.bytes) as isize;
        }
        for (d, &(demand, _)) in profile.demands.iter().enumerate() {
            if view.covers(demand) && cost < current[d] {
                current[d] = cost;
            }
        }
        selected.push(view);
    }

    let estimated_cost = workload_cost(ctx, model, profile, &selected);
    let upkeep_cost = selection_upkeep(ctx, objective, &selected);
    SelectionOutcome {
        selected,
        estimated_cost,
        baseline_cost,
        upkeep_cost,
    }
}

/// Run [`greedy_select_with`] across a λ sweep, pairing each λ with its
/// outcome — the knob the adaptive experiments chart (λ = 0 recovers the
/// frozen-graph selection; large λ shrinks the selection toward cheap-to-
/// maintain views, eventually to none).
#[allow(clippy::too_many_arguments)]
pub fn lambda_sweep(
    ctx: &CostContext<'_>,
    lattice: &Lattice,
    query: &dyn CostModel,
    maintenance: &dyn MaintenanceCostModel,
    rates: UpdateRates,
    profile: &WorkloadProfile,
    budget: Budget,
    lambdas: &[f64],
) -> Vec<(f64, SelectionOutcome)> {
    lambdas
        .iter()
        .map(|&lambda| {
            let objective = Objective::maintenance_aware(query, maintenance, rates, lambda);
            (
                lambda,
                greedy_select_with(ctx, lattice, &objective, profile, budget),
            )
        })
        .collect()
}

/// Hard cap on the candidate-view count [`exhaustive_select_with`] will
/// enumerate over, regardless of the combination `limit`. 20 views is a
/// 4-dimension lattice plus change — beyond that, brute force is the wrong
/// tool even when C(n, k) squeaks under the limit; use
/// [`local_search_select_with`] instead.
pub const MAX_EXHAUSTIVE_VIEWS: usize = 20;

/// Exhaustive enumeration refused: the lattice (or the subset count it
/// implies) is beyond what brute force can visit. Carries the numbers so
/// callers can report or fall back to [`local_search_select_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatticeTooLarge {
    /// Candidate views in the lattice.
    pub candidate_views: usize,
    /// The requested subset size.
    pub k: usize,
    /// Subsets the enumeration would have visited (saturating).
    pub search_space: u64,
    /// The caller-provided combination limit.
    pub limit: u64,
}

impl std::fmt::Display for LatticeTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "exhaustive search over {} subsets of {} views (k = {}) exceeds limit {} \
             (hard cap: {MAX_EXHAUSTIVE_VIEWS} views)",
            self.search_space, self.candidate_views, self.k, self.limit
        )
    }
}

impl std::error::Error for LatticeTooLarge {}

/// Optimal `k`-subset by exhaustive enumeration (frozen-graph objective).
/// Equivalent to [`exhaustive_select_with`] over [`Objective::query_only`].
pub fn exhaustive_select(
    ctx: &CostContext<'_>,
    lattice: &Lattice,
    model: &dyn CostModel,
    profile: &WorkloadProfile,
    k: usize,
    limit: u64,
) -> Result<SelectionOutcome, LatticeTooLarge> {
    exhaustive_select_with(
        ctx,
        lattice,
        &Objective::query_only(model),
        profile,
        k,
        limit,
    )
}

/// Optimal subset by exhaustive enumeration under a combined [`Objective`].
///
/// Under a query-only (or λ = 0) objective this searches subsets of size
/// exactly `k` against the empty-selection baseline (query cost is
/// monotone, so padding never hurts). With an active maintenance term
/// every view has a price, so the search covers all sizes `0..=k` and
/// minimizes the combined total; ties break toward the smaller,
/// lexicographically earlier subset.
///
/// Returns [`LatticeTooLarge`] — instead of hanging — when the lattice has
/// more than [`MAX_EXHAUSTIVE_VIEWS`] candidate views or the enumeration
/// would exceed `limit` combinations. At that scale use
/// [`local_search_select_with`].
pub fn exhaustive_select_with(
    ctx: &CostContext<'_>,
    lattice: &Lattice,
    objective: &Objective<'_>,
    profile: &WorkloadProfile,
    k: usize,
    limit: u64,
) -> Result<SelectionOutcome, LatticeTooLarge> {
    let model = objective.query_model();
    let views: Vec<ViewMask> = lattice.views().collect();
    let k = k.min(views.len());
    let active = objective.is_active();
    let search_space: u64 = if active {
        // Sizes 1..=k are enumerated; the empty subset seeds `best_score`
        // without being enumerated, so it does not count against `limit`.
        (1..=k as u64)
            .map(|size| combinations(views.len() as u64, size))
            .fold(0u64, u64::saturating_add)
    } else {
        combinations(views.len() as u64, k as u64)
    };
    if views.len() > MAX_EXHAUSTIVE_VIEWS || search_space > limit {
        return Err(LatticeTooLarge {
            candidate_views: views.len(),
            k,
            search_space,
            limit,
        });
    }
    let baseline_cost = workload_cost(ctx, model, profile, &[]);

    let mut best_subset: Vec<ViewMask> = Vec::new();
    let mut best_score = if active {
        combined_cost(ctx, objective, profile, &[])
    } else {
        baseline_cost
    };
    let sizes = if active { 1..=k } else { k..=k };
    for size in sizes {
        for_each_combination(views.len(), size, |indices| {
            let subset: Vec<ViewMask> = indices.iter().map(|&i| views[i]).collect();
            let score = if active {
                combined_cost(ctx, objective, profile, &subset)
            } else {
                workload_cost(ctx, model, profile, &subset)
            };
            if score < best_score {
                best_score = score;
                best_subset = subset;
            }
        });
    }

    let estimated_cost = workload_cost(ctx, model, profile, &best_subset);
    let upkeep_cost = selection_upkeep(ctx, objective, &best_subset);
    Ok(SelectionOutcome {
        selected: best_subset,
        estimated_cost,
        baseline_cost,
        upkeep_cost,
    })
}

/// Visit every `k`-combination of `0..n` in lexicographic order.
fn for_each_combination(n: usize, k: usize, mut f: impl FnMut(&[usize])) {
    if k == 0 {
        f(&[]);
        return;
    }
    if k > n {
        return;
    }
    let mut indices: Vec<usize> = (0..k).collect();
    loop {
        f(&indices);
        // Advance to the next combination.
        let mut i = k;
        loop {
            i -= 1;
            if indices[i] != i + n - k {
                indices[i] += 1;
                for j in i + 1..k {
                    indices[j] = indices[j - 1] + 1;
                }
                break;
            }
            if i == 0 {
                return;
            }
        }
    }
}

fn combinations(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u64 = 1;
    for i in 0..k {
        result = result.saturating_mul(n - i) / (i + 1);
    }
    result
}

/// A random `k`-subset (deterministic per seed) — the behavioural
/// equivalent of greedy + the constant cost model.
pub fn random_select(
    ctx: &CostContext<'_>,
    lattice: &Lattice,
    model: &dyn CostModel,
    profile: &WorkloadProfile,
    k: usize,
    seed: u64,
) -> SelectionOutcome {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut views: Vec<ViewMask> = lattice.views().collect();
    views.shuffle(&mut rng);
    views.truncate(k);
    let estimated_cost = workload_cost(ctx, model, profile, &views);
    let baseline_cost = workload_cost(ctx, model, profile, &[]);
    SelectionOutcome {
        selected: views,
        estimated_cost,
        baseline_cost,
        upkeep_cost: 0.0,
    }
}

/// Validate and wrap a user's explicit pick (the "User Selected Views" demo
/// station): views must exist in the lattice and be distinct.
pub fn user_select(
    ctx: &CostContext<'_>,
    lattice: &Lattice,
    model: &dyn CostModel,
    profile: &WorkloadProfile,
    views: &[ViewMask],
) -> Result<SelectionOutcome, String> {
    let mut seen: FxHashSet<ViewMask> = FxHashSet::default();
    for &v in views {
        if v.0 >= lattice.num_views() {
            return Err(format!("view {v} is not in the lattice"));
        }
        if !seen.insert(v) {
            return Err(format!("view {v} selected twice"));
        }
    }
    let estimated_cost = workload_cost(ctx, model, profile, views);
    let baseline_cost = workload_cost(ctx, model, profile, &[]);
    Ok(SelectionOutcome {
        selected: views.to_vec(),
        estimated_cost,
        baseline_cost,
        upkeep_cost: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofos_cost::{size_lattice, AggValuesCost, TriplesCost, UserDefinedCost};
    use sofos_cube::{AggOp, Dimension, Facet};
    use sofos_rdf::{FxHashMap, Term};
    use sofos_sparql::{GroupPattern, PatternTerm, TriplePattern};
    use sofos_store::{Dataset, GraphStats};

    pub(crate) fn setup(dims: usize, rows: usize) -> (Dataset, Facet) {
        let mut ds = Dataset::new();
        let m = Term::iri("http://e/m");
        for i in 0..rows {
            let obs = Term::blank(format!("o{i}"));
            for d in 0..dims {
                ds.insert(
                    None,
                    &obs,
                    &Term::iri(format!("http://e/p{d}")),
                    &Term::iri(format!("http://e/D{d}_{}", i % (d + 2))),
                );
            }
            ds.insert(None, &obs, &m, &Term::literal_int(i as i64));
        }
        let mut triples = Vec::new();
        let mut dimensions = Vec::new();
        for d in 0..dims {
            triples.push(TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri(format!("http://e/p{d}")),
                PatternTerm::var(format!("d{d}")),
            ));
            dimensions.push(Dimension::new(format!("d{d}")));
        }
        triples.push(TriplePattern::new(
            PatternTerm::var("o"),
            PatternTerm::iri("http://e/m"),
            PatternTerm::var("u"),
        ));
        let facet = Facet::new(
            "t",
            dimensions,
            GroupPattern::triples(triples),
            "u",
            AggOp::Sum,
        )
        .unwrap();
        (ds, facet)
    }

    pub(crate) fn with_ctx<R>(
        dims: usize,
        rows: usize,
        f: impl FnOnce(&CostContext<'_>, &Lattice) -> R,
    ) -> R {
        let (ds, facet) = setup(dims, rows);
        let lattice = Lattice::new(facet.clone());
        let sized = size_lattice(&ds, &lattice).unwrap();
        let base = GraphStats::compute(ds.default_graph());
        let ctx = CostContext {
            facet: &facet,
            view_stats: &sized,
            base: &base,
        };
        f(&ctx, &lattice)
    }

    #[test]
    fn greedy_respects_view_budget() {
        with_ctx(3, 24, |ctx, lattice| {
            let profile = WorkloadProfile::uniform(lattice);
            for k in 0..=4 {
                let outcome = greedy_select(ctx, lattice, &TriplesCost, &profile, Budget::Views(k));
                assert_eq!(outcome.selected.len(), k, "k={k}");
            }
        });
    }

    #[test]
    fn greedy_improves_over_baseline() {
        with_ctx(3, 24, |ctx, lattice| {
            let profile = WorkloadProfile::uniform(lattice);
            let outcome = greedy_select(ctx, lattice, &TriplesCost, &profile, Budget::Views(3));
            assert!(outcome.estimated_cost < outcome.baseline_cost);
            assert!(outcome.estimated_speedup() > 1.0);
        });
    }

    #[test]
    fn greedy_is_deterministic() {
        with_ctx(3, 24, |ctx, lattice| {
            let profile = WorkloadProfile::uniform(lattice);
            let a = greedy_select(ctx, lattice, &AggValuesCost, &profile, Budget::Views(3));
            let b = greedy_select(ctx, lattice, &AggValuesCost, &profile, Budget::Views(3));
            assert_eq!(a, b);
        });
    }

    #[test]
    fn greedy_prefers_views_that_cover_demands() {
        with_ctx(2, 12, |ctx, lattice| {
            // Only demand: grouping by dim 0.
            let profile = WorkloadProfile::from_masks([ViewMask::from_dims(&[0])]);
            let outcome = greedy_select(ctx, lattice, &AggValuesCost, &profile, Budget::Views(1));
            let v = outcome.selected[0];
            assert!(v.covers(ViewMask::from_dims(&[0])), "picked {v}");
        });
    }

    #[test]
    fn byte_budget_is_respected() {
        with_ctx(3, 24, |ctx, lattice| {
            let profile = WorkloadProfile::uniform(lattice);
            // Find a budget that fits roughly two cheap views.
            let apex_bytes = ctx.stats(ViewMask::APEX).unwrap().bytes;
            let budget = apex_bytes * 3;
            let outcome =
                greedy_select(ctx, lattice, &TriplesCost, &profile, Budget::Bytes(budget));
            let used: usize = outcome
                .selected
                .iter()
                .map(|v| ctx.stats(*v).unwrap().bytes)
                .sum();
            assert!(used <= budget, "used {used} of {budget}");
            assert!(!outcome.selected.is_empty());
        });
    }

    #[test]
    fn exhaustive_never_worse_than_greedy() {
        with_ctx(3, 24, |ctx, lattice| {
            let profile = WorkloadProfile::uniform(lattice);
            for k in 1..=3 {
                let greedy =
                    greedy_select(ctx, lattice, &AggValuesCost, &profile, Budget::Views(k));
                let optimal =
                    exhaustive_select(ctx, lattice, &AggValuesCost, &profile, k, 1_000_000)
                        .expect("small lattice fits the exhaustive caps");
                assert!(
                    optimal.estimated_cost <= greedy.estimated_cost + 1e-9,
                    "k={k}: optimal {} > greedy {}",
                    optimal.estimated_cost,
                    greedy.estimated_cost
                );
            }
        });
    }

    #[test]
    fn greedy_matches_oracle_on_user_defined_costs() {
        with_ctx(2, 12, |ctx, lattice| {
            // Craft costs where the best 1-view choice is obvious: the base
            // view is cheap and covers everything.
            let mut costs: FxHashMap<ViewMask, f64> = FxHashMap::default();
            for v in lattice.views() {
                costs.insert(v, 100.0);
            }
            costs.insert(lattice.base(), 1.0);
            let model = UserDefinedCost::new(costs, f64::INFINITY);
            let profile = WorkloadProfile::uniform(lattice);
            let greedy = greedy_select(ctx, lattice, &model, &profile, Budget::Views(1));
            assert_eq!(greedy.selected, vec![lattice.base()]);
            let oracle = exhaustive_select(ctx, lattice, &model, &profile, 1, 10_000).unwrap();
            assert_eq!(oracle.selected, vec![lattice.base()]);
        });
    }

    #[test]
    fn random_select_is_seeded_and_sized() {
        with_ctx(3, 24, |ctx, lattice| {
            let profile = WorkloadProfile::uniform(lattice);
            let a = random_select(ctx, lattice, &TriplesCost, &profile, 3, 7);
            let b = random_select(ctx, lattice, &TriplesCost, &profile, 3, 7);
            let c = random_select(ctx, lattice, &TriplesCost, &profile, 3, 8);
            assert_eq!(a, b);
            assert_eq!(a.selected.len(), 3);
            assert_ne!(a.selected, c.selected, "different seeds pick differently");
        });
    }

    #[test]
    fn user_select_validates() {
        with_ctx(2, 12, |ctx, lattice| {
            let profile = WorkloadProfile::uniform(lattice);
            let ok = user_select(
                ctx,
                lattice,
                &TriplesCost,
                &profile,
                &[ViewMask::APEX, lattice.base()],
            );
            assert!(ok.is_ok());
            let dup = user_select(
                ctx,
                lattice,
                &TriplesCost,
                &profile,
                &[ViewMask::APEX, ViewMask::APEX],
            );
            assert!(dup.is_err());
            let out_of_range = user_select(ctx, lattice, &TriplesCost, &profile, &[ViewMask(99)]);
            assert!(out_of_range.is_err());
        });
    }

    #[test]
    fn workload_cost_monotone_in_selection() {
        with_ctx(3, 24, |ctx, lattice| {
            let profile = WorkloadProfile::uniform(lattice);
            let none = workload_cost(ctx, &TriplesCost, &profile, &[]);
            let some = workload_cost(ctx, &TriplesCost, &profile, &[lattice.base()]);
            let more = workload_cost(
                ctx,
                &TriplesCost,
                &profile,
                &[lattice.base(), ViewMask::APEX],
            );
            assert!(some <= none);
            assert!(more <= some, "adding views never hurts the estimate");
        });
    }

    #[test]
    fn profile_from_masks_accumulates_weights() {
        let p = WorkloadProfile::from_masks([ViewMask(1), ViewMask(1), ViewMask(2)]);
        assert_eq!(p.demands.len(), 2);
        assert_eq!(p.total_weight(), 3.0);
        let w1 = p.demands.iter().find(|(m, _)| *m == ViewMask(1)).unwrap().1;
        assert_eq!(w1, 2.0);
    }

    #[test]
    fn zero_weight_profile_reports_unit_speedup() {
        // Regression: a zero-total-weight profile used to report an
        // infinite speedup (0/0 slipping through the `> 0` guard).
        with_ctx(2, 12, |ctx, lattice| {
            for profile in [
                WorkloadProfile { demands: vec![] },
                WorkloadProfile {
                    demands: vec![(ViewMask::APEX, 0.0), (lattice.base(), 0.0)],
                },
            ] {
                assert_eq!(profile.total_weight(), 0.0);
                let outcome = greedy_select(ctx, lattice, &TriplesCost, &profile, Budget::Views(2));
                assert_eq!(outcome.estimated_cost, 0.0);
                assert_eq!(outcome.baseline_cost, 0.0);
                assert_eq!(outcome.estimated_speedup(), 1.0, "no work, no speedup");
            }
        });
    }

    #[test]
    fn lambda_zero_objective_matches_frozen_greedy() {
        use sofos_cost::{TouchedGroupsMaintenance, UpdateRates};
        with_ctx(3, 24, |ctx, lattice| {
            let profile = WorkloadProfile::uniform(lattice);
            let frozen = greedy_select(ctx, lattice, &AggValuesCost, &profile, Budget::Views(3));
            let objective = Objective::maintenance_aware(
                &AggValuesCost,
                &TouchedGroupsMaintenance,
                UpdateRates::new(8.0, 4.0),
                0.0,
            );
            let combined = greedy_select_with(ctx, lattice, &objective, &profile, Budget::Views(3));
            assert_eq!(frozen, combined, "lambda = 0 must be bit-identical");
        });
    }

    #[test]
    fn high_churn_view_dropped_as_lambda_grows() {
        use sofos_cost::{FixedMaintenance, UpdateRates};
        with_ctx(3, 24, |ctx, lattice| {
            let profile = WorkloadProfile::uniform(lattice);
            let hot = lattice.base();
            // The finest view churns on every update; everything else is
            // free to maintain.
            let churn = FixedMaintenance::new([(hot, 50.0)], 0.0);
            let rates = UpdateRates::new(4.0, 2.0);

            let at_zero = greedy_select_with(
                ctx,
                lattice,
                &Objective::maintenance_aware(&AggValuesCost, &churn, rates, 0.0),
                &profile,
                Budget::Views(3),
            );
            assert!(
                at_zero.selected.contains(&hot),
                "frozen objective wants the finest view: {:?}",
                at_zero.selected
            );
            assert_eq!(at_zero.upkeep_cost, 0.0);

            let mut dropped_at = None;
            for lambda in [0.5, 2.0, 8.0, 32.0, 128.0] {
                let outcome = greedy_select_with(
                    ctx,
                    lattice,
                    &Objective::maintenance_aware(&AggValuesCost, &churn, rates, lambda),
                    &profile,
                    Budget::Views(3),
                );
                if !outcome.selected.contains(&hot) {
                    dropped_at = Some(lambda);
                    break;
                }
            }
            assert!(
                dropped_at.is_some(),
                "growing lambda must eventually price the churning view out"
            );
        });
    }

    #[test]
    fn active_objective_stops_padding_the_budget() {
        use sofos_cost::{FixedMaintenance, UpdateRates};
        with_ctx(3, 24, |ctx, lattice| {
            let profile = WorkloadProfile::uniform(lattice);
            // Every view costs upkeep; with a huge lambda nothing is worth
            // materializing, so an active objective selects nothing while
            // the frozen objective pads to the full budget.
            let churn = FixedMaintenance::new([], 1.0);
            let rates = UpdateRates::new(10.0, 10.0);
            let outcome = greedy_select_with(
                ctx,
                lattice,
                &Objective::maintenance_aware(&AggValuesCost, &churn, rates, 1e12),
                &profile,
                Budget::Views(3),
            );
            assert!(outcome.selected.is_empty(), "{:?}", outcome.selected);
            assert_eq!(outcome.total_cost(), outcome.baseline_cost);
        });
    }

    #[test]
    fn lambda_sweep_is_monotone_at_the_ends() {
        use sofos_cost::{TouchedGroupsMaintenance, UpdateRates};
        with_ctx(3, 24, |ctx, lattice| {
            let profile = WorkloadProfile::uniform(lattice);
            let rates = UpdateRates::new(6.0, 4.0);
            let sweep = lambda_sweep(
                ctx,
                lattice,
                &AggValuesCost,
                &TouchedGroupsMaintenance,
                rates,
                &profile,
                Budget::Views(4),
                &[0.0, 0.1, 1e9],
            );
            assert_eq!(sweep.len(), 3);
            let frozen = greedy_select(ctx, lattice, &AggValuesCost, &profile, Budget::Views(4));
            assert_eq!(sweep[0].1, frozen, "lambda = 0 end of the sweep");
            assert!(
                sweep[2].1.selected.is_empty(),
                "at absurd lambda nothing is worth keeping fresh"
            );
        });
    }

    #[test]
    fn exhaustive_with_active_objective_never_worse_than_greedy() {
        use sofos_cost::{TouchedGroupsMaintenance, UpdateRates};
        with_ctx(3, 24, |ctx, lattice| {
            let profile = WorkloadProfile::uniform(lattice);
            let rates = UpdateRates::new(5.0, 5.0);
            for lambda in [0.25, 1.0, 4.0] {
                let objective = Objective::maintenance_aware(
                    &AggValuesCost,
                    &TouchedGroupsMaintenance,
                    rates,
                    lambda,
                );
                let greedy =
                    greedy_select_with(ctx, lattice, &objective, &profile, Budget::Views(3));
                let oracle =
                    exhaustive_select_with(ctx, lattice, &objective, &profile, 3, 1_000_000)
                        .expect("small lattice fits the exhaustive caps");
                assert!(
                    oracle.total_cost() <= greedy.total_cost() + 1e-9,
                    "lambda={lambda}: oracle {} > greedy {}",
                    oracle.total_cost(),
                    greedy.total_cost()
                );
            }
        });
    }

    #[test]
    fn combinations_formula() {
        assert_eq!(combinations(8, 3), 56);
        assert_eq!(combinations(5, 0), 1);
        assert_eq!(combinations(5, 5), 1);
        assert_eq!(combinations(3, 5), 0);
    }

    #[test]
    fn exhaustive_guards_explosion() {
        with_ctx(3, 8, |ctx, lattice| {
            let profile = WorkloadProfile::uniform(lattice);
            let err = exhaustive_select(ctx, lattice, &TriplesCost, &profile, 4, 2)
                .expect_err("C(8, 4) = 70 subsets must exceed a limit of 2");
            assert_eq!(err.candidate_views, 8);
            assert_eq!(err.k, 4);
            assert_eq!(err.search_space, 70);
            assert_eq!(err.limit, 2);
            assert!(err.to_string().contains("exceeds limit"));
        });
    }

    #[test]
    fn exhaustive_rejects_wide_lattices_regardless_of_limit() {
        // 5 dimensions ⇒ 32 candidate views > MAX_EXHAUSTIVE_VIEWS: the
        // typed error comes back fast even with an absurd combination
        // limit, instead of the old behaviour of grinding through the
        // enumeration (or panicking).
        with_ctx(5, 8, |ctx, lattice| {
            let profile = WorkloadProfile::uniform(lattice);
            let err = exhaustive_select(ctx, lattice, &TriplesCost, &profile, 2, u64::MAX)
                .expect_err("32 views exceeds the hard cap");
            assert_eq!(err.candidate_views, 32);
            assert!(err.candidate_views > MAX_EXHAUSTIVE_VIEWS);
        });
    }
}
