//! Properties of the anytime local-search selector, across random facets,
//! workload profiles, budgets, maintenance pressure, and RNG seeds:
//!
//! 1. **Never worse than the seed** — the returned outcome's combined cost
//!    is ≤ the seed selection's (whether the seed was greedy-on-a-sample
//!    or a caller-provided catalog), under any search budget.
//! 2. **Anytime monotonicity** — for the same RNG seed, a larger move
//!    budget never yields a strictly worse outcome.
//! 3. **λ = 0 agreement** — local search under a maintenance-aware
//!    objective with λ = 0 behaves exactly as under the query-only
//!    objective (same proposal stream, same outcome, zero upkeep).

use proptest::prelude::*;
use sofos_cost::{
    size_lattice, AggValuesCost, CostContext, TouchedGroupsMaintenance, TriplesCost, UpdateRates,
};
use sofos_cube::{AggOp, Dimension, Facet, Lattice, ViewMask};
use sofos_rdf::Term;
use sofos_select::{
    combined_cost, local_search_select, local_search_select_with, Budget, LocalSearchConfig,
    Objective, SearchBudget, WorkloadProfile,
};
use sofos_sparql::{GroupPattern, PatternTerm, TriplePattern};

fn setup(dims: usize, rows: usize) -> (sofos_store::Dataset, Facet) {
    let mut ds = sofos_store::Dataset::new();
    let m = Term::iri("http://e/m");
    for i in 0..rows {
        let obs = Term::blank(format!("o{i}"));
        for d in 0..dims {
            ds.insert(
                None,
                &obs,
                &Term::iri(format!("http://e/p{d}")),
                &Term::iri(format!("http://e/D{d}_{}", i % (d + 2))),
            );
        }
        ds.insert(None, &obs, &m, &Term::literal_int(i as i64));
    }
    let mut triples = Vec::new();
    let mut dimensions = Vec::new();
    for d in 0..dims {
        triples.push(TriplePattern::new(
            PatternTerm::var("o"),
            PatternTerm::iri(format!("http://e/p{d}")),
            PatternTerm::var(format!("d{d}")),
        ));
        dimensions.push(Dimension::new(format!("d{d}")));
    }
    triples.push(TriplePattern::new(
        PatternTerm::var("o"),
        PatternTerm::iri("http://e/m"),
        PatternTerm::var("u"),
    ));
    let facet = Facet::new(
        "t",
        dimensions,
        GroupPattern::triples(triples),
        "u",
        AggOp::Sum,
    )
    .unwrap();
    (ds, facet)
}

fn with_ctx<R>(dims: usize, rows: usize, f: impl FnOnce(&CostContext<'_>, &Lattice) -> R) -> R {
    let (ds, facet) = setup(dims, rows);
    let lattice = Lattice::new(facet.clone());
    let sized = size_lattice(&ds, &lattice).unwrap();
    let base = ds.base_stats();
    let ctx = CostContext {
        facet: &facet,
        view_stats: &sized,
        base: &base,
    };
    f(&ctx, &lattice)
}

proptest! {
    #[test]
    fn local_search_never_worse_than_its_seed(
        dims in 1usize..=3,
        rows in 4usize..=20,
        k in 1usize..=4,
        raw_masks in proptest::collection::vec(0u64..8, 1..10),
        rng_seed in 0u64..1_000,
        max_moves in 0u64..400,
        seed_catalog in proptest::collection::vec(0u64..8, 0..4),
    ) {
        with_ctx(dims, rows, |ctx, lattice| {
            let num_views = lattice.num_views();
            let profile = WorkloadProfile::from_masks(
                raw_masks.iter().map(|&m| ViewMask(m % num_views)),
            );
            let initial: Vec<ViewMask> = {
                let mut views: Vec<ViewMask> =
                    seed_catalog.iter().map(|&m| ViewMask(m % num_views)).collect();
                views.dedup();
                views
            };
            let config = LocalSearchConfig {
                rng_seed,
                initial: if initial.is_empty() { None } else { Some(initial) },
                ..LocalSearchConfig::default()
            };
            let (outcome, report) = local_search_select(
                ctx,
                lattice,
                &AggValuesCost,
                &profile,
                Budget::Views(k),
                &config,
                &SearchBudget::moves(max_moves),
            );
            prop_assert!(
                report.final_cost <= report.seed_cost + 1e-9,
                "final {} > seed {}",
                report.final_cost,
                report.seed_cost
            );
            // The reported final cost is the outcome's actual cost.
            let objective = Objective::query_only(&AggValuesCost);
            let actual = combined_cost(ctx, &objective, &profile, &outcome.selected);
            prop_assert!((actual - report.final_cost).abs() <= 1e-9 * actual.abs().max(1.0));
            prop_assert!(outcome.selected.len() <= k);
            Ok(())
        })?;
    }

    #[test]
    fn longer_budgets_are_never_strictly_worse(
        dims in 1usize..=3,
        rows in 4usize..=20,
        k in 1usize..=4,
        raw_masks in proptest::collection::vec(0u64..8, 1..10),
        rng_seed in 0u64..1_000,
        short in 0u64..200,
        extra in 0u64..200,
        lambda in 0.0f64..4.0,
    ) {
        with_ctx(dims, rows, |ctx, lattice| {
            let num_views = lattice.num_views();
            let profile = WorkloadProfile::from_masks(
                raw_masks.iter().map(|&m| ViewMask(m % num_views)),
            );
            let rates = UpdateRates::new(3.0, 2.0);
            let objective = Objective::maintenance_aware(
                &AggValuesCost,
                &TouchedGroupsMaintenance,
                rates,
                lambda,
            );
            let config = LocalSearchConfig {
                rng_seed,
                ..LocalSearchConfig::default()
            };
            let run = |moves: u64| {
                local_search_select_with(
                    ctx,
                    lattice,
                    &objective,
                    &profile,
                    Budget::Views(k),
                    &config,
                    &SearchBudget::moves(moves),
                )
            };
            let (_, short_report) = run(short);
            let (_, long_report) = run(short + extra);
            prop_assert!(
                long_report.final_cost <= short_report.final_cost + 1e-9,
                "seed {rng_seed}: {} moves gave {}, {} moves gave {}",
                short + extra,
                long_report.final_cost,
                short,
                short_report.final_cost
            );
            Ok(())
        })?;
    }

    #[test]
    fn lambda_zero_agrees_with_query_only(
        dims in 1usize..=3,
        rows in 4usize..=20,
        k in 1usize..=4,
        raw_masks in proptest::collection::vec(0u64..8, 1..10),
        rng_seed in 0u64..1_000,
        max_moves in 0u64..400,
        inserts in 0.0f64..12.0,
        deletes in 0.0f64..12.0,
        use_triples_cost in proptest::bool::ANY,
    ) {
        with_ctx(dims, rows, |ctx, lattice| {
            let num_views = lattice.num_views();
            let profile = WorkloadProfile::from_masks(
                raw_masks.iter().map(|&m| ViewMask(m % num_views)),
            );
            let query: &dyn sofos_cost::CostModel = if use_triples_cost {
                &TriplesCost
            } else {
                &AggValuesCost
            };
            let rates = UpdateRates::new(inserts, deletes);
            let objective =
                Objective::maintenance_aware(query, &TouchedGroupsMaintenance, rates, 0.0);
            let config = LocalSearchConfig {
                rng_seed,
                ..LocalSearchConfig::default()
            };
            let budget = SearchBudget::moves(max_moves);
            let (frozen, frozen_report) = local_search_select(
                ctx, lattice, query, &profile, Budget::Views(k), &config, &budget,
            );
            let (combined, combined_report) = local_search_select_with(
                ctx, lattice, &objective, &profile, Budget::Views(k), &config, &budget,
            );
            prop_assert_eq!(&frozen, &combined, "lambda = 0 must be bit-identical");
            prop_assert_eq!(&frozen_report, &combined_report);
            prop_assert_eq!(combined.upkeep_cost, 0.0);
            Ok(())
        })?;
    }
}
