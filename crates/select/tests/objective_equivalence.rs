//! Property: the maintenance-aware objective at λ = 0 reproduces the
//! frozen-graph selection *exactly* — same picks in the same order, same
//! costs — for both the greedy and the exhaustive selector, across random
//! facets, workload profiles, budgets, and update rates.

use proptest::prelude::*;
use sofos_cost::{
    size_lattice, AggValuesCost, CostContext, TouchedGroupsMaintenance, TriplesCost, UpdateRates,
};
use sofos_cube::{AggOp, Dimension, Facet, Lattice, ViewMask};
use sofos_rdf::Term;
use sofos_select::{
    exhaustive_select, exhaustive_select_with, greedy_select, greedy_select_with, Budget,
    Objective, WorkloadProfile,
};
use sofos_sparql::{GroupPattern, PatternTerm, TriplePattern};

fn setup(dims: usize, rows: usize) -> (sofos_store::Dataset, Facet) {
    let mut ds = sofos_store::Dataset::new();
    let m = Term::iri("http://e/m");
    for i in 0..rows {
        let obs = Term::blank(format!("o{i}"));
        for d in 0..dims {
            ds.insert(
                None,
                &obs,
                &Term::iri(format!("http://e/p{d}")),
                &Term::iri(format!("http://e/D{d}_{}", i % (d + 2))),
            );
        }
        ds.insert(None, &obs, &m, &Term::literal_int(i as i64));
    }
    let mut triples = Vec::new();
    let mut dimensions = Vec::new();
    for d in 0..dims {
        triples.push(TriplePattern::new(
            PatternTerm::var("o"),
            PatternTerm::iri(format!("http://e/p{d}")),
            PatternTerm::var(format!("d{d}")),
        ));
        dimensions.push(Dimension::new(format!("d{d}")));
    }
    triples.push(TriplePattern::new(
        PatternTerm::var("o"),
        PatternTerm::iri("http://e/m"),
        PatternTerm::var("u"),
    ));
    let facet = Facet::new(
        "t",
        dimensions,
        GroupPattern::triples(triples),
        "u",
        AggOp::Sum,
    )
    .unwrap();
    (ds, facet)
}

proptest! {
    #[test]
    fn lambda_zero_reproduces_frozen_outcomes(
        dims in 1usize..=3,
        rows in 4usize..=20,
        k in 0usize..=4,
        raw_masks in proptest::collection::vec(0u64..8, 1..10),
        inserts in 0.0f64..12.0,
        deletes in 0.0f64..12.0,
        use_triples_cost in proptest::bool::ANY,
    ) {
        let (ds, facet) = setup(dims, rows);
        let lattice = Lattice::new(facet.clone());
        let sized = size_lattice(&ds, &lattice).unwrap();
        let base = ds.base_stats();
        let ctx = CostContext {
            facet: &facet,
            view_stats: &sized,
            base: &base,
        };
        let num_views = lattice.num_views();
        let profile = WorkloadProfile::from_masks(
            raw_masks.iter().map(|&m| ViewMask(m % num_views)),
        );
        let rates = UpdateRates::new(inserts, deletes);
        let query: &dyn sofos_cost::CostModel = if use_triples_cost {
            &TriplesCost
        } else {
            &AggValuesCost
        };
        let objective =
            Objective::maintenance_aware(query, &TouchedGroupsMaintenance, rates, 0.0);

        let frozen = greedy_select(&ctx, &lattice, query, &profile, Budget::Views(k));
        let combined =
            greedy_select_with(&ctx, &lattice, &objective, &profile, Budget::Views(k));
        prop_assert_eq!(&frozen, &combined);

        let frozen_oracle = exhaustive_select(&ctx, &lattice, query, &profile, k, 1_000_000)
            .expect("small lattice fits the exhaustive caps");
        let combined_oracle =
            exhaustive_select_with(&ctx, &lattice, &objective, &profile, k, 1_000_000)
                .expect("small lattice fits the exhaustive caps");
        prop_assert_eq!(&frozen_oracle, &combined_oracle);
    }
}
