//! A minimal HTTP/1.1 message layer over any `Read`/`Write` pair.
//!
//! Hand-rolled because the build environment has no registry access (the
//! same constraint that produced the `vendor/` shims): request parsing is
//! a byte-accumulating state machine that tolerates arbitrary TCP
//! segmentation, supports keep-alive with pipelined-byte carry-over, and
//! enforces hard limits on header and body size so a misbehaving client
//! cannot balloon server memory. Chunked transfer encoding is not
//! supported — every request body must carry `Content-Length`.
//!
//! The layer is deliberately transport-agnostic (`Read`, not
//! `TcpStream`), which is what makes the parser unit-testable under
//! adversarial segmentation (see the tests at the bottom).

use std::io::{Read, Write};

/// Parser limits: both are hard caps, not hints.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum bytes of request line + headers (431 beyond this).
    pub max_header_bytes: usize,
    /// Maximum declared `Content-Length` (413 beyond this).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_header_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method token (`GET`, `POST`, …).
    pub method: String,
    /// The request target as sent (path plus optional `?query`).
    pub target: String,
    /// Header `(name, value)` pairs; names are lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default, overridden by `Connection:`).
    pub keep_alive: bool,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The target's path component (everything before `?`).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Transport error (includes read timeouts).
    Io(std::io::Error),
    /// Syntactically invalid request (→ 400).
    Malformed(String),
    /// Request line + headers exceeded [`Limits::max_header_bytes`] (→ 431).
    HeadersTooLarge,
    /// Declared `Content-Length` exceeded [`Limits::max_body_bytes`] (→ 413).
    BodyTooLarge,
    /// The peer closed the connection before sending the declared body
    /// (→ 400; distinguishable for tests).
    BodyTruncated {
        /// Bytes promised by `Content-Length`.
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
    /// Not HTTP/1.0 or HTTP/1.1 (→ 505).
    UnsupportedVersion(String),
}

impl HttpError {
    /// The response status this error maps to (0 for transport errors,
    /// where no response can be written).
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Io(_) => 0,
            HttpError::Malformed(_) | HttpError::BodyTruncated { .. } => 400,
            HttpError::HeadersTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::UnsupportedVersion(_) => 505,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::HeadersTooLarge => write!(f, "request headers too large"),
            HttpError::BodyTooLarge => write!(f, "request body too large"),
            HttpError::BodyTruncated { expected, got } => {
                write!(f, "body truncated: expected {expected} bytes, got {got}")
            }
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version `{v}`"),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// Reads successive requests off one connection, carrying over any bytes
/// that arrived past the end of the previous message (keep-alive).
#[derive(Debug)]
pub struct RequestReader<R: Read> {
    inner: R,
    carry: Vec<u8>,
    limits: Limits,
}

impl<R: Read> RequestReader<R> {
    /// Wrap a transport.
    pub fn new(inner: R, limits: Limits) -> RequestReader<R> {
        RequestReader {
            inner,
            carry: Vec::new(),
            limits,
        }
    }

    /// Read the next request. `Ok(None)` means the peer closed the
    /// connection cleanly at a message boundary.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        let mut buf = std::mem::take(&mut self.carry);
        let mut chunk = [0u8; 1024];

        // Accumulate until the blank line ending the header block.
        let header_end = loop {
            if let Some(end) = find_header_end(&buf) {
                break end;
            }
            if buf.len() > self.limits.max_header_bytes {
                return Err(HttpError::HeadersTooLarge);
            }
            let n = self.inner.read(&mut chunk)?;
            if n == 0 {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Malformed("eof inside headers".into()));
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        if header_end > self.limits.max_header_bytes {
            return Err(HttpError::HeadersTooLarge);
        }

        let head = std::str::from_utf8(&buf[..header_end])
            .map_err(|_| HttpError::Malformed("non-UTF-8 header block".into()))?;
        let (method, target, version) = parse_request_line(head)?;
        let headers = parse_headers(head)?;

        let content_length = match content_length(&headers)? {
            Some(n) if n > self.limits.max_body_bytes => return Err(HttpError::BodyTooLarge),
            Some(n) => n,
            None => 0,
        };
        if headers.iter().any(|(k, _)| k == "transfer-encoding") {
            return Err(HttpError::Malformed(
                "transfer-encoding is not supported (use content-length)".into(),
            ));
        }

        // The body: bytes already buffered past the header block, then
        // read the remainder off the wire.
        let body_start = header_end + 4;
        let mut body: Vec<u8> = buf[body_start.min(buf.len())..].to_vec();
        if body.len() > content_length {
            // Pipelined bytes belong to the next message.
            self.carry = body.split_off(content_length);
        }
        while body.len() < content_length {
            let n = self.inner.read(&mut chunk)?;
            if n == 0 {
                return Err(HttpError::BodyTruncated {
                    expected: content_length,
                    got: body.len(),
                });
            }
            let need = content_length - body.len();
            body.extend_from_slice(&chunk[..n.min(need)]);
            if n > need {
                self.carry.extend_from_slice(&chunk[need..n]);
            }
        }

        let keep_alive = keep_alive(&version, &headers);
        Ok(Some(Request {
            method,
            target,
            headers,
            body,
            keep_alive,
        }))
    }
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_request_line(head: &str) -> Result<(String, String, String), HttpError> {
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed(format!(
            "request line `{line}` is not `METHOD TARGET VERSION`"
        )));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed(format!("bad method `{method}`")));
    }
    if !target.starts_with('/') && target != "*" {
        return Err(HttpError::Malformed(format!("bad target `{target}`")));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::UnsupportedVersion(version.to_string()));
    }
    Ok((method.to_string(), target.to_string(), version.to_string()))
}

fn parse_headers(head: &str) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    for line in head.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!(
                "header line `{line}` has no colon"
            )));
        };
        let name = name.trim();
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("bad header name `{name}`")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(headers)
}

fn content_length(headers: &[(String, String)]) -> Result<Option<usize>, HttpError> {
    let mut found: Option<usize> = None;
    for (name, value) in headers {
        if name == "content-length" {
            let n: usize = value
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad content-length `{value}`")))?;
            if found.is_some_and(|prev| prev != n) {
                return Err(HttpError::Malformed(
                    "conflicting content-length headers".into(),
                ));
            }
            found = Some(n);
        }
    }
    Ok(found)
}

fn keep_alive(version: &str, headers: &[(String, String)]) -> bool {
    let connection = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    match connection {
        Some(v) if v.contains("close") => false,
        Some(v) if v.contains("keep-alive") => true,
        _ => version == "HTTP/1.1",
    }
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (content-type and friends; `Content-Length` and
    /// `Connection` are added by [`Response::write_to`]).
    pub headers: Vec<(&'static str, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: vec![("Content-Type", "application/json".to_string())],
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type", "text/plain; charset=utf-8".to_string())],
            body: body.into().into_bytes(),
        }
    }

    /// Add a header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// Serialize onto the wire. `keep_alive` decides the `Connection`
    /// header (the caller owns actually closing the stream).
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\n",
            self.status,
            status_reason(self.status)
        );
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str(if keep_alive {
            "Connection: keep-alive\r\n\r\n"
        } else {
            "Connection: close\r\n\r\n"
        });
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// The reason phrase for the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A `Read` that hands out its script in deliberately tiny pieces —
    /// adversarial TCP segmentation.
    struct Segmented {
        data: Vec<u8>,
        pos: usize,
        segment: usize,
    }

    impl Segmented {
        fn new(data: impl Into<Vec<u8>>, segment: usize) -> Segmented {
            Segmented {
                data: data.into(),
                pos: 0,
                segment,
            }
        }
    }

    impl Read for Segmented {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.segment.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn reader(data: impl Into<Vec<u8>>, segment: usize) -> RequestReader<Segmented> {
        RequestReader::new(Segmented::new(data, segment), Limits::default())
    }

    #[test]
    fn parses_a_simple_get() {
        let mut r = reader("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n", 1024);
        let req = r.next_request().unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(r.next_request().unwrap().is_none(), "clean EOF afterwards");
    }

    #[test]
    fn partial_reads_across_tcp_segments() {
        let msg = "POST /query?x=1 HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world";
        for segment in [1, 2, 3, 7] {
            let mut r = reader(msg, segment);
            let req = r.next_request().unwrap().unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path(), "/query");
            assert_eq!(req.target, "/query?x=1");
            assert_eq!(req.body, b"hello world", "segment size {segment}");
        }
    }

    #[test]
    fn keep_alive_reuse_and_pipelined_carry_over() {
        // Two messages on one connection; the second arrives glued to the
        // first one's body bytes.
        let msg =
            "POST /update HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /metrics HTTP/1.1\r\n\r\n";
        for segment in [1, 5, 1024] {
            let mut r = reader(msg, segment);
            let first = r.next_request().unwrap().unwrap();
            assert_eq!(first.body, b"abc");
            let second = r.next_request().unwrap().unwrap();
            assert_eq!(second.method, "GET");
            assert_eq!(second.path(), "/metrics");
            assert!(r.next_request().unwrap().is_none());
        }
    }

    #[test]
    fn connection_close_overrides_keep_alive() {
        let mut r = reader("GET / HTTP/1.1\r\nConnection: close\r\n\r\n", 1024);
        assert!(!r.next_request().unwrap().unwrap().keep_alive);
        let mut r = reader("GET / HTTP/1.0\r\n\r\n", 1024);
        assert!(
            !r.next_request().unwrap().unwrap().keep_alive,
            "1.0 default"
        );
        let mut r = reader("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", 1024);
        assert!(r.next_request().unwrap().unwrap().keep_alive);
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for bad in [
            "GET\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
            "get / HTTP/1.1\r\n\r\n",
            "GET nopath HTTP/1.1\r\n\r\n",
        ] {
            let err = reader(bad, 1024).next_request().unwrap_err();
            assert_eq!(err.status(), 400, "{bad:?} → {err}");
        }
        let err = reader("GET / HTTP/2\r\n\r\n", 1024)
            .next_request()
            .unwrap_err();
        assert_eq!(err.status(), 505);
    }

    #[test]
    fn header_lines_need_colons_and_names() {
        let err = reader("GET / HTTP/1.1\r\nno colon here\r\n\r\n", 1024)
            .next_request()
            .unwrap_err();
        assert_eq!(err.status(), 400);
        let err = reader("GET / HTTP/1.1\r\nbad name: x\r\n\r\n", 1024)
            .next_request()
            .unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn oversized_headers_are_cut_off() {
        let limits = Limits {
            max_header_bytes: 64,
            ..Limits::default()
        };
        let msg = format!("GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n", "a".repeat(256));
        let mut r = RequestReader::new(Segmented::new(msg, 7), limits);
        assert!(matches!(
            r.next_request().unwrap_err(),
            HttpError::HeadersTooLarge
        ));
    }

    #[test]
    fn oversized_bodies_are_refused_up_front() {
        let limits = Limits {
            max_body_bytes: 8,
            ..Limits::default()
        };
        let msg = "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        let mut r = RequestReader::new(Segmented::new(msg, 1024), limits);
        assert!(matches!(
            r.next_request().unwrap_err(),
            HttpError::BodyTooLarge
        ));
    }

    #[test]
    fn content_length_mismatch_is_detected() {
        // Declared 10, connection closes after 5.
        let msg = "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nhello";
        let err = reader(msg, 3).next_request().unwrap_err();
        assert!(
            matches!(
                err,
                HttpError::BodyTruncated {
                    expected: 10,
                    got: 5
                }
            ),
            "{err}"
        );
        // Conflicting declarations.
        let msg = "POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\nabcd";
        assert_eq!(reader(msg, 1024).next_request().unwrap_err().status(), 400);
        // Unparseable declaration.
        let msg = "POST / HTTP/1.1\r\nContent-Length: many\r\n\r\n";
        assert_eq!(reader(msg, 1024).next_request().unwrap_err().status(), 400);
    }

    #[test]
    fn eof_inside_headers_is_an_error_not_none() {
        let err = reader("GET / HT", 1024).next_request().unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn responses_serialize_with_length_and_connection() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".to_string())
            .with_header("Retry-After", "1")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n{\"ok\":true}"));
    }
}
