//! # sofos-server — the network front door over `Arc<Engine>`
//!
//! A hand-rolled HTTP/1.1 server on `std::net::TcpListener` (no registry
//! dependencies, like everything else in the tree): one non-blocking
//! acceptor thread plus a fixed-size worker pool, all serving a single
//! shared [`sofos_core::Engine`]. Endpoints:
//!
//! | route | what |
//! |-------|------|
//! | `POST /query`   | SPARQL in, [`sofos_core::SessionAnswer`] out (JSON, with freshness tags) |
//! | `POST /update`  | N-Triples delta in, ingested through the maintenance path |
//! | `GET /metrics`  | Prometheus text from `engine.metrics().snapshot()` |
//! | `GET /healthz`  | liveness + engine summary |
//!
//! **Admission control.** Overload degrades instead of collapsing: the
//! acceptor refuses new connections with `503` + `Retry-After` once
//! `queued + in-service` reaches [`ServerConfig::max_inflight`], and
//! `/update` refuses writes the same way while the engine's buffered
//! update backlog is at [`ServerConfig::max_pending`] (defaulting to the
//! pending log's own cap, [`sofos_core::policy::PendingLog::CAP`]). Both
//! refusals are cheap — a rejected request costs a header write, not a
//! worker — which is what keeps the p99 of *admitted* requests flat past
//! saturation (measured in `e11_serving`).
//!
//! **Shutdown.** [`ServerHandle::shutdown`] (or a SIGTERM to the
//! `sofos-server` binary) stops accepting, lets workers finish queued
//! and in-flight requests (keep-alive connections are told
//! `Connection: close` on their next response), joins every thread, and
//! returns the final [`ServerStats`].
//!
//! The model is deliberately thread-per-connection within a bounded
//! pool: a keep-alive connection holds its worker until it closes or
//! idles out ([`ServerConfig::read_timeout`]). Load generators that want
//! open-loop behavior (`workload::openloop`) therefore send
//! `Connection: close` so every request is admitted independently.

pub mod http;
mod routes;

use http::{HttpError, Limits, RequestReader, Response};
use sofos_core::{policy::PendingLog, Engine};
use sofos_telemetry::{Counter, Histogram};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tunables. `Default` is sized for tests and demos.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Admission cap: maximum connections queued + in service before the
    /// acceptor starts refusing with 503.
    pub max_inflight: usize,
    /// Admission cap for `/update`: refuse writes while
    /// `engine.buffered_updates()` is at or above this.
    pub max_pending: usize,
    /// Per-read socket timeout; also bounds how long an idle keep-alive
    /// connection can pin a worker (and thus shutdown latency).
    pub read_timeout: Duration,
    /// HTTP parser limits.
    pub limits: Limits,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_inflight: 64,
            max_pending: PendingLog::CAP,
            read_timeout: Duration::from_secs(2),
            limits: Limits::default(),
        }
    }
}

/// Lifetime counters, returned by [`ServerHandle::stats`] / `shutdown`.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Requests answered (any status, including per-request 4xx/503).
    pub served: u64,
    /// Connections refused at the door by the in-flight cap.
    pub rejected_connections: u64,
    /// Requests that failed HTTP parsing (400/413/431/505 written).
    pub bad_requests: u64,
}

#[derive(Debug, Default)]
struct StatsAtomic {
    served: AtomicU64,
    rejected_connections: AtomicU64,
    bad_requests: AtomicU64,
}

/// Pre-registered server-side instruments, exported alongside the
/// engine's own metrics at `/metrics` (they share one
/// [`sofos_telemetry::MetricsHandle`]).
#[derive(Debug)]
pub(crate) struct ServerInstruments {
    latency_query: Arc<Histogram>,
    latency_update: Arc<Histogram>,
    requests: Arc<Counter>,
    responses_ok: Arc<Counter>,
    responses_client_error: Arc<Counter>,
    responses_server_error: Arc<Counter>,
    rejected_queue: Arc<Counter>,
    pub(crate) rejected_pending: Arc<Counter>,
}

impl ServerInstruments {
    fn new(engine: &Engine) -> ServerInstruments {
        let handle = engine.metrics();
        let latency_help = "HTTP request service latency (µs)";
        let rejected_help = "Requests refused by admission control";
        let responses_help = "HTTP responses by status class";
        ServerInstruments {
            latency_query: handle.histogram(
                "sofos_http_latency_us",
                latency_help,
                &[("route", "query")],
            ),
            latency_update: handle.histogram(
                "sofos_http_latency_us",
                latency_help,
                &[("route", "update")],
            ),
            requests: handle.counter("sofos_http_requests_total", "HTTP requests dispatched", &[]),
            responses_ok: handle.counter(
                "sofos_http_responses_total",
                responses_help,
                &[("class", "2xx")],
            ),
            responses_client_error: handle.counter(
                "sofos_http_responses_total",
                responses_help,
                &[("class", "4xx")],
            ),
            responses_server_error: handle.counter(
                "sofos_http_responses_total",
                responses_help,
                &[("class", "5xx")],
            ),
            rejected_queue: handle.counter(
                "sofos_http_rejected_total",
                rejected_help,
                &[("reason", "inflight_cap")],
            ),
            rejected_pending: handle.counter(
                "sofos_http_rejected_total",
                rejected_help,
                &[("reason", "pending_cap")],
            ),
        }
    }

    pub(crate) fn observe(&self, route: &str, status: u16, elapsed: Duration) {
        self.requests.inc();
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        match route {
            "query" => self.latency_query.record(us),
            "update" => self.latency_update.record(us),
            _ => {}
        }
        match status {
            200..=299 => self.responses_ok.inc(),
            400..=499 => self.responses_client_error.inc(),
            _ => self.responses_server_error.inc(),
        }
    }
}

/// Everything the acceptor, the workers, and the route handlers share.
pub(crate) struct Shared {
    pub(crate) engine: Arc<Engine>,
    pub(crate) config: ServerConfig,
    pub(crate) instruments: ServerInstruments,
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    shutdown: AtomicBool,
    busy: AtomicUsize,
    stats: StatsAtomic,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

/// A running server: its bound address plus the thread handles.
///
/// Dropping the handle shuts the server down (gracefully) if
/// [`ServerHandle::shutdown`] was not called explicitly.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine being served.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// Ask the server to stop without blocking (signal-handler friendly);
    /// pair with [`ServerHandle::shutdown`] to join.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.ready.notify_all();
    }

    /// Current lifetime counters.
    pub fn stats(&self) -> ServerStats {
        let s = &self.shared.stats;
        ServerStats {
            served: s.served.load(Ordering::Relaxed),
            rejected_connections: s.rejected_connections.load(Ordering::Relaxed),
            bad_requests: s.bad_requests.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// work, join every thread, return the final stats.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        self.request_shutdown();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Bind and start serving `engine` per `config`.
pub fn serve(engine: Arc<Engine>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let instruments = ServerInstruments::new(&engine);
    let workers = config.workers.max(1);
    let shared = Arc::new(Shared {
        engine,
        config,
        instruments,
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        shutdown: AtomicBool::new(false),
        busy: AtomicUsize::new(0),
        stats: StatsAtomic::default(),
    });

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("sofos-accept".to_string())
            .spawn(move || accept_loop(listener, &shared))?
    };
    let workers = (0..workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("sofos-worker-{i}"))
                .spawn(move || worker_loop(&shared))
        })
        .collect::<std::io::Result<Vec<_>>>()?;

    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let inflight =
                    shared.queue.lock().unwrap().len() + shared.busy.load(Ordering::Relaxed);
                if inflight >= shared.config.max_inflight {
                    // Refuse at the door: one header write, no worker.
                    shared
                        .stats
                        .rejected_connections
                        .fetch_add(1, Ordering::Relaxed);
                    shared.instruments.rejected_queue.inc();
                    refuse(stream);
                    continue;
                }
                shared.queue.lock().unwrap().push_back(stream);
                shared.ready.notify_one();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn refuse(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let _ = routes::overloaded("server at capacity; retry shortly").write_to(&mut stream, false);
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.shutting_down() {
                    break None;
                }
                queue = shared.ready.wait(queue).unwrap();
            }
        };
        let Some(stream) = stream else {
            return;
        };
        shared.busy.fetch_add(1, Ordering::Relaxed);
        handle_connection(shared, stream);
        shared.busy.fetch_sub(1, Ordering::Relaxed);
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let mut reader = RequestReader::new(stream, shared.config.limits.clone());
    loop {
        match reader.next_request() {
            Ok(None) => return,
            Ok(Some(req)) => {
                let response = routes::handle(shared, &req);
                // Draining for shutdown: answer what's in flight, then
                // tell the client to go away.
                let keep_alive = req.keep_alive && !shared.shutting_down();
                let write = response.write_to(&mut writer, keep_alive);
                shared.stats.served.fetch_add(1, Ordering::Relaxed);
                if write.is_err() || !keep_alive {
                    return;
                }
            }
            Err(HttpError::Io(_)) => return, // timeout, reset, or mid-read close
            Err(e) => {
                shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                let response = Response::json(
                    e.status(),
                    format!(
                        "{{\"error\":{}}}",
                        sofos_telemetry::Json::from(e.to_string())
                    ),
                );
                let _ = response.write_to(&mut writer, false);
                return;
            }
        }
    }
}
