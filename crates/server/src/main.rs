//! `sofos-server`: boot a demo dataset, run offline view selection, and
//! serve the resulting engine over HTTP until SIGTERM/SIGINT.
//!
//! ```text
//! sofos-server [--host 127.0.0.1] [--port 7878] [--dataset synthetic|dbpedia|lubm|swdf]
//!              [--backend serial|epoch] [--shards N] [--threads N]
//!              [--staleness eager|lazy|invalidate|bounded=<batches>,<epochs>[,<ms>]]
//!              [--workers N] [--max-inflight N] [--max-pending N] [--no-views]
//!              [--data-dir PATH] [--snapshot-every N]
//! ```
//!
//! Prints one line per lifecycle step; exits 0 on a clean signal-driven
//! shutdown (the `serve-smoke` CI job asserts exactly that).

use sofos_core::{Backend, DurabilityConfig, EngineConfig, Sofos, StalenessPolicy};
use sofos_cost::CostModelKind;
use sofos_server::{serve, ServerConfig};
use sofos_workload::{dbpedia, lubm, swdf, synthetic, GeneratedDataset};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", HELP);
        return;
    }
    match run(&args) {
        Ok(()) => {}
        Err(why) => {
            eprintln!("sofos-server: {why}");
            std::process::exit(1);
        }
    }
}

const HELP: &str = "\
sofos-server: serve a SOFOS engine over HTTP/1.1

  --host <addr>        bind host (default 127.0.0.1)
  --port <port>        bind port (default 7878; 0 picks a free port)
  --dataset <name>     synthetic | dbpedia | lubm | swdf (default synthetic)
  --backend <name>     serial | epoch (default epoch)
  --shards <n>         epoch backend shards (default 4)
  --threads <n>        epoch backend planner threads (default 2)
  --staleness <p>      eager | lazy | invalidate | bounded=<batches>,<epochs>[,<ms>]
                       (default eager)
  --workers <n>        HTTP worker threads (default 4)
  --max-inflight <n>   connection admission cap (default 64)
  --max-pending <n>    /update admission cap on buffered batches (default 64)
  --no-views           skip offline view selection (serve the base graph)
  --data-dir <path>    persist published epochs under <path> and recover
                       from it on restart (epoch backend only)
  --snapshot-every <n> full-snapshot cadence in publishes (default 64)
";

fn flag_value<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|v| Some(v.as_str()))
            .ok_or_else(|| format!("{name} needs a value")),
    }
}

fn parsed_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag_value(args, name)? {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad {name} value `{v}`")),
    }
}

fn generate_dataset(name: &str) -> Result<GeneratedDataset, String> {
    match name {
        "synthetic" => Ok(synthetic::generate(&synthetic::Config::default())),
        "dbpedia" => Ok(dbpedia::generate(&dbpedia::Config::default())),
        "lubm" => Ok(lubm::generate(&lubm::Config::default())),
        "swdf" => Ok(swdf::generate(&swdf::Config::default())),
        _ => Err(format!("unknown dataset `{name}`")),
    }
}

fn parse_staleness(text: &str) -> Result<StalenessPolicy, String> {
    match text {
        "eager" => return Ok(StalenessPolicy::Eager),
        "lazy" => return Ok(StalenessPolicy::LazyOnHit),
        "invalidate" => return Ok(StalenessPolicy::Invalidate),
        _ => {}
    }
    let Some(spec) = text.strip_prefix("bounded=") else {
        return Err(format!("unknown staleness policy `{text}`"));
    };
    let parts: Vec<&str> = spec.split(',').collect();
    let num = |s: &str| {
        s.trim()
            .parse::<u64>()
            .map_err(|_| format!("bad bounded component `{s}`"))
    };
    match parts.as_slice() {
        [batches, epochs] => Ok(StalenessPolicy::bounded(
            num(batches)? as usize,
            num(epochs)?,
        )),
        [batches, epochs, ms] => Ok(StalenessPolicy::bounded_ms(
            num(batches)? as usize,
            num(epochs)?,
            num(ms)?,
        )),
        _ => Err("bounded wants <batches>,<epochs>[,<ms>]".to_string()),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let host = flag_value(args, "--host")?.unwrap_or("127.0.0.1");
    let port: u16 = parsed_flag(args, "--port", 7878)?;
    let dataset_name = flag_value(args, "--dataset")?.unwrap_or("synthetic");
    let backend_name = flag_value(args, "--backend")?.unwrap_or("epoch");
    let shards: usize = parsed_flag(args, "--shards", 4)?;
    let threads: usize = parsed_flag(args, "--threads", 2)?;
    let staleness = parse_staleness(flag_value(args, "--staleness")?.unwrap_or("eager"))?;
    let backend = match backend_name {
        "serial" => Backend::Serial,
        "epoch" => Backend::Epoch { shards, threads },
        _ => return Err(format!("unknown backend `{backend_name}`")),
    };
    let data_dir = flag_value(args, "--data-dir")?;
    let snapshot_every: u64 = parsed_flag(args, "--snapshot-every", 64)?;
    if data_dir.is_some() && backend == Backend::Serial {
        return Err("--data-dir requires the epoch backend".to_string());
    }
    // An existing data dir wins over anything we generate below: the
    // engine discards the boot dataset and catalog for the recovered
    // ones, so skip the offline pass instead of throwing it away.
    let resuming = data_dir.is_some_and(|d| sofos_store::persist::has_state(Path::new(d)));

    let generated = generate_dataset(dataset_name)?;
    println!(
        "dataset {}: {} triples",
        generated.name,
        generated.dataset.total_triples()
    );

    let mut sofos = Sofos::from_generated(&generated);
    let catalog = if args.iter().any(|a| a == "--no-views") || resuming {
        if resuming {
            println!(
                "resuming from {}: skipping offline selection",
                data_dir.unwrap_or_default()
            );
        }
        Vec::new()
    } else {
        let outcome = sofos
            .offline(CostModelKind::AggValues, &EngineConfig::default())
            .map_err(|e| format!("offline selection failed: {e}"))?;
        let catalog = outcome.view_catalog();
        println!(
            "offline: selected {} views ({} → {} bytes)",
            catalog.len(),
            outcome.base_bytes,
            outcome.expanded_bytes
        );
        catalog
    };

    let mut builder = sofos
        .into_engine()
        .catalog(catalog)
        .staleness(staleness)
        .backend(backend);
    if let Some(dir) = data_dir {
        builder = builder.durability(DurabilityConfig::new(dir).snapshot_every(snapshot_every));
    }
    let engine = builder
        .build()
        .map_err(|e| format!("engine build failed: {e}"))?;
    if let Some(rec) = engine.recovery() {
        println!(
            "recovered: epoch {} (snapshot {}, {} records replayed, {} bytes truncated, {} views rebuilt)",
            rec.epoch,
            rec.snapshot_epoch,
            rec.replayed_records,
            rec.truncated_bytes,
            rec.rematerialized_views
        );
    } else if engine.durability_enabled() {
        println!(
            "durability: fresh data dir {}",
            data_dir.unwrap_or_default()
        );
    }

    let config = ServerConfig {
        addr: format!("{host}:{port}"),
        workers: parsed_flag(args, "--workers", 4)?,
        max_inflight: parsed_flag(args, "--max-inflight", 64)?,
        max_pending: parsed_flag(args, "--max-pending", ServerConfig::default().max_pending)?,
        ..ServerConfig::default()
    };
    let handle = serve(Arc::new(engine), config).map_err(|e| format!("bind failed: {e}"))?;
    println!("listening on http://{}", handle.addr());

    signals::install();
    while !signals::stop_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    println!("signal received, draining");
    let stats = handle.shutdown();
    println!(
        "shutdown clean: served={} rejected={} bad_requests={}",
        stats.served, stats.rejected_connections, stats.bad_requests
    );
    Ok(())
}

#[cfg(unix)]
mod signals {
    //! SIGTERM/SIGINT without a libc dependency: declare the one libc
    //! symbol we need and flip an atomic from the (signal-safe) handler.
    use std::sync::atomic::{AtomicBool, Ordering};

    static STOP: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }

    pub fn stop_requested() -> bool {
        STOP.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    //! No signal story off unix: run until killed.
    pub fn install() {}

    pub fn stop_requested() -> bool {
        false
    }
}
