//! Request dispatch: the four endpoints over one shared [`Engine`].
//!
//! Wire formats are JSON (via the shared [`sofos_telemetry::Json`] value)
//! with RDF terms carried as their N-Triples renderings — `Term`'s
//! `Display` *is* N-Triples, and `/update` bodies embed N-Triples
//! documents that `sofos_rdf::parse_ntriples` reads back, so no second
//! term serialization exists.
//!
//! [`Engine`]: sofos_core::Engine

use crate::http::{Request, Response};
use crate::Shared;
use sofos_core::{Route, SessionAnswer};
use sofos_rdf::parse_ntriples;
use sofos_sparql::parse_query;
use sofos_store::Delta;
use sofos_telemetry::Json;

/// Dispatch one parsed request, recording per-route instruments.
pub(crate) fn handle(shared: &Shared, req: &Request) -> Response {
    let start = std::time::Instant::now();
    let (route_label, response) = match (req.method.as_str(), req.path()) {
        ("POST", "/query") => ("query", query(shared, req)),
        ("POST", "/update") => ("update", update(shared, req)),
        ("GET", "/metrics") => ("metrics", metrics(shared)),
        ("GET", "/healthz") => ("healthz", healthz(shared)),
        ("GET", "/") => ("index", index()),
        (_, "/query") | (_, "/update") | (_, "/metrics") | (_, "/healthz") | (_, "/") => {
            ("other", error(405, "method not allowed for this path"))
        }
        _ => ("other", error(404, "no such endpoint (try GET /)")),
    };
    shared
        .instruments
        .observe(route_label, response.status, start.elapsed());
    response
}

fn error(status: u16, message: &str) -> Response {
    Response::json(
        status,
        Json::object([("error", Json::from(message))]).to_string(),
    )
}

/// 503 with a `Retry-After` hint — the admission-control refusal shape
/// shared by the accept loop and `/update`.
pub(crate) fn overloaded(message: &str) -> Response {
    error(503, message).with_header("Retry-After", "1")
}

fn parse_body(req: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&req.body).map_err(|_| error(400, "body is not UTF-8"))?;
    Json::parse(text).map_err(|why| error(400, &format!("body is not JSON: {why}")))
}

fn body_str<'a>(body: &'a Json, key: &str) -> Option<&'a str> {
    body.get(key).and_then(Json::as_str)
}

fn query(shared: &Shared, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(body) => body,
        Err(resp) => return resp,
    };
    let Some(text) = body_str(&body, "query") else {
        return error(400, r#"body must be {"query": "<sparql>"}"#);
    };
    let parsed = match parse_query(text) {
        Ok(parsed) => parsed,
        Err(e) => return error(400, &format!("query does not parse: {e}")),
    };
    match shared.engine.query(&parsed) {
        Ok(answer) => Response::json(200, answer_json(&answer).to_string()),
        Err(e) => error(400, &format!("query failed: {e}")),
    }
}

/// `SessionAnswer` → the wire shape documented in the crate README.
fn answer_json(answer: &SessionAnswer) -> Json {
    let route = match &answer.route {
        Route::View(mask) => Json::object([
            ("kind", Json::from("view")),
            ("view", Json::from(mask.to_string())),
        ]),
        Route::BaseGraph => Json::object([("kind", Json::from("base"))]),
    };
    let rows = answer
        .results
        .rows
        .iter()
        .map(|row| {
            Json::Array(
                row.iter()
                    .map(|cell| match cell {
                        Some(term) => Json::from(term.to_string()),
                        None => Json::Null,
                    })
                    .collect(),
            )
        })
        .collect();
    Json::object([
        ("route", route),
        (
            "freshness",
            Json::object([
                ("lag", Json::from(answer.freshness.lag)),
                ("epoch", Json::from(answer.freshness.epoch)),
                (
                    "oldest_shard_epoch",
                    Json::from(answer.freshness.oldest_shard_epoch),
                ),
            ]),
        ),
        ("maintenance_us", Json::from(answer.maintenance_us)),
        (
            "vars",
            Json::Array(
                answer
                    .results
                    .vars
                    .iter()
                    .map(|v| Json::from(v.as_str()))
                    .collect(),
            ),
        ),
        ("rows", Json::Array(rows)),
    ])
}

fn update(shared: &Shared, req: &Request) -> Response {
    // Admission control: refuse new write work while the maintenance
    // path's buffered backlog is at the configured cap.
    if shared.engine.buffered_updates() >= shared.config.max_pending {
        shared.instruments.rejected_pending.inc();
        return overloaded("pending update log at capacity; retry shortly");
    }
    let body = match parse_body(req) {
        Ok(body) => body,
        Err(resp) => return resp,
    };
    let mut delta = Delta::new();
    for (key, insert) in [("insert", true), ("delete", false)] {
        let Some(doc) = body_str(&body, key) else {
            continue;
        };
        let graph = match parse_ntriples(doc) {
            Ok(graph) => graph,
            Err(e) => return error(400, &format!("`{key}` is not N-Triples: {e}")),
        };
        for triple in graph.iter() {
            if insert {
                delta.insert(
                    triple.subject.clone(),
                    triple.predicate.clone(),
                    triple.object.clone(),
                );
            } else {
                delta.delete(
                    triple.subject.clone(),
                    triple.predicate.clone(),
                    triple.object.clone(),
                );
            }
        }
    }
    if delta.is_empty() {
        return error(
            400,
            r#"body must carry {"insert": "<n-triples>"} and/or {"delete": "<n-triples>"}"#,
        );
    }
    let ops = delta.len();
    match shared.engine.update(delta) {
        Ok(()) => Response::json(
            200,
            Json::object([
                ("applied_ops", Json::from(ops)),
                ("epoch", Json::from(shared.engine.epoch())),
                ("buffered", Json::from(shared.engine.buffered_updates())),
            ])
            .to_string(),
        ),
        Err(e) => error(500, &format!("update failed: {e}")),
    }
}

fn metrics(shared: &Shared) -> Response {
    let text = shared.engine.metrics().snapshot().to_prometheus_text();
    Response {
        status: 200,
        headers: vec![(
            "Content-Type",
            "text/plain; version=0.0.4; charset=utf-8".to_string(),
        )],
        body: text.into_bytes(),
    }
}

fn healthz(shared: &Shared) -> Response {
    let engine = &shared.engine;
    let durability = match engine.recovery() {
        Some(rec) => Json::object([
            ("enabled", Json::from(true)),
            ("recovered", Json::from(true)),
            ("recovered_epoch", Json::from(rec.epoch)),
            ("snapshot_epoch", Json::from(rec.snapshot_epoch)),
            ("replayed_records", Json::from(rec.replayed_records)),
            ("truncated_bytes", Json::from(rec.truncated_bytes)),
            ("rematerialized_views", Json::from(rec.rematerialized_views)),
        ]),
        None => Json::object([
            ("enabled", Json::from(engine.durability_enabled())),
            ("recovered", Json::from(false)),
        ]),
    };
    Response::json(
        200,
        Json::object([
            ("status", Json::from("ok")),
            ("backend", Json::from(engine.backend_name())),
            ("policy", Json::from(format!("{:?}", engine.policy()))),
            ("epoch", Json::from(engine.epoch())),
            ("views", Json::from(engine.views().len())),
            ("buffered_updates", Json::from(engine.buffered_updates())),
            ("durability", durability),
        ])
        .to_string(),
    )
}

fn index() -> Response {
    Response::text(
        200,
        "sofos-server\n\
         POST /query    {\"query\": \"<sparql>\"}\n\
         POST /update   {\"insert\": \"<n-triples>\", \"delete\": \"<n-triples>\"}\n\
         GET  /metrics  Prometheus text\n\
         GET  /healthz  liveness + engine summary\n",
    )
}
