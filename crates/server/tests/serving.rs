//! End-to-end tests over real sockets: boot a server on a loopback port,
//! speak actual HTTP/1.1 to it, and check the serving semantics —
//! read-your-write, per-freshness-tag consistency under concurrent
//! clients, admission control, graceful shutdown.

use sofos_core::{Backend, Engine, StalenessPolicy};
use sofos_cube::{AggOp, Dimension, Facet};
use sofos_rdf::Term;
use sofos_server::{serve, ServerConfig, ServerHandle};
use sofos_sparql::{GroupPattern, PatternTerm, TriplePattern};
use sofos_store::Dataset;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const NS: &str = "http://sofos.test/";
const BASE_OBS: usize = 5;

fn iri(local: &str) -> Term {
    Term::iri(format!("{NS}{local}"))
}

/// A tiny star-schema dataset: `BASE_OBS` observations with one dimension
/// and one measure, plus the matching facet.
fn test_engine(policy: StalenessPolicy, backend: Backend) -> Engine {
    let mut ds = Dataset::new();
    let dim_p = iri("country");
    let measure_p = iri("pop");
    for i in 0..BASE_OBS {
        let obs = iri(&format!("obs{i}"));
        ds.insert(None, &obs, &dim_p, &iri(&format!("c{}", i % 2)));
        ds.insert(None, &obs, &measure_p, &Term::literal_int(i as i64));
    }
    let pattern = GroupPattern::triples(vec![
        TriplePattern::new(
            PatternTerm::var("obs"),
            PatternTerm::iri(format!("{NS}country")),
            PatternTerm::var("country"),
        ),
        TriplePattern::new(
            PatternTerm::var("obs"),
            PatternTerm::iri(format!("{NS}pop")),
            PatternTerm::var("pop"),
        ),
    ]);
    let facet = Facet::new(
        "t",
        vec![Dimension::new("country")],
        pattern,
        "pop",
        AggOp::Sum,
    )
    .expect("valid facet");
    Engine::builder()
        .dataset(ds)
        .facet(facet)
        .catalog(Vec::new())
        .staleness(policy)
        .backend(backend)
        .build()
        .expect("engine builds")
}

fn boot(policy: StalenessPolicy, backend: Backend, config: ServerConfig) -> ServerHandle {
    serve(Arc::new(test_engine(policy, backend)), config).expect("server boots")
}

/// Minimal HTTP client: send one request on `stream`, read one response.
fn roundtrip(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
    keep_alive: bool,
) -> (u16, String) {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: {connection}\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("request sent");
    read_response(stream)
}

/// Read status line + headers byte-wise (so keep-alive reuse never
/// over-reads), then exactly `Content-Length` body bytes.
fn read_response(stream: &mut TcpStream) -> (u16, String) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            _ => panic!(
                "connection ended inside response head: {:?}",
                String::from_utf8_lossy(&head)
            ),
        }
    }
    let head = String::from_utf8(head).expect("utf-8 head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::to_string)
        })
        .and_then(|v| v.trim().parse().ok())
        .expect("content-length present");
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("full body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

fn connect(handle: &ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.addr()).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

fn one_shot(handle: &ServerHandle, method: &str, path: &str, body: &str) -> (u16, String) {
    roundtrip(&mut connect(handle), method, path, body, false)
}

const COUNT_QUERY: &str =
    r#"{"query": "SELECT (COUNT(?pop) AS ?n) WHERE { ?obs <http://sofos.test/pop> ?pop }"}"#;

/// `COUNT(?pop)` from a `/query` response, plus the freshness epoch tag.
fn count_and_epoch(response: &str) -> (i64, i64) {
    let json = sofos_telemetry::Json::parse(response).expect("response is JSON");
    let cell = json.rows_cell();
    let count = cell
        .split('"')
        .nth(1)
        .and_then(|lit| lit.parse().ok())
        .unwrap_or_else(|| panic!("no integer literal in {cell}"));
    let epoch = json
        .get("freshness")
        .and_then(|f| f.get("epoch"))
        .and_then(sofos_telemetry::Json::as_f64)
        .expect("freshness.epoch present") as i64;
    (count, epoch)
}

/// Helper on Json: the single result cell of a one-row one-var answer.
trait RowsCell {
    fn rows_cell(&self) -> String;
}

impl RowsCell for sofos_telemetry::Json {
    fn rows_cell(&self) -> String {
        self.get("rows")
            .and_then(sofos_telemetry::Json::items)
            .and_then(|rows| rows.first())
            .and_then(sofos_telemetry::Json::items)
            .and_then(|cells| cells.first())
            .and_then(sofos_telemetry::Json::as_str)
            .expect("one row, one cell")
            .to_string()
    }
}

fn insert_body(observation: &str, measure: i64) -> String {
    let doc = format!(
        "<{NS}{observation}> <{NS}country> <{NS}c0> .\n\
         <{NS}{observation}> <{NS}pop> \"{measure}\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n"
    );
    sofos_telemetry::Json::object([("insert", sofos_telemetry::Json::from(doc))]).to_string()
}

#[test]
fn end_to_end_read_your_write_over_keep_alive() {
    let handle = boot(
        StalenessPolicy::Eager,
        Backend::Epoch {
            shards: 2,
            threads: 1,
        },
        ServerConfig::default(),
    );
    let mut stream = connect(&handle);

    let (status, body) = roundtrip(&mut stream, "GET", "/healthz", "", true);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"backend\":\"epoch\""), "{body}");

    let (status, body) = roundtrip(&mut stream, "POST", "/query", COUNT_QUERY, true);
    assert_eq!(status, 200, "{body}");
    let (count, _) = count_and_epoch(&body);
    assert_eq!(count, BASE_OBS as i64);

    let (status, body) = roundtrip(
        &mut stream,
        "POST",
        "/update",
        &insert_body("fresh", 9),
        true,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"applied_ops\":2"), "{body}");

    // Read-your-write, on the same keep-alive connection.
    let (status, body) = roundtrip(&mut stream, "POST", "/query", COUNT_QUERY, true);
    assert_eq!(status, 200, "{body}");
    let (count, _) = count_and_epoch(&body);
    assert_eq!(count, BASE_OBS as i64 + 1, "the update is visible");

    let (status, body) = roundtrip(&mut stream, "GET", "/metrics", "", true);
    assert_eq!(status, 200);
    assert!(
        body.contains("sofos_freshness_lag"),
        "engine metrics exported"
    );
    assert!(
        body.contains("sofos_http_requests_total"),
        "server metrics exported"
    );
    assert!(
        body.contains("sofos_index_bytes"),
        "posting-list index footprint exported: {body}"
    );
    assert!(
        body.contains("sofos_index_posting_lists"),
        "posting-list count exported: {body}"
    );
    assert!(
        body.contains("sofos_index_updates_total"),
        "index update counter exported: {body}"
    );
    // The adaptive-selection instruments are pre-registered at engine
    // construction, so they scrape even before any re-selection runs.
    assert!(
        body.contains("sofos_reselect_duration_us"),
        "re-selection duration histogram exported: {body}"
    );
    assert!(
        body.contains("sofos_select_moves_total"),
        "local-search move counter exported: {body}"
    );
    assert!(
        body.contains("sofos_select_restarts_total"),
        "local-search restart counter exported: {body}"
    );

    // Unknown endpoints and bad bodies answer without closing the server.
    let (status, _) = roundtrip(&mut stream, "GET", "/nope", "", true);
    assert_eq!(status, 404);
    let (status, _) = roundtrip(&mut stream, "POST", "/query", "{не json", true);
    assert_eq!(status, 400);
    let (status, body) = roundtrip(
        &mut stream,
        "POST",
        "/query",
        r#"{"query": "NOT SPARQL"}"#,
        true,
    );
    assert_eq!(status, 400);
    assert!(body.contains("error"), "{body}");

    let stats = handle.shutdown();
    assert!(stats.served >= 8, "{stats:?}");
}

#[test]
fn concurrent_clients_stay_consistent_per_freshness_tag() {
    let handle = boot(
        StalenessPolicy::Eager,
        Backend::Epoch {
            shards: 2,
            threads: 1,
        },
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    );
    const THREADS: usize = 4;
    const ROUNDS: usize = 8;

    let observations: Vec<(i64, i64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let handle = &handle;
                scope.spawn(move || {
                    let mut stream = connect(handle);
                    let mut seen = Vec::new();
                    for round in 0..ROUNDS {
                        let insert = insert_body(&format!("t{t}r{round}"), t as i64);
                        let (status, body) =
                            roundtrip(&mut stream, "POST", "/update", &insert, true);
                        assert_eq!(status, 200, "{body}");
                        let (status, body) =
                            roundtrip(&mut stream, "POST", "/query", COUNT_QUERY, true);
                        assert_eq!(status, 200, "{body}");
                        seen.push(count_and_epoch(&body));
                    }
                    seen
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    // Internal consistency per freshness tag: the count is a function of
    // the epoch the answer was served at (inserts only, eager policy), and
    // counts are monotone in the epoch tag.
    let mut by_epoch: std::collections::BTreeMap<i64, i64> = std::collections::BTreeMap::new();
    for (count, epoch) in &observations {
        let prior = by_epoch.insert(*epoch, *count);
        assert!(
            prior.is_none() || prior == Some(*count),
            "epoch {epoch} answered with both {prior:?} and {count}"
        );
    }
    let counts: Vec<i64> = by_epoch.values().copied().collect();
    assert!(
        counts.windows(2).all(|w| w[0] <= w[1]),
        "counts must be monotone in the freshness epoch: {by_epoch:?}"
    );

    // And after the dust settles: every insert is visible.
    let (_, body) = one_shot(&handle, "POST", "/query", COUNT_QUERY);
    let (count, _) = count_and_epoch(&body);
    assert_eq!(count, (BASE_OBS + THREADS * ROUNDS) as i64);
    handle.shutdown();
}

#[test]
fn acceptor_refuses_connections_past_the_inflight_cap() {
    let handle = boot(
        StalenessPolicy::Eager,
        Backend::Serial,
        ServerConfig {
            workers: 1,
            max_inflight: 1,
            ..ServerConfig::default()
        },
    );

    // Occupy the only worker with a half-sent request.
    let mut parked = connect(&handle);
    parked
        .write_all(b"POST /query HTTP/1.1\r\nContent-Length: 5\r\n\r\nab")
        .unwrap();
    // Give the acceptor time to hand the connection to the worker.
    std::thread::sleep(Duration::from_millis(100));

    let mut refused = connect(&handle);
    let (status, body) = roundtrip(&mut refused, "GET", "/healthz", "", false);
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("retry"), "{body}");

    // The parked request still completes once its bytes arrive.
    parked.write_all(b"cde").unwrap();
    let (status, _) = read_response(&mut parked);
    assert_eq!(status, 400, "not JSON, but served rather than dropped");

    let stats = handle.shutdown();
    assert_eq!(stats.rejected_connections, 1, "{stats:?}");
}

#[test]
fn update_refuses_past_the_pending_cap() {
    // Bounded policy with a huge flush threshold: every update buffers.
    let handle = boot(
        StalenessPolicy::bounded(100, 100),
        Backend::Serial,
        ServerConfig {
            max_pending: 2,
            ..ServerConfig::default()
        },
    );
    for i in 0..2 {
        let (status, body) = one_shot(
            &handle,
            "POST",
            "/update",
            &insert_body(&format!("b{i}"), 1),
        );
        assert_eq!(status, 200, "{body}");
    }
    assert_eq!(handle.engine().buffered_updates(), 2);
    let (status, body) = one_shot(&handle, "POST", "/update", &insert_body("overflow", 1));
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("pending"), "{body}");
    handle.shutdown();
}

#[test]
fn graceful_shutdown_serves_inflight_then_refuses_new_connections() {
    let handle = boot(
        StalenessPolicy::Eager,
        Backend::Serial,
        ServerConfig::default(),
    );
    let addr = handle.addr();
    let (status, _) = one_shot(&handle, "GET", "/healthz", "");
    assert_eq!(status, 200);

    let stats = handle.shutdown();
    assert_eq!(stats.served, 1);
    assert_eq!(stats.bad_requests, 0);

    // The listener is gone: new connections fail outright (or are reset
    // before a response arrives).
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut stream) => {
            let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut buf = Vec::new();
            let n = stream.read_to_end(&mut buf).unwrap_or(0);
            assert_eq!(
                n,
                0,
                "no response after shutdown: {:?}",
                String::from_utf8_lossy(&buf)
            );
        }
    }
}
