//! Abstract syntax for the SPARQL subset.
//!
//! The AST is fully public and constructible programmatically: the SOFOS
//! cube builder (`sofos-cube`) generates view queries and the rewriter
//! (`sofos-rewrite`) emits rewritten queries directly as ASTs, bypassing
//! text. The paper's analytical query form (§3) —
//! `SELECT X̄ agg(u) WHERE P GROUP BY X̄` — maps onto [`Query`] with
//! aggregate [`Expr::Aggregate`] select items.

use sofos_rdf::{Iri, Term};
use std::fmt;

/// A parsed (or programmatically built) SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Projected items; empty together with `wildcard` = `SELECT *`.
    pub select: Vec<SelectItem>,
    /// `SELECT *`.
    pub wildcard: bool,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// The WHERE clause.
    pub pattern: GroupPattern,
    /// `GROUP BY` variables (this subset groups by variables only).
    pub group_by: Vec<String>,
    /// `HAVING` constraint over aggregates.
    pub having: Option<Expr>,
    /// `ORDER BY` conditions, applied in sequence.
    pub order_by: Vec<OrderCond>,
    /// `LIMIT`.
    pub limit: Option<usize>,
    /// `OFFSET`.
    pub offset: Option<usize>,
}

impl Query {
    /// A minimal query skeleton with the given pattern (used by builders).
    pub fn select_all(pattern: GroupPattern) -> Query {
        Query {
            select: Vec::new(),
            wildcard: true,
            distinct: false,
            pattern,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }
}

/// One item of the SELECT clause.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A plain variable: `?x`.
    Var(String),
    /// `(expr AS ?alias)` — includes aggregate expressions.
    Expr {
        /// The computed expression.
        expr: Expr,
        /// The output variable name.
        alias: String,
    },
}

impl SelectItem {
    /// The output column name of this item.
    pub fn name(&self) -> &str {
        match self {
            SelectItem::Var(v) => v,
            SelectItem::Expr { alias, .. } => alias,
        }
    }
}

/// A `{ ... }` group: triples blocks, filters, optionals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupPattern {
    /// Elements in syntactic order; evaluation folds them left to right.
    pub elements: Vec<PatternElement>,
}

impl GroupPattern {
    /// Group with a single triples block on the default graph.
    pub fn triples(patterns: Vec<TriplePattern>) -> GroupPattern {
        GroupPattern {
            elements: vec![PatternElement::Triples {
                graph: GraphSpec::Default,
                patterns,
            }],
        }
    }

    /// All variable names mentioned in triple patterns (not filters), in
    /// first-occurrence order.
    pub fn pattern_variables(&self) -> Vec<String> {
        fn push(out: &mut Vec<String>, t: &PatternTerm) {
            if let PatternTerm::Var(v) = t {
                if !out.iter().any(|x| x == v) {
                    out.push(v.clone());
                }
            }
        }
        let mut out: Vec<String> = Vec::new();
        for el in &self.elements {
            match el {
                PatternElement::Triples { patterns, .. } => {
                    for p in patterns {
                        push(&mut out, &p.subject);
                        push(&mut out, &p.predicate);
                        push(&mut out, &p.object);
                    }
                }
                PatternElement::Optional(inner) => {
                    for v in inner.pattern_variables() {
                        if !out.contains(&v) {
                            out.push(v);
                        }
                    }
                }
                PatternElement::Union(left, right) => {
                    for v in left
                        .pattern_variables()
                        .into_iter()
                        .chain(right.pattern_variables())
                    {
                        if !out.contains(&v) {
                            out.push(v);
                        }
                    }
                }
                PatternElement::Bind { var, .. } => {
                    if !out.iter().any(|x| x == var) {
                        out.push(var.clone());
                    }
                }
                PatternElement::Values { vars, .. } => {
                    for v in vars {
                        if !out.iter().any(|x| x == v) {
                            out.push(v.clone());
                        }
                    }
                }
                PatternElement::Filter(_) => {}
            }
        }
        out
    }
}

/// One element of a group pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternElement {
    /// A basic graph pattern, scoped to a graph.
    Triples {
        /// Which graph the patterns match against.
        graph: GraphSpec,
        /// The triple patterns (joined).
        patterns: Vec<TriplePattern>,
    },
    /// `FILTER (expr)`.
    Filter(Expr),
    /// `OPTIONAL { ... }` (left join).
    Optional(GroupPattern),
    /// `{ A } UNION { B }` — branch disjunction.
    Union(GroupPattern, GroupPattern),
    /// `BIND (expr AS ?v)` — computed binding.
    Bind {
        /// The computed expression.
        expr: Expr,
        /// The variable to bind (must be unbound at this point).
        var: String,
    },
    /// `VALUES (?v ...) { (t ...) ... }` — inline data joined in.
    Values {
        /// The bound variables.
        vars: Vec<String>,
        /// Rows of constants; `None` is `UNDEF`.
        rows: Vec<Vec<Option<Term>>>,
    },
}

/// Which graph a triples block targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphSpec {
    /// The dataset's default graph (the base KG).
    Default,
    /// A named graph — SOFOS materialized views live here.
    Named(Iri),
}

/// A triple pattern: each position is a variable or a constant term.
#[derive(Debug, Clone, PartialEq)]
pub struct TriplePattern {
    /// Subject position.
    pub subject: PatternTerm,
    /// Predicate position.
    pub predicate: PatternTerm,
    /// Object position.
    pub object: PatternTerm,
}

impl TriplePattern {
    /// Convenience constructor.
    pub fn new(subject: PatternTerm, predicate: PatternTerm, object: PatternTerm) -> Self {
        TriplePattern {
            subject,
            predicate,
            object,
        }
    }
}

/// A variable or constant in a triple pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternTerm {
    /// `?name`.
    Var(String),
    /// A constant RDF term.
    Const(Term),
}

impl PatternTerm {
    /// Shorthand for a variable.
    pub fn var(name: impl Into<String>) -> PatternTerm {
        PatternTerm::Var(name.into())
    }

    /// Shorthand for an IRI constant.
    pub fn iri(iri: impl Into<String>) -> PatternTerm {
        PatternTerm::Const(Term::iri(iri))
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            PatternTerm::Var(v) => Some(v),
            PatternTerm::Const(_) => None,
        }
    }
}

/// An `ORDER BY` condition.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderCond {
    /// Sort key expression.
    pub expr: Expr,
    /// `DESC` when true.
    pub descending: bool,
}

/// Expressions of the subset: boolean algebra, comparisons, arithmetic,
/// a library of built-in functions, and aggregates (only valid in SELECT /
/// HAVING / ORDER BY; the planner extracts them).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Variable reference.
    Var(String),
    /// Constant term (literal, IRI, ...).
    Const(Term),
    /// `||`.
    Or(Box<Expr>, Box<Expr>),
    /// `&&`.
    And(Box<Expr>, Box<Expr>),
    /// `!`.
    Not(Box<Expr>),
    /// Comparison.
    Compare(CompareOp, Box<Expr>, Box<Expr>),
    /// `IN` list membership.
    In(Box<Expr>, Vec<Expr>),
    /// Binary arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Built-in function call.
    Call(Func, Vec<Expr>),
    /// Aggregate (extracted by the planner before row-level evaluation).
    Aggregate(Aggregate),
}

impl Expr {
    /// Integer constant shorthand.
    pub fn int(v: i64) -> Expr {
        Expr::Const(Term::literal_int(v))
    }

    /// Variable shorthand.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Does this expression (transitively) contain an aggregate?
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate(_) => true,
            Expr::Var(_) | Expr::Const(_) => false,
            Expr::Not(e) | Expr::Neg(e) => e.has_aggregate(),
            Expr::Or(a, b) | Expr::And(a, b) | Expr::Compare(_, a, b) | Expr::Arith(_, a, b) => {
                a.has_aggregate() || b.has_aggregate()
            }
            Expr::In(e, list) => e.has_aggregate() || list.iter().any(Expr::has_aggregate),
            Expr::Call(_, args) => args.iter().any(Expr::has_aggregate),
        }
    }

    /// Variables referenced (outside aggregates), first-occurrence order.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => {
                if !out.iter().any(|x| x == v) {
                    out.push(v.clone());
                }
            }
            Expr::Const(_) => {}
            Expr::Not(e) | Expr::Neg(e) => e.collect_variables(out),
            Expr::Or(a, b) | Expr::And(a, b) | Expr::Compare(_, a, b) | Expr::Arith(_, a, b) => {
                a.collect_variables(out);
                b.collect_variables(out);
            }
            Expr::In(e, list) => {
                e.collect_variables(out);
                for item in list {
                    item.collect_variables(out);
                }
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_variables(out);
                }
            }
            Expr::Aggregate(agg) => {
                if let Some(e) = agg.expr() {
                    e.collect_variables(out);
                }
            }
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// Built-in functions of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// `BOUND(?v)`
    Bound,
    /// `STR(x)`
    Str,
    /// `LANG(x)`
    Lang,
    /// `DATATYPE(x)`
    Datatype,
    /// `isIRI(x)`
    IsIri,
    /// `isBLANK(x)`
    IsBlank,
    /// `isLITERAL(x)`
    IsLiteral,
    /// `isNUMERIC(x)`
    IsNumeric,
    /// `ABS(x)`
    Abs,
    /// `CEIL(x)`
    Ceil,
    /// `FLOOR(x)`
    Floor,
    /// `ROUND(x)`
    Round,
    /// `STRLEN(x)`
    StrLen,
    /// `CONTAINS(h, n)`
    Contains,
    /// `STRSTARTS(h, n)`
    StrStarts,
    /// `STRENDS(h, n)`
    StrEnds,
    /// `UCASE(x)`
    UCase,
    /// `LCASE(x)`
    LCase,
    /// `YEAR(x)`
    Year,
    /// `MONTH(x)`
    Month,
    /// `DAY(x)`
    Day,
    /// `REGEX(text, pattern)` (subset: `^`, `$`, `.`, `.*`)
    Regex,
    /// `COALESCE(...)`
    Coalesce,
    /// `IF(c, t, e)`
    If,
}

/// Aggregation functions of the paper's analytic query form:
/// `{SUM, AVG, COUNT, MAX, MIN}` (§3), plus `COUNT(*)`.
#[derive(Debug, Clone, PartialEq)]
pub enum Aggregate {
    /// `COUNT(*)` or `COUNT(expr)`; `distinct` applies to the expr form.
    Count {
        /// `COUNT(DISTINCT ...)`.
        distinct: bool,
        /// `None` = `COUNT(*)`.
        expr: Option<Box<Expr>>,
    },
    /// `SUM(expr)`.
    Sum {
        /// `SUM(DISTINCT ...)`.
        distinct: bool,
        /// Summed expression.
        expr: Box<Expr>,
    },
    /// `AVG(expr)`.
    Avg {
        /// `AVG(DISTINCT ...)`.
        distinct: bool,
        /// Averaged expression.
        expr: Box<Expr>,
    },
    /// `MIN(expr)`.
    Min {
        /// Minimized expression.
        expr: Box<Expr>,
    },
    /// `MAX(expr)`.
    Max {
        /// Maximized expression.
        expr: Box<Expr>,
    },
}

impl Aggregate {
    /// The aggregated expression, if any (`COUNT(*)` has none).
    pub fn expr(&self) -> Option<&Expr> {
        match self {
            Aggregate::Count { expr, .. } => expr.as_deref(),
            Aggregate::Sum { expr, .. }
            | Aggregate::Avg { expr, .. }
            | Aggregate::Min { expr }
            | Aggregate::Max { expr } => Some(expr),
        }
    }

    /// The SPARQL keyword for this aggregate.
    pub fn keyword(&self) -> &'static str {
        match self {
            Aggregate::Count { .. } => "COUNT",
            Aggregate::Sum { .. } => "SUM",
            Aggregate::Avg { .. } => "AVG",
            Aggregate::Min { .. } => "MIN",
            Aggregate::Max { .. } => "MAX",
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_variables_deduplicate_in_order() {
        let gp = GroupPattern::triples(vec![
            TriplePattern::new(
                PatternTerm::var("a"),
                PatternTerm::iri("p"),
                PatternTerm::var("b"),
            ),
            TriplePattern::new(
                PatternTerm::var("b"),
                PatternTerm::iri("q"),
                PatternTerm::var("c"),
            ),
        ]);
        assert_eq!(gp.pattern_variables(), ["a", "b", "c"]);
    }

    #[test]
    fn pattern_variables_see_into_optionals() {
        let inner = GroupPattern::triples(vec![TriplePattern::new(
            PatternTerm::var("a"),
            PatternTerm::iri("p"),
            PatternTerm::var("d"),
        )]);
        let gp = GroupPattern {
            elements: vec![
                PatternElement::Triples {
                    graph: GraphSpec::Default,
                    patterns: vec![TriplePattern::new(
                        PatternTerm::var("a"),
                        PatternTerm::iri("p"),
                        PatternTerm::var("b"),
                    )],
                },
                PatternElement::Optional(inner),
            ],
        };
        assert_eq!(gp.pattern_variables(), ["a", "b", "d"]);
    }

    #[test]
    fn has_aggregate_traverses() {
        let agg = Expr::Aggregate(Aggregate::Sum {
            distinct: false,
            expr: Box::new(Expr::var("x")),
        });
        let wrapped = Expr::Arith(ArithOp::Add, Box::new(agg), Box::new(Expr::int(1)));
        assert!(wrapped.has_aggregate());
        assert!(!Expr::var("x").has_aggregate());
    }

    #[test]
    fn expr_variables_include_aggregate_args() {
        let e = Expr::Compare(
            CompareOp::Gt,
            Box::new(Expr::Aggregate(Aggregate::Sum {
                distinct: false,
                expr: Box::new(Expr::var("pop")),
            })),
            Box::new(Expr::int(10)),
        );
        assert_eq!(e.variables(), ["pop"]);
    }

    #[test]
    fn select_item_names() {
        assert_eq!(SelectItem::Var("x".into()).name(), "x");
        let item = SelectItem::Expr {
            expr: Expr::int(1),
            alias: "one".into(),
        };
        assert_eq!(item.name(), "one");
    }

    #[test]
    fn aggregate_keywords() {
        let sum = Aggregate::Sum {
            distinct: false,
            expr: Box::new(Expr::var("x")),
        };
        assert_eq!(sum.keyword(), "SUM");
        let count = Aggregate::Count {
            distinct: false,
            expr: None,
        };
        assert_eq!(count.keyword(), "COUNT");
        assert!(count.expr().is_none());
        assert!(sum.expr().is_some());
    }
}
