//! Error types for the SPARQL engine.

use std::fmt;

/// Errors raised while parsing, planning or evaluating a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// Lexical or grammatical error in the query text.
    Parse {
        /// Byte offset in the query string where the problem was detected.
        position: usize,
        /// Human-readable description.
        message: String,
    },
    /// The query is well-formed but not supported / not well-typed
    /// (e.g. a non-grouped variable projected next to an aggregate).
    Plan(String),
    /// A runtime evaluation failure (e.g. comparing incompatible values in
    /// ORDER BY is tolerated; this is for internal invariant breaches).
    Eval(String),
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparqlError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            SparqlError::Plan(msg) => write!(f, "planning error: {msg}"),
            SparqlError::Eval(msg) => write!(f, "evaluation error: {msg}"),
        }
    }
}

impl std::error::Error for SparqlError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SparqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SparqlError::Parse {
            position: 10,
            message: "unexpected '}'".into(),
        };
        assert_eq!(e.to_string(), "parse error at byte 10: unexpected '}'");
        assert!(SparqlError::Plan("x".into())
            .to_string()
            .contains("planning"));
        assert!(SparqlError::Eval("y".into())
            .to_string()
            .contains("evaluation"));
    }
}
