//! Query evaluation: BGP joins, filters, optionals, grouping, modifiers.
//!
//! The evaluator is deliberately a *materializing* engine: each operator
//! consumes and produces vectors of binding rows. The queries SOFOS runs are
//! analytical (grouped aggregates over pattern matches), where the dominant
//! cost is the BGP join — handled with selectivity-ordered index nested-loop
//! joins against the store's permutation indexes.

use crate::ast::*;
use crate::error::{Result, SparqlError};
use crate::expr::{eval_expr, AggContext, Bindings, EvalScope, TermSource};
use crate::parse::parse_query;
use crate::results::QueryResults;
use crate::value::Value;
use sofos_rdf::{Dictionary, FxHashMap, FxHashSet, Numeric, Term, TermId};
use sofos_store::{Dataset, GraphStore, IdPattern};
use std::cmp::Ordering;

/// Evaluates queries against a [`Dataset`].
pub struct Evaluator<'a> {
    dataset: &'a Dataset,
    join_ordering: bool,
}

/// The evaluation-local term dictionary: the store dictionary plus an
/// overlay for terms produced by `BIND` expressions and `VALUES` constants
/// that are absent from the stored data. Overlay ids start after the base
/// dictionary's range; the store never yields them, so joins against stored
/// triples remain id-correct.
pub struct WorkingDict<'a> {
    base: &'a Dictionary,
    extra: Vec<Term>,
    index: FxHashMap<Term, TermId>,
}

impl<'a> WorkingDict<'a> {
    fn new(base: &'a Dictionary) -> WorkingDict<'a> {
        WorkingDict {
            base,
            extra: Vec::new(),
            index: FxHashMap::default(),
        }
    }

    /// Intern a term: the base id when stored, an overlay id otherwise.
    fn intern(&mut self, term: &Term) -> TermId {
        if let Some(id) = self.base.get_id(term) {
            return id;
        }
        if let Some(&id) = self.index.get(term) {
            return id;
        }
        let id =
            TermId(u32::try_from(self.base.len() + self.extra.len()).expect("term id overflow"));
        self.extra.push(term.clone());
        self.index.insert(term.clone(), id);
        id
    }
}

impl TermSource for WorkingDict<'_> {
    fn resolve(&self, id: TermId) -> &Term {
        if id.index() < self.base.len() {
            self.base.term_unchecked(id)
        } else {
            &self.extra[id.index() - self.base.len()]
        }
    }
}

/// One triple pattern with variables resolved to binding slots.
#[derive(Debug, Clone, Copy)]
struct EncPattern {
    s: Slot,
    p: Slot,
    o: Slot,
}

/// A pattern position: a variable slot, a constant id, or a constant term
/// that is absent from the dictionary (matches nothing).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Slot {
    Var(usize),
    Const(TermId),
    Missing,
}

impl<'a> Evaluator<'a> {
    /// Create an evaluator over a dataset.
    pub fn new(dataset: &'a Dataset) -> Evaluator<'a> {
        Evaluator {
            dataset,
            join_ordering: true,
        }
    }

    /// Disable greedy selectivity-based join ordering (patterns then join
    /// in syntactic order). Exists for the join-ordering ablation bench;
    /// results are identical, only performance differs.
    pub fn without_join_ordering(mut self) -> Evaluator<'a> {
        self.join_ordering = false;
        self
    }

    /// Parse and evaluate a query string.
    pub fn evaluate_str(&self, text: &str) -> Result<QueryResults> {
        let query = parse_query(text)?;
        self.evaluate(&query)
    }

    /// Evaluate a parsed query.
    pub fn evaluate(&self, query: &Query) -> Result<QueryResults> {
        // --- variable table -------------------------------------------------
        let mut var_index: FxHashMap<String, usize> = FxHashMap::default();
        let pattern_vars = query.pattern.pattern_variables();
        for v in &pattern_vars {
            let next = var_index.len();
            var_index.entry(v.clone()).or_insert(next);
        }
        // Expression-only variables (e.g. BOUND on a never-bound var) get
        // slots too, so lookups are well-defined.
        let mut extra_vars: Vec<String> = Vec::new();
        for item in &query.select {
            if let SelectItem::Expr { expr, .. } = item {
                extra_vars.extend(expr.variables());
            }
        }
        if let Some(h) = &query.having {
            extra_vars.extend(h.variables());
        }
        for cond in &query.order_by {
            extra_vars.extend(cond.expr.variables());
        }
        for element in &query.pattern.elements {
            if let PatternElement::Filter(f) = element {
                extra_vars.extend(f.variables());
            }
        }
        for v in extra_vars {
            let next = var_index.len();
            var_index.entry(v).or_insert(next);
        }
        let nvars = var_index.len();

        // --- WHERE clause ----------------------------------------------------
        let mut wdict = WorkingDict::new(self.dataset.dict());
        let rows = self.eval_group(
            vec![vec![None; nvars]],
            &query.pattern,
            &var_index,
            &mut wdict,
        )?;

        // --- aggregation check ------------------------------------------------
        let select_has_agg = query.select.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.has_aggregate(),
            SelectItem::Var(_) => false,
        });
        let grouped = !query.group_by.is_empty()
            || select_has_agg
            || query.having.as_ref().is_some_and(Expr::has_aggregate);

        if grouped {
            self.finish_grouped(query, rows, &var_index, &wdict)
        } else {
            self.finish_plain(query, rows, &var_index, &pattern_vars, &wdict)
        }
    }

    // ---- group pattern evaluation -----------------------------------------

    fn eval_group(
        &self,
        mut rows: Vec<Bindings>,
        group: &GroupPattern,
        var_index: &FxHashMap<String, usize>,
        wdict: &mut WorkingDict<'_>,
    ) -> Result<Vec<Bindings>> {
        for element in &group.elements {
            if rows.is_empty() {
                return Ok(rows);
            }
            match element {
                PatternElement::Triples { graph, patterns } => {
                    let store = match graph {
                        GraphSpec::Default => Some(self.dataset.default_graph()),
                        GraphSpec::Named(iri) => self
                            .dataset
                            .dict()
                            .get_id(&Term::Iri(iri.clone()))
                            .and_then(|id| self.dataset.graph(Some(id))),
                    };
                    let Some(store) = store else {
                        // Unknown graph = empty graph.
                        return Ok(Vec::new());
                    };
                    let encoded = self.encode_patterns(patterns, var_index);
                    rows = self.eval_bgp(store, encoded, rows);
                }
                PatternElement::Filter(expr) => {
                    let dict: &dyn TermSource = wdict;
                    rows.retain(|row| {
                        let scope = EvalScope {
                            dict,
                            var_index,
                            bindings: row,
                            aggs: None,
                        };
                        eval_expr(expr, &scope)
                            .and_then(|v| v.ebv())
                            .unwrap_or(false)
                    });
                }
                PatternElement::Optional(inner) => {
                    let mut out = Vec::with_capacity(rows.len());
                    for row in rows {
                        let extended =
                            self.eval_group(vec![row.clone()], inner, var_index, wdict)?;
                        if extended.is_empty() {
                            out.push(row);
                        } else {
                            out.extend(extended);
                        }
                    }
                    rows = out;
                }
                PatternElement::Union(left, right) => {
                    let mut out = Vec::new();
                    for row in rows {
                        out.extend(self.eval_group(vec![row.clone()], left, var_index, wdict)?);
                        out.extend(self.eval_group(vec![row], right, var_index, wdict)?);
                    }
                    rows = out;
                }
                PatternElement::Bind { expr, var } => {
                    let idx = var_index[var.as_str()];
                    let mut out = Vec::with_capacity(rows.len());
                    for mut row in rows {
                        if row[idx].is_some() {
                            // Rebinding is a SPARQL error; the row is dropped.
                            continue;
                        }
                        let value = {
                            let scope = EvalScope {
                                dict: wdict as &dyn TermSource,
                                var_index,
                                bindings: &row,
                                aggs: None,
                            };
                            eval_expr(expr, &scope)
                        };
                        if let Some(v) = value {
                            let term = v.to_term();
                            row[idx] = Some(wdict.intern(&term));
                        }
                        // Expression errors leave the variable unbound.
                        out.push(row);
                    }
                    rows = out;
                }
                PatternElement::Values { vars, rows: data } => {
                    let slots: Vec<usize> = vars.iter().map(|v| var_index[v.as_str()]).collect();
                    let data_ids: Vec<Vec<Option<TermId>>> = data
                        .iter()
                        .map(|row| {
                            row.iter()
                                .map(|cell| cell.as_ref().map(|t| wdict.intern(t)))
                                .collect()
                        })
                        .collect();
                    let mut out = Vec::new();
                    for row in &rows {
                        for data_row in &data_ids {
                            let mut merged = row.clone();
                            let mut compatible = true;
                            for (&slot, cell) in slots.iter().zip(data_row) {
                                if let Some(id) = cell {
                                    match merged[slot] {
                                        Some(existing) if existing != *id => {
                                            compatible = false;
                                            break;
                                        }
                                        _ => merged[slot] = Some(*id),
                                    }
                                }
                            }
                            if compatible {
                                out.push(merged);
                            }
                        }
                    }
                    rows = out;
                }
            }
        }
        Ok(rows)
    }

    fn encode_patterns(
        &self,
        patterns: &[TriplePattern],
        var_index: &FxHashMap<String, usize>,
    ) -> Vec<EncPattern> {
        let encode = |t: &PatternTerm| -> Slot {
            match t {
                PatternTerm::Var(name) => Slot::Var(var_index[name.as_str()]),
                PatternTerm::Const(term) => match self.dataset.dict().get_id(term) {
                    Some(id) => Slot::Const(id),
                    None => Slot::Missing,
                },
            }
        };
        patterns
            .iter()
            .map(|p| EncPattern {
                s: encode(&p.subject),
                p: encode(&p.predicate),
                o: encode(&p.object),
            })
            .collect()
    }

    /// Index nested-loop join over the BGP with greedy selectivity ordering.
    fn eval_bgp(
        &self,
        store: &GraphStore,
        mut patterns: Vec<EncPattern>,
        mut rows: Vec<Bindings>,
    ) -> Vec<Bindings> {
        // Variables already bound in the incoming rows (conservatively: in
        // the first row; rows from the same block share their bound set).
        let mut bound: FxHashSet<usize> = FxHashSet::default();
        if let Some(first) = rows.first() {
            for (i, b) in first.iter().enumerate() {
                if b.is_some() {
                    bound.insert(i);
                }
            }
        }

        while !patterns.is_empty() {
            // Greedy: next pattern = lowest estimated cardinality given what
            // is bound so far (or syntactic order when ordering is disabled).
            let mut best = 0usize;
            if self.join_ordering {
                let mut best_score = f64::INFINITY;
                for (i, pat) in patterns.iter().enumerate() {
                    let score = Self::pattern_score(store, pat, &bound);
                    if score < best_score {
                        best_score = score;
                        best = i;
                    }
                }
            }
            let pat = if self.join_ordering {
                patterns.swap_remove(best)
            } else {
                patterns.remove(0)
            };

            let mut next_rows = Vec::with_capacity(rows.len());
            for row in &rows {
                self.match_pattern(store, &pat, row, &mut next_rows);
            }
            rows = next_rows;
            if rows.is_empty() {
                return rows;
            }
            for slot in [pat.s, pat.p, pat.o] {
                if let Slot::Var(idx) = slot {
                    bound.insert(idx);
                }
            }
        }
        rows
    }

    /// Estimated result size of a pattern: the exact index count with
    /// constants bound, discounted for variables that previous joins bound
    /// (they act as constants at execution time).
    fn pattern_score(store: &GraphStore, pat: &EncPattern, bound: &FxHashSet<usize>) -> f64 {
        let as_const = |s: Slot| match s {
            Slot::Const(id) => Some(id),
            _ => None,
        };
        if matches!(pat.s, Slot::Missing)
            || matches!(pat.p, Slot::Missing)
            || matches!(pat.o, Slot::Missing)
        {
            return -1.0; // matches nothing: evaluate first, short-circuits
        }
        let base = store.count(IdPattern::new(
            as_const(pat.s),
            as_const(pat.p),
            as_const(pat.o),
        )) as f64;
        let mut discount = 1.0;
        for slot in [pat.s, pat.p, pat.o] {
            if let Slot::Var(idx) = slot {
                if bound.contains(&idx) {
                    // A bound variable narrows the scan like a constant;
                    // 1/8 per position is a crude but effective discount.
                    discount /= 8.0;
                }
            }
        }
        base * discount
    }

    /// Extend one row with every match of `pat`.
    fn match_pattern(
        &self,
        store: &GraphStore,
        pat: &EncPattern,
        row: &Bindings,
        out: &mut Vec<Bindings>,
    ) {
        let resolve = |slot: Slot| -> Option<Option<TermId>> {
            match slot {
                Slot::Const(id) => Some(Some(id)),
                Slot::Var(idx) => Some(row[idx]),
                Slot::Missing => None,
            }
        };
        let (Some(s), Some(p), Some(o)) = (resolve(pat.s), resolve(pat.p), resolve(pat.o)) else {
            return; // constant term absent from the data: no matches
        };
        for triple in store.scan(IdPattern::new(s, p, o)) {
            let mut new_row = row.clone();
            let mut ok = true;
            for (slot, value) in [(pat.s, triple[0]), (pat.p, triple[1]), (pat.o, triple[2])] {
                if let Slot::Var(idx) = slot {
                    match new_row[idx] {
                        Some(existing) if existing != value => {
                            ok = false;
                            break;
                        }
                        _ => new_row[idx] = Some(value),
                    }
                }
            }
            if ok {
                out.push(new_row);
            }
        }
    }

    // ---- plain (non-grouped) finishing -------------------------------------

    fn finish_plain(
        &self,
        query: &Query,
        rows: Vec<Bindings>,
        var_index: &FxHashMap<String, usize>,
        pattern_vars: &[String],
        wdict: &WorkingDict<'_>,
    ) -> Result<QueryResults> {
        let items: Vec<SelectItem> = if query.wildcard {
            pattern_vars.iter().cloned().map(SelectItem::Var).collect()
        } else {
            query.select.clone()
        };
        let names: Vec<String> = items.iter().map(|i| i.name().to_string()).collect();

        let mut out_rows: Vec<Vec<Option<Term>>> = Vec::with_capacity(rows.len());
        let mut order_keys: Vec<Vec<Option<Value>>> = Vec::with_capacity(rows.len());
        for row in &rows {
            let scope = EvalScope {
                dict: wdict as &dyn TermSource,
                var_index,
                bindings: row,
                aggs: None,
            };
            let mut cells = Vec::with_capacity(items.len());
            let mut alias_values: FxHashMap<&str, Option<Value>> = FxHashMap::default();
            for item in &items {
                let cell = match item {
                    SelectItem::Var(name) => var_index
                        .get(name.as_str())
                        .and_then(|&idx| row[idx])
                        .map(|id| wdict.resolve(id).clone()),
                    SelectItem::Expr { expr, alias } => {
                        let v = eval_expr(expr, &scope);
                        alias_values.insert(alias.as_str(), v.clone());
                        v.map(|v| v.to_term())
                    }
                };
                cells.push(cell);
            }
            if !query.order_by.is_empty() {
                order_keys.push(
                    query
                        .order_by
                        .iter()
                        .map(|cond| {
                            if let Expr::Var(name) = &cond.expr {
                                if let Some(v) = alias_values.get(name.as_str()) {
                                    return v.clone();
                                }
                            }
                            eval_expr(&cond.expr, &scope)
                        })
                        .collect(),
                );
            }
            out_rows.push(cells);
        }

        self.apply_modifiers(query, names, out_rows, order_keys)
    }

    // ---- grouped finishing ---------------------------------------------------

    fn finish_grouped(
        &self,
        query: &Query,
        rows: Vec<Bindings>,
        var_index: &FxHashMap<String, usize>,
        wdict: &WorkingDict<'_>,
    ) -> Result<QueryResults> {
        if query.wildcard {
            return Err(SparqlError::Plan(
                "SELECT * cannot be combined with aggregation".into(),
            ));
        }
        // Validate: plain projected vars must be grouped.
        for item in &query.select {
            if let SelectItem::Var(v) = item {
                if !query.group_by.iter().any(|g| g == v) {
                    return Err(SparqlError::Plan(format!(
                        "variable ?{v} is projected but not in GROUP BY"
                    )));
                }
            }
        }

        // Extract the distinct aggregates from SELECT / HAVING / ORDER BY.
        let mut aggregates: Vec<Aggregate> = Vec::new();
        let mut collect = |expr: &Expr| collect_aggregates(expr, &mut aggregates);
        for item in &query.select {
            if let SelectItem::Expr { expr, .. } = item {
                collect(expr);
            }
        }
        if let Some(h) = &query.having {
            collect_aggregates(h, &mut aggregates);
        }
        for cond in &query.order_by {
            collect_aggregates(&cond.expr, &mut aggregates);
        }

        let key_slots: Vec<usize> = query
            .group_by
            .iter()
            .map(|g| var_index.get(g.as_str()).copied().unwrap_or(usize::MAX))
            .collect();

        // Group rows. Insertion order is preserved for determinism.
        let mut group_order: Vec<Vec<Option<TermId>>> = Vec::new();
        let mut groups: FxHashMap<Vec<Option<TermId>>, (Bindings, Vec<AggAcc>)> =
            FxHashMap::default();
        for row in &rows {
            let key: Vec<Option<TermId>> = key_slots
                .iter()
                .map(|&slot| if slot == usize::MAX { None } else { row[slot] })
                .collect();
            let entry = groups.entry(key.clone()).or_insert_with(|| {
                group_order.push(key.clone());
                (row.clone(), aggregates.iter().map(AggAcc::new).collect())
            });
            let scope = EvalScope {
                dict: wdict as &dyn TermSource,
                var_index,
                bindings: row,
                aggs: None,
            };
            for (agg, acc) in aggregates.iter().zip(entry.1.iter_mut()) {
                let value = match agg.expr() {
                    Some(e) => eval_expr(e, &scope),
                    None => Some(Value::Boolean(true)), // COUNT(*): any row
                };
                acc.push(value, agg.expr().is_none());
            }
        }

        // Aggregation without GROUP BY over zero rows yields one group.
        if groups.is_empty() && query.group_by.is_empty() {
            let key: Vec<Option<TermId>> = Vec::new();
            group_order.push(key.clone());
            groups.insert(
                key,
                (
                    vec![None; var_index.len()],
                    aggregates.iter().map(AggAcc::new).collect(),
                ),
            );
        }

        let names: Vec<String> = query.select.iter().map(|i| i.name().to_string()).collect();
        let mut out_rows = Vec::with_capacity(groups.len());
        let mut order_keys: Vec<Vec<Option<Value>>> = Vec::new();
        for key in &group_order {
            let (rep, accs) = &groups[key];
            let agg_values: Vec<Option<Value>> = accs.iter().map(AggAcc::finish).collect();
            let ctx = AggContext {
                aggregates: &aggregates,
                values: &agg_values,
            };
            let scope = EvalScope {
                dict: wdict as &dyn TermSource,
                var_index,
                bindings: rep,
                aggs: Some(&ctx),
            };
            // HAVING.
            if let Some(having) = &query.having {
                if !eval_expr(having, &scope)
                    .and_then(|v| v.ebv())
                    .unwrap_or(false)
                {
                    continue;
                }
            }
            let mut cells = Vec::with_capacity(query.select.len());
            let mut alias_values: FxHashMap<&str, Option<Value>> = FxHashMap::default();
            for item in &query.select {
                let cell = match item {
                    SelectItem::Var(name) => var_index
                        .get(name.as_str())
                        .and_then(|&idx| rep[idx])
                        .map(|id| wdict.resolve(id).clone()),
                    SelectItem::Expr { expr, alias } => {
                        let v = eval_expr(expr, &scope);
                        alias_values.insert(alias.as_str(), v.clone());
                        v.map(|v| v.to_term())
                    }
                };
                cells.push(cell);
            }
            if !query.order_by.is_empty() {
                order_keys.push(
                    query
                        .order_by
                        .iter()
                        .map(|cond| {
                            if let Expr::Var(name) = &cond.expr {
                                if let Some(v) = alias_values.get(name.as_str()) {
                                    return v.clone();
                                }
                            }
                            eval_expr(&cond.expr, &scope)
                        })
                        .collect(),
                );
            }
            out_rows.push(cells);
        }

        self.apply_modifiers(query, names, out_rows, order_keys)
    }

    // ---- shared modifiers: DISTINCT, ORDER BY, LIMIT/OFFSET -----------------

    fn apply_modifiers(
        &self,
        query: &Query,
        names: Vec<String>,
        mut rows: Vec<Vec<Option<Term>>>,
        order_keys: Vec<Vec<Option<Value>>>,
    ) -> Result<QueryResults> {
        // ORDER BY (stable sort over precomputed keys).
        if !query.order_by.is_empty() && !rows.is_empty() {
            debug_assert_eq!(rows.len(), order_keys.len());
            let mut indices: Vec<usize> = (0..rows.len()).collect();
            indices.sort_by(|&a, &b| {
                for (cond, (ka, kb)) in query
                    .order_by
                    .iter()
                    .zip(order_keys[a].iter().zip(order_keys[b].iter()))
                {
                    let ord = match (ka, kb) {
                        (None, None) => Ordering::Equal,
                        (None, Some(_)) => Ordering::Less,
                        (Some(_), None) => Ordering::Greater,
                        (Some(x), Some(y)) => x.total_cmp(y),
                    };
                    let ord = if cond.descending { ord.reverse() } else { ord };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
            rows = indices.into_iter().map(|i| rows[i].clone()).collect();
        }

        // DISTINCT preserves first occurrence.
        if query.distinct {
            let mut seen: std::collections::HashSet<Vec<Option<Term>>> =
                std::collections::HashSet::new();
            rows.retain(|row| seen.insert(row.clone()));
        }

        // OFFSET / LIMIT.
        let offset = query.offset.unwrap_or(0);
        if offset > 0 {
            rows = rows.into_iter().skip(offset).collect();
        }
        if let Some(limit) = query.limit {
            rows.truncate(limit);
        }

        Ok(QueryResults { vars: names, rows })
    }
}

/// Collect distinct aggregates appearing in an expression, in order.
fn collect_aggregates(expr: &Expr, out: &mut Vec<Aggregate>) {
    match expr {
        Expr::Aggregate(agg) => {
            if !out.contains(agg) {
                out.push(agg.clone());
            }
        }
        Expr::Var(_) | Expr::Const(_) => {}
        Expr::Not(e) | Expr::Neg(e) => collect_aggregates(e, out),
        Expr::Or(a, b) | Expr::And(a, b) | Expr::Compare(_, a, b) | Expr::Arith(_, a, b) => {
            collect_aggregates(a, out);
            collect_aggregates(b, out);
        }
        Expr::In(e, list) => {
            collect_aggregates(e, out);
            for item in list {
                collect_aggregates(item, out);
            }
        }
        Expr::Call(_, args) => {
            for a in args {
                collect_aggregates(a, out);
            }
        }
    }
}

/// Aggregate accumulator.
///
/// Error/skip policy (documented subset semantics): unbound/error inputs are
/// skipped by COUNT/MIN/MAX; a non-numeric input poisons SUM/AVG (result is
/// unbound). SUM/AVG of an empty group is 0, per the SPARQL definition;
/// MIN/MAX of an empty group is unbound.
enum AggAcc {
    Count {
        n: i64,
        distinct: bool,
        seen: FxHashSet<String>,
        star: bool,
    },
    Sum {
        acc: Numeric,
        poisoned: bool,
        distinct: bool,
        seen: FxHashSet<String>,
    },
    Avg {
        acc: Numeric,
        n: i64,
        poisoned: bool,
        distinct: bool,
        seen: FxHashSet<String>,
    },
    Min {
        best: Option<Value>,
    },
    Max {
        best: Option<Value>,
    },
}

impl AggAcc {
    fn new(agg: &Aggregate) -> AggAcc {
        match agg {
            Aggregate::Count { distinct, expr } => AggAcc::Count {
                n: 0,
                distinct: *distinct,
                seen: FxHashSet::default(),
                star: expr.is_none(),
            },
            Aggregate::Sum { distinct, .. } => AggAcc::Sum {
                acc: Numeric::Integer(0),
                poisoned: false,
                distinct: *distinct,
                seen: FxHashSet::default(),
            },
            Aggregate::Avg { distinct, .. } => AggAcc::Avg {
                acc: Numeric::Integer(0),
                n: 0,
                poisoned: false,
                distinct: *distinct,
                seen: FxHashSet::default(),
            },
            Aggregate::Min { .. } => AggAcc::Min { best: None },
            Aggregate::Max { .. } => AggAcc::Max { best: None },
        }
    }

    fn push(&mut self, value: Option<Value>, is_star: bool) {
        match self {
            AggAcc::Count {
                n,
                distinct,
                seen,
                star,
            } => {
                if *star || is_star {
                    *n += 1;
                    return;
                }
                let Some(v) = value else { return };
                if *distinct {
                    if seen.insert(v.distinct_key()) {
                        *n += 1;
                    }
                } else {
                    *n += 1;
                }
            }
            AggAcc::Sum {
                acc,
                poisoned,
                distinct,
                seen,
            } => {
                let Some(v) = value else { return };
                if *distinct && !seen.insert(v.distinct_key()) {
                    return;
                }
                match v.as_numeric() {
                    Some(n) => *acc = Numeric::add(*acc, n),
                    None => *poisoned = true,
                }
            }
            AggAcc::Avg {
                acc,
                n,
                poisoned,
                distinct,
                seen,
            } => {
                let Some(v) = value else { return };
                if *distinct && !seen.insert(v.distinct_key()) {
                    return;
                }
                match v.as_numeric() {
                    Some(num) => {
                        *acc = Numeric::add(*acc, num);
                        *n += 1;
                    }
                    None => *poisoned = true,
                }
            }
            AggAcc::Min { best } => {
                let Some(v) = value else { return };
                let replace = match best {
                    Some(b) => v.total_cmp(b) == Ordering::Less,
                    None => true,
                };
                if replace {
                    *best = Some(v);
                }
            }
            AggAcc::Max { best } => {
                let Some(v) = value else { return };
                let replace = match best {
                    Some(b) => v.total_cmp(b) == Ordering::Greater,
                    None => true,
                };
                if replace {
                    *best = Some(v);
                }
            }
        }
    }

    fn finish(&self) -> Option<Value> {
        match self {
            AggAcc::Count { n, .. } => Some(Value::Numeric(Numeric::Integer(*n))),
            AggAcc::Sum { acc, poisoned, .. } => {
                if *poisoned {
                    None
                } else {
                    Some(Value::Numeric(*acc))
                }
            }
            AggAcc::Avg {
                acc, n, poisoned, ..
            } => {
                if *poisoned {
                    return None;
                }
                if *n == 0 {
                    return Some(Value::Numeric(Numeric::Integer(0)));
                }
                Numeric::div(*acc, Numeric::Integer(*n)).map(Value::Numeric)
            }
            AggAcc::Min { best } | AggAcc::Max { best } => best.clone(),
        }
    }
}
