//! Expression evaluation.
//!
//! Expressions evaluate to `Option<Value>`: `None` is SPARQL's *error*
//! outcome, which makes `FILTER` drop the row (errors never abort a query).
//! Aggregate sub-expressions are resolved through an [`AggContext`] supplied
//! by the group-by operator; hitting an aggregate without one is an error
//! value (the planner guarantees this does not happen for valid queries).

use crate::ast::{Aggregate, ArithOp, CompareOp, Expr, Func};
use crate::value::Value;
use sofos_rdf::vocab::xsd;
use sofos_rdf::{Dictionary, FxHashMap, Numeric, Term, TermId};
use std::cmp::Ordering;

/// Row bindings: variable slot → bound term id.
pub type Bindings = Vec<Option<TermId>>;

/// Resolves term ids to terms. Implemented by the store dictionary and by
/// the evaluator's working dictionary (which overlays `BIND`/`VALUES`
/// constants that are absent from the stored data).
pub trait TermSource {
    /// Resolve an id to its term. Ids come from the same evaluation, so
    /// unknown ids are a logic error (panic).
    fn resolve(&self, id: TermId) -> &Term;
}

impl TermSource for Dictionary {
    fn resolve(&self, id: TermId) -> &Term {
        self.term_unchecked(id)
    }
}

/// Resolved aggregate values for the current group, paired with the
/// aggregate expressions they belong to (matched structurally).
pub struct AggContext<'a> {
    /// The extracted aggregates, in planner order.
    pub aggregates: &'a [Aggregate],
    /// The value each aggregate produced for this group.
    pub values: &'a [Option<Value>],
}

/// Everything expression evaluation needs.
pub struct EvalScope<'a> {
    /// Term source for decoding bound term ids.
    pub dict: &'a dyn TermSource,
    /// Variable name → binding slot.
    pub var_index: &'a FxHashMap<String, usize>,
    /// The current row.
    pub bindings: &'a Bindings,
    /// Group aggregate values, when evaluating HAVING/SELECT over groups.
    pub aggs: Option<&'a AggContext<'a>>,
}

impl<'a> EvalScope<'a> {
    fn lookup(&self, var: &str) -> Option<Value> {
        let idx = *self.var_index.get(var)?;
        let id = (*self.bindings.get(idx)?)?;
        Some(Value::from_term(self.dict.resolve(id)))
    }

    fn var_is_bound(&self, var: &str) -> bool {
        self.var_index
            .get(var)
            .and_then(|&idx| self.bindings.get(idx))
            .is_some_and(Option::is_some)
    }
}

/// Evaluate an expression; `None` is the SPARQL error value.
pub fn eval_expr(expr: &Expr, scope: &EvalScope<'_>) -> Option<Value> {
    match expr {
        Expr::Var(name) => scope.lookup(name),
        Expr::Const(term) => Some(Value::from_term(term)),
        Expr::Or(a, b) => {
            // SPARQL three-valued OR: true if either is true.
            let left = eval_expr(a, scope).and_then(|v| v.ebv());
            let right = eval_expr(b, scope).and_then(|v| v.ebv());
            match (left, right) {
                (Some(true), _) | (_, Some(true)) => Some(Value::Boolean(true)),
                (Some(false), Some(false)) => Some(Value::Boolean(false)),
                _ => None,
            }
        }
        Expr::And(a, b) => {
            let left = eval_expr(a, scope).and_then(|v| v.ebv());
            let right = eval_expr(b, scope).and_then(|v| v.ebv());
            match (left, right) {
                (Some(false), _) | (_, Some(false)) => Some(Value::Boolean(false)),
                (Some(true), Some(true)) => Some(Value::Boolean(true)),
                _ => None,
            }
        }
        Expr::Not(e) => {
            let b = eval_expr(e, scope)?.ebv()?;
            Some(Value::Boolean(!b))
        }
        Expr::Compare(op, a, b) => {
            let left = eval_expr(a, scope)?;
            let right = eval_expr(b, scope)?;
            let result = match op {
                CompareOp::Eq => left.sparql_eq(&right),
                CompareOp::Ne => !left.sparql_eq(&right),
                CompareOp::Lt => left.sparql_cmp(&right)? == Ordering::Less,
                CompareOp::Le => left.sparql_cmp(&right)? != Ordering::Greater,
                CompareOp::Gt => left.sparql_cmp(&right)? == Ordering::Greater,
                CompareOp::Ge => left.sparql_cmp(&right)? != Ordering::Less,
            };
            Some(Value::Boolean(result))
        }
        Expr::In(e, list) => {
            let needle = eval_expr(e, scope)?;
            for item in list {
                if let Some(v) = eval_expr(item, scope) {
                    if needle.sparql_eq(&v) {
                        return Some(Value::Boolean(true));
                    }
                }
            }
            Some(Value::Boolean(false))
        }
        Expr::Arith(op, a, b) => {
            let left = eval_expr(a, scope)?.as_numeric()?;
            let right = eval_expr(b, scope)?.as_numeric()?;
            let result = match op {
                ArithOp::Add => Numeric::add(left, right),
                ArithOp::Sub => Numeric::sub(left, right),
                ArithOp::Mul => Numeric::mul(left, right),
                ArithOp::Div => Numeric::div(left, right)?,
            };
            Some(Value::Numeric(result))
        }
        Expr::Neg(e) => {
            let n = eval_expr(e, scope)?.as_numeric()?;
            Some(Value::Numeric(Numeric::neg(n)))
        }
        Expr::Call(func, args) => eval_call(*func, args, scope),
        Expr::Aggregate(agg) => {
            let ctx = scope.aggs?;
            let idx = ctx.aggregates.iter().position(|a| a == agg)?;
            ctx.values.get(idx)?.clone()
        }
    }
}

fn eval_call(func: Func, args: &[Expr], scope: &EvalScope<'_>) -> Option<Value> {
    match func {
        Func::Bound => match &args[0] {
            Expr::Var(name) => Some(Value::Boolean(scope.var_is_bound(name))),
            _ => None,
        },
        Func::Coalesce => args.iter().find_map(|a| eval_expr(a, scope)),
        Func::If => {
            let cond = eval_expr(&args[0], scope)?.ebv()?;
            if cond {
                eval_expr(&args[1], scope)
            } else {
                eval_expr(&args[2], scope)
            }
        }
        _ => {
            let first = eval_expr(&args[0], scope)?;
            match func {
                Func::Str => {
                    let text = match &first {
                        Value::Iri(i) => i.clone(),
                        Value::Str { text, .. } => text.clone(),
                        Value::Other { text, .. } => text.clone(),
                        Value::Boolean(b) => b.to_string(),
                        Value::Numeric(n) => match n {
                            Numeric::Integer(v) => v.to_string(),
                            Numeric::Decimal(d) => d.to_string(),
                            Numeric::Double(v) => v.to_string(),
                        },
                        Value::Blank(_) => return None,
                    };
                    Some(Value::Str { text, lang: None })
                }
                Func::Lang => match &first {
                    Value::Str { lang, .. } => Some(Value::Str {
                        text: lang.clone().unwrap_or_default(),
                        lang: None,
                    }),
                    Value::Numeric(_) | Value::Boolean(_) | Value::Other { .. } => {
                        Some(Value::Str {
                            text: String::new(),
                            lang: None,
                        })
                    }
                    _ => None,
                },
                Func::Datatype => {
                    let dt = match &first {
                        Value::Numeric(Numeric::Integer(_)) => xsd::INTEGER,
                        Value::Numeric(Numeric::Decimal(_)) => xsd::DECIMAL,
                        Value::Numeric(Numeric::Double(_)) => xsd::DOUBLE,
                        Value::Boolean(_) => xsd::BOOLEAN,
                        Value::Str { lang: None, .. } => xsd::STRING,
                        Value::Str { lang: Some(_), .. } => xsd::LANG_STRING,
                        Value::Other { datatype, .. } => return Some(Value::Iri(datatype.clone())),
                        _ => return None,
                    };
                    Some(Value::Iri(dt.to_string()))
                }
                Func::IsIri => Some(Value::Boolean(matches!(first, Value::Iri(_)))),
                Func::IsBlank => Some(Value::Boolean(matches!(first, Value::Blank(_)))),
                Func::IsLiteral => Some(Value::Boolean(!matches!(
                    first,
                    Value::Iri(_) | Value::Blank(_)
                ))),
                Func::IsNumeric => Some(Value::Boolean(matches!(first, Value::Numeric(_)))),
                Func::Abs | Func::Ceil | Func::Floor | Func::Round => {
                    let n = first.as_numeric()?;
                    let out = match (func, n) {
                        (Func::Abs, Numeric::Integer(v)) => Numeric::Integer(v.checked_abs()?),
                        (Func::Abs, Numeric::Decimal(d)) => Numeric::Decimal(d.checked_abs()?),
                        (Func::Abs, Numeric::Double(v)) => Numeric::Double(v.abs()),
                        (Func::Ceil, Numeric::Integer(v)) => Numeric::Integer(v),
                        (Func::Ceil, Numeric::Decimal(d)) => Numeric::Decimal(d.ceil()),
                        (Func::Ceil, Numeric::Double(v)) => Numeric::Double(v.ceil()),
                        (Func::Floor, Numeric::Integer(v)) => Numeric::Integer(v),
                        (Func::Floor, Numeric::Decimal(d)) => Numeric::Decimal(d.floor()),
                        (Func::Floor, Numeric::Double(v)) => Numeric::Double(v.floor()),
                        (Func::Round, Numeric::Integer(v)) => Numeric::Integer(v),
                        (Func::Round, Numeric::Decimal(d)) => Numeric::Decimal(d.round()),
                        (Func::Round, Numeric::Double(v)) => Numeric::Double(v.round()),
                        _ => unreachable!(),
                    };
                    Some(Value::Numeric(out))
                }
                Func::StrLen => {
                    let text = first.as_str_text()?;
                    Some(Value::Numeric(
                        Numeric::Integer(text.chars().count() as i64),
                    ))
                }
                Func::UCase => Some(Value::Str {
                    text: first.as_str_text()?.to_uppercase(),
                    lang: None,
                }),
                Func::LCase => Some(Value::Str {
                    text: first.as_str_text()?.to_lowercase(),
                    lang: None,
                }),
                Func::Contains | Func::StrStarts | Func::StrEnds | Func::Regex => {
                    let second = eval_expr(&args[1], scope)?;
                    let haystack = first.as_str_text()?;
                    let needle = second.as_str_text()?;
                    let result = match func {
                        Func::Contains => haystack.contains(needle),
                        Func::StrStarts => haystack.starts_with(needle),
                        Func::StrEnds => haystack.ends_with(needle),
                        Func::Regex => regex_lite_match(haystack, needle),
                        _ => unreachable!(),
                    };
                    Some(Value::Boolean(result))
                }
                Func::Year | Func::Month | Func::Day => {
                    let (y, m, d) = match &first {
                        Value::Other { text, datatype } if datatype == xsd::DATE_TIME => {
                            let lit = sofos_rdf::Literal::typed(
                                text.clone(),
                                sofos_rdf::Iri::new_unchecked(xsd::DATE_TIME),
                            );
                            lit.date_parts()?
                        }
                        // gYear decodes as a numeric; accept it for YEAR().
                        Value::Numeric(Numeric::Integer(v)) if func == Func::Year => {
                            (i32::try_from(*v).ok()?, 0, 0)
                        }
                        _ => return None,
                    };
                    let out = match func {
                        Func::Year => y as i64,
                        Func::Month => m as i64,
                        Func::Day => d as i64,
                        _ => unreachable!(),
                    };
                    Some(Value::Numeric(Numeric::Integer(out)))
                }
                Func::Bound | Func::Coalesce | Func::If => unreachable!("handled above"),
            }
        }
    }
}

/// A tiny regex subset sufficient for SOFOS workloads: `^` and `$` anchors,
/// `.` wildcard, `X*` repetition (including `.*`), everything else literal.
/// Unanchored patterns match anywhere in the text (SPARQL REGEX semantics).
pub fn regex_lite_match(text: &str, pattern: &str) -> bool {
    let (pattern, anchored_start) = match pattern.strip_prefix('^') {
        Some(rest) => (rest, true),
        None => (pattern, false),
    };
    let (pattern, anchored_end) = match pattern.strip_suffix('$') {
        Some(rest) => (rest, true),
        None => (pattern, false),
    };
    let pat: Vec<char> = pattern.chars().collect();
    let chars: Vec<char> = text.chars().collect();

    let starts: Vec<usize> = if anchored_start {
        vec![0]
    } else {
        (0..=chars.len()).collect()
    };
    for start in starts {
        if let Some(end) = match_here(&chars[start..], &pat) {
            if !anchored_end || start + end == chars.len() {
                return true;
            }
            // With an end anchor, try greedy alternatives via backtracking
            // inside match_all.
            if anchored_end && match_exact(&chars[start..], &pat) {
                return true;
            }
        } else if anchored_end && match_exact(&chars[start..], &pat) {
            return true;
        }
    }
    false
}

/// Shortest-match helper: returns chars consumed when `pat` matches a prefix.
fn match_here(text: &[char], pat: &[char]) -> Option<usize> {
    if pat.is_empty() {
        return Some(0);
    }
    // X* — try zero or more.
    if pat.len() >= 2 && pat[1] == '*' {
        let mut consumed = 0;
        loop {
            if let Some(rest) = match_here(&text[consumed..], &pat[2..]) {
                return Some(consumed + rest);
            }
            if consumed < text.len() && char_match(text[consumed], pat[0]) {
                consumed += 1;
            } else {
                return None;
            }
        }
    }
    if !text.is_empty() && char_match(text[0], pat[0]) {
        return match_here(&text[1..], &pat[1..]).map(|n| n + 1);
    }
    None
}

/// Does `pat` match *all* of `text` (for `$`-anchored patterns)?
fn match_exact(text: &[char], pat: &[char]) -> bool {
    if pat.is_empty() {
        return text.is_empty();
    }
    if pat.len() >= 2 && pat[1] == '*' {
        // Zero occurrences, or consume one and retry.
        if match_exact(text, &pat[2..]) {
            return true;
        }
        return !text.is_empty() && char_match(text[0], pat[0]) && match_exact(&text[1..], pat);
    }
    !text.is_empty() && char_match(text[0], pat[0]) && match_exact(&text[1..], &pat[1..])
}

fn char_match(c: char, p: char) -> bool {
    p == '.' || p == c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;
    use sofos_rdf::{Dictionary, Term};

    fn scope_with<'a>(
        dict: &'a Dictionary,
        var_index: &'a FxHashMap<String, usize>,
        bindings: &'a Bindings,
    ) -> EvalScope<'a> {
        EvalScope {
            dict,
            var_index,
            bindings,
            aggs: None,
        }
    }

    fn eval_const(expr: &Expr) -> Option<Value> {
        let dict = Dictionary::new();
        let var_index = FxHashMap::default();
        let bindings = Vec::new();
        eval_expr(expr, &scope_with(&dict, &var_index, &bindings))
    }

    fn boolean(expr: &Expr) -> Option<bool> {
        eval_const(expr).and_then(|v| v.ebv())
    }

    #[test]
    fn arithmetic_and_comparison() {
        // 1 + 2 * 3 = 7
        let e = Expr::Compare(
            CompareOp::Eq,
            Box::new(Expr::Arith(
                ArithOp::Add,
                Box::new(Expr::int(1)),
                Box::new(Expr::Arith(
                    ArithOp::Mul,
                    Box::new(Expr::int(2)),
                    Box::new(Expr::int(3)),
                )),
            )),
            Box::new(Expr::int(7)),
        );
        assert_eq!(boolean(&e), Some(true));
    }

    #[test]
    fn division_by_zero_is_error() {
        let e = Expr::Arith(ArithOp::Div, Box::new(Expr::int(1)), Box::new(Expr::int(0)));
        assert_eq!(eval_const(&e), None);
    }

    #[test]
    fn three_valued_or_and() {
        // error || true = true; error && true = error.
        let error = Expr::Arith(ArithOp::Div, Box::new(Expr::int(1)), Box::new(Expr::int(0)));
        let t = Expr::Const(Term::Literal(sofos_rdf::Literal::boolean(true)));
        assert_eq!(
            boolean(&Expr::Or(Box::new(error.clone()), Box::new(t.clone()))),
            Some(true)
        );
        assert_eq!(eval_const(&Expr::And(Box::new(error), Box::new(t))), None);
    }

    #[test]
    fn unbound_var_is_error_and_bound_detects_it() {
        let dict = Dictionary::new();
        let mut var_index = FxHashMap::default();
        var_index.insert("x".to_string(), 0usize);
        let bindings: Bindings = vec![None];
        let scope = scope_with(&dict, &var_index, &bindings);
        assert_eq!(eval_expr(&Expr::var("x"), &scope), None);
        assert_eq!(
            eval_expr(&Expr::Call(Func::Bound, vec![Expr::var("x")]), &scope),
            Some(Value::Boolean(false))
        );
    }

    #[test]
    fn bound_var_decodes() {
        let mut dict = Dictionary::new();
        let id = dict.intern(&Term::literal_int(9));
        let mut var_index = FxHashMap::default();
        var_index.insert("x".to_string(), 0usize);
        let bindings: Bindings = vec![Some(id)];
        let scope = scope_with(&dict, &var_index, &bindings);
        assert_eq!(
            eval_expr(&Expr::var("x"), &scope),
            Some(Value::Numeric(Numeric::Integer(9)))
        );
    }

    #[test]
    fn string_functions() {
        let hello = Expr::Const(Term::literal_str("Hello World"));
        let check = |f: Func, args: Vec<Expr>, expect: Value| {
            assert_eq!(eval_const(&Expr::Call(f, args)).unwrap(), expect);
        };
        check(
            Func::StrLen,
            vec![hello.clone()],
            Value::Numeric(Numeric::Integer(11)),
        );
        check(
            Func::UCase,
            vec![hello.clone()],
            Value::Str {
                text: "HELLO WORLD".into(),
                lang: None,
            },
        );
        check(
            Func::Contains,
            vec![hello.clone(), Expr::Const(Term::literal_str("lo W"))],
            Value::Boolean(true),
        );
        check(
            Func::StrStarts,
            vec![hello.clone(), Expr::Const(Term::literal_str("Hell"))],
            Value::Boolean(true),
        );
        check(
            Func::StrEnds,
            vec![hello, Expr::Const(Term::literal_str("rld"))],
            Value::Boolean(true),
        );
    }

    #[test]
    fn str_of_iri_and_number() {
        assert_eq!(
            eval_const(&Expr::Call(
                Func::Str,
                vec![Expr::Const(Term::iri("http://e/x"))]
            )),
            Some(Value::Str {
                text: "http://e/x".into(),
                lang: None
            })
        );
        assert_eq!(
            eval_const(&Expr::Call(Func::Str, vec![Expr::int(5)])),
            Some(Value::Str {
                text: "5".into(),
                lang: None
            })
        );
    }

    #[test]
    fn type_predicates() {
        let iri = Expr::Const(Term::iri("x"));
        assert_eq!(
            eval_const(&Expr::Call(Func::IsIri, vec![iri.clone()])),
            Some(Value::Boolean(true))
        );
        assert_eq!(
            eval_const(&Expr::Call(Func::IsLiteral, vec![iri.clone()])),
            Some(Value::Boolean(false))
        );
        assert_eq!(
            eval_const(&Expr::Call(Func::IsNumeric, vec![Expr::int(2)])),
            Some(Value::Boolean(true))
        );
    }

    #[test]
    fn numeric_rounding_functions() {
        use sofos_rdf::Literal;
        let dec = |s: &str| {
            Expr::Const(Term::Literal(Literal::typed(
                s,
                sofos_rdf::Iri::new_unchecked(xsd::DECIMAL),
            )))
        };
        let as_num = |e: Option<Value>| e.unwrap().as_numeric().unwrap().to_f64();
        assert_eq!(
            as_num(eval_const(&Expr::Call(Func::Abs, vec![dec("-2.5")]))),
            2.5
        );
        assert_eq!(
            as_num(eval_const(&Expr::Call(Func::Ceil, vec![dec("2.1")]))),
            3.0
        );
        assert_eq!(
            as_num(eval_const(&Expr::Call(Func::Floor, vec![dec("2.9")]))),
            2.0
        );
        assert_eq!(
            as_num(eval_const(&Expr::Call(Func::Round, vec![dec("2.5")]))),
            3.0
        );
    }

    #[test]
    fn year_extraction() {
        use sofos_rdf::Literal;
        let dt = Expr::Const(Term::Literal(Literal::date_time(2019, 6, 30, 1, 2, 3)));
        assert_eq!(
            eval_const(&Expr::Call(Func::Year, vec![dt.clone()])),
            Some(Value::Numeric(Numeric::Integer(2019)))
        );
        assert_eq!(
            eval_const(&Expr::Call(Func::Month, vec![dt])),
            Some(Value::Numeric(Numeric::Integer(6)))
        );
        let gyear = Expr::Const(Term::Literal(Literal::year(2020)));
        assert_eq!(
            eval_const(&Expr::Call(Func::Year, vec![gyear])),
            Some(Value::Numeric(Numeric::Integer(2020)))
        );
    }

    #[test]
    fn coalesce_and_if() {
        let error = Expr::Arith(ArithOp::Div, Box::new(Expr::int(1)), Box::new(Expr::int(0)));
        assert_eq!(
            eval_const(&Expr::Call(
                Func::Coalesce,
                vec![error.clone(), Expr::int(7)]
            )),
            Some(Value::Numeric(Numeric::Integer(7)))
        );
        let cond = Expr::Compare(
            CompareOp::Lt,
            Box::new(Expr::int(1)),
            Box::new(Expr::int(2)),
        );
        assert_eq!(
            eval_const(&Expr::Call(
                Func::If,
                vec![cond, Expr::int(10), Expr::int(20)]
            )),
            Some(Value::Numeric(Numeric::Integer(10)))
        );
    }

    #[test]
    fn in_membership() {
        let e = Expr::In(Box::new(Expr::int(2)), vec![Expr::int(1), Expr::int(2)]);
        assert_eq!(boolean(&e), Some(true));
        let e = Expr::In(Box::new(Expr::int(5)), vec![Expr::int(1), Expr::int(2)]);
        assert_eq!(boolean(&e), Some(false));
    }

    #[test]
    fn regex_lite() {
        assert!(regex_lite_match("hello world", "lo w"));
        assert!(regex_lite_match("hello", "^hel"));
        assert!(!regex_lite_match("hello", "^ell"));
        assert!(regex_lite_match("hello", "llo$"));
        assert!(!regex_lite_match("hello", "^hell$"));
        assert!(regex_lite_match("hello", "^h.llo$"));
        assert!(regex_lite_match("heeeello", "^he*llo$"));
        assert!(regex_lite_match("hllo", "^he*llo$"));
        assert!(regex_lite_match("abcdef", "a.*f"));
        assert!(regex_lite_match("abcdef", "^a.*f$"));
        assert!(!regex_lite_match("abcdefg", "^a.*f$"));
        assert!(regex_lite_match("anything", ".*"));
        assert!(regex_lite_match("", "^$"));
        assert!(!regex_lite_match("", "a"));
    }

    #[test]
    fn aggregates_without_context_are_errors() {
        let agg = Expr::Aggregate(Aggregate::Count {
            distinct: false,
            expr: None,
        });
        assert_eq!(eval_const(&agg), None);
    }

    #[test]
    fn aggregate_resolution_through_context() {
        let dict = Dictionary::new();
        let var_index = FxHashMap::default();
        let bindings = Vec::new();
        let aggs = [Aggregate::Count {
            distinct: false,
            expr: None,
        }];
        let values = [Some(Value::Numeric(Numeric::Integer(3)))];
        let ctx = AggContext {
            aggregates: &aggs,
            values: &values,
        };
        let scope = EvalScope {
            dict: &dict,
            var_index: &var_index,
            bindings: &bindings,
            aggs: Some(&ctx),
        };
        let expr = Expr::Compare(
            CompareOp::Gt,
            Box::new(Expr::Aggregate(aggs[0].clone())),
            Box::new(Expr::int(2)),
        );
        assert_eq!(eval_expr(&expr, &scope).unwrap(), Value::Boolean(true));
    }
}
