//! # sofos-sparql — a SPARQL subset engine for SOFOS
//!
//! Implements exactly the query language the paper's workloads need (§3):
//! analytical queries `SELECT X̄ agg(u) WHERE P GROUP BY X̄` with
//! `{SUM, AVG, COUNT, MAX, MIN}` aggregates, plus the surrounding machinery
//! — BGP joins, `FILTER` expressions with a function library, `OPTIONAL`,
//! `GRAPH` (how rewritten queries address materialized views), `DISTINCT`,
//! `HAVING`, `ORDER BY`, `LIMIT/OFFSET`.
//!
//! Pipeline: [`token`] → [`parse`] → [`ast`] → [`eval`] (with [`expr`]
//! evaluation over [`value`]s) → [`results`].
//!
//! ```
//! use sofos_store::Dataset;
//! use sofos_sparql::Evaluator;
//! use sofos_rdf::Term;
//!
//! let mut ds = Dataset::new();
//! ds.insert(None, &Term::iri("http://e/france"),
//!           &Term::iri("http://e/population"), &Term::literal_int(67));
//! let results = Evaluator::new(&ds)
//!     .evaluate_str("SELECT (SUM(?p) AS ?total) WHERE { ?c <http://e/population> ?p }")
//!     .unwrap();
//! assert_eq!(results.len(), 1);
//! ```

pub mod ast;
pub mod error;
pub mod eval;
pub mod expr;
pub mod parse;
pub mod results;
pub mod to_text;
pub mod token;
pub mod value;

pub use ast::{
    Aggregate, ArithOp, CompareOp, Expr, Func, GraphSpec, GroupPattern, OrderCond, PatternElement,
    PatternTerm, Query, SelectItem, TriplePattern,
};
pub use error::{Result, SparqlError};
pub use eval::Evaluator;
pub use parse::parse_query;
pub use results::QueryResults;
pub use to_text::query_to_sparql;
pub use value::Value;
