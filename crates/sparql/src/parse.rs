//! Recursive-descent parser for the SPARQL subset.
//!
//! Grammar (informally):
//!
//! ```text
//! Query      := (PREFIX pname: <iri>)* Select
//! Select     := SELECT DISTINCT? ( '*' | Item+ ) WHERE? Group Modifiers
//! Item       := Var | '(' Expr AS Var ')'
//! Group      := '{' ( Triples | FILTER '(' Expr ')' | OPTIONAL Group
//!                   | GRAPH Iri Group )* '}'
//! Triples    := Subject Props ( '.' (Subject Props)? )*
//! Props      := Verb Objects ( ';' Verb Objects )*
//! Objects    := Object ( ',' Object )*
//! Modifiers  := (GROUP BY Var+)? (HAVING Expr)? (ORDER BY Cond+)?
//!               (LIMIT int)? (OFFSET int)?
//! ```
//!
//! Expressions use conventional precedence: `||` < `&&` < comparisons/IN
//! < `+ -` < `* /` < unary < primary.

use crate::ast::*;
use crate::error::{Result, SparqlError};
use crate::token::{tokenize, Token, TokenKind};
use sofos_rdf::{FxHashMap, Iri, Literal, Term};

/// Parse a SELECT query from text.
pub fn parse_query(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        prefixes: FxHashMap::default(),
    };
    let query = parser.parse_query()?;
    parser.expect_eof()?;
    Ok(query)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: FxHashMap<String, String>,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn position(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].position
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        kind
    }

    fn error(&self, message: impl Into<String>) -> SparqlError {
        SparqlError::Parse {
            position: self.position(),
            message: message.into(),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error(format!("expected {p:?}, found {:?}", self.peek())))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Keyword(k) if k == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.error(format!("trailing tokens after query: {:?}", self.peek())))
        }
    }

    fn expand_prefixed(&self, prefix: &str, local: &str) -> Result<Iri> {
        match self.prefixes.get(prefix) {
            Some(ns) => Ok(Iri::new_unchecked(format!("{ns}{local}"))),
            None => Err(self.error(format!("undeclared prefix {prefix:?}"))),
        }
    }

    // ---- query structure ------------------------------------------------

    fn parse_query(&mut self) -> Result<Query> {
        while self.eat_keyword("PREFIX") {
            let (prefix, local) = match self.bump() {
                TokenKind::PrefixedName(p, l) => (p, l),
                other => return Err(self.error(format!("expected prefix name, found {other:?}"))),
            };
            if !local.is_empty() {
                return Err(self.error("prefix declaration must end with ':'"));
            }
            let iri = match self.bump() {
                TokenKind::Iri(iri) => iri,
                other => return Err(self.error(format!("expected IRI, found {other:?}"))),
            };
            self.prefixes.insert(prefix, iri);
        }

        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");

        let mut select = Vec::new();
        let mut wildcard = false;
        if self.eat_punct("*") {
            wildcard = true;
        } else {
            loop {
                match self.peek() {
                    TokenKind::Var(_) => {
                        if let TokenKind::Var(name) = self.bump() {
                            select.push(SelectItem::Var(name));
                        }
                    }
                    TokenKind::Punct("(") => {
                        self.bump();
                        let expr = self.parse_expr()?;
                        self.expect_keyword("AS")?;
                        let alias = match self.bump() {
                            TokenKind::Var(v) => v,
                            other => {
                                return Err(self
                                    .error(format!("expected variable after AS, found {other:?}")))
                            }
                        };
                        self.expect_punct(")")?;
                        select.push(SelectItem::Expr { expr, alias });
                    }
                    _ => break,
                }
            }
            if select.is_empty() {
                return Err(self.error("SELECT clause needs at least one item or '*'"));
            }
        }

        // WHERE keyword is optional before '{'.
        self.eat_keyword("WHERE");
        let pattern = self.parse_group(GraphSpec::Default)?;

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            while let TokenKind::Var(_) = self.peek() {
                if let TokenKind::Var(name) = self.bump() {
                    group_by.push(name);
                }
            }
            if group_by.is_empty() {
                return Err(self.error("GROUP BY needs at least one variable"));
            }
        }

        let having = if self.eat_keyword("HAVING") {
            self.expect_punct("(")?;
            let e = self.parse_expr()?;
            self.expect_punct(")")?;
            Some(e)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                match self.peek() {
                    TokenKind::Keyword(k) if k == "ASC" || k == "DESC" => {
                        let descending = k == "DESC";
                        self.bump();
                        self.expect_punct("(")?;
                        let expr = self.parse_expr()?;
                        self.expect_punct(")")?;
                        order_by.push(OrderCond { expr, descending });
                    }
                    TokenKind::Var(_) => {
                        if let TokenKind::Var(name) = self.bump() {
                            order_by.push(OrderCond {
                                expr: Expr::Var(name),
                                descending: false,
                            });
                        }
                    }
                    _ => break,
                }
            }
            if order_by.is_empty() {
                return Err(self.error("ORDER BY needs at least one condition"));
            }
        }

        let mut limit = None;
        let mut offset = None;
        loop {
            if self.eat_keyword("LIMIT") {
                limit = Some(self.parse_usize()?);
            } else if self.eat_keyword("OFFSET") {
                offset = Some(self.parse_usize()?);
            } else {
                break;
            }
        }

        Ok(Query {
            select,
            wildcard,
            distinct,
            pattern,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn parse_usize(&mut self) -> Result<usize> {
        match self.bump() {
            TokenKind::Integer(text) => text
                .parse::<usize>()
                .map_err(|_| self.error(format!("integer out of range: {text}"))),
            other => Err(self.error(format!("expected integer, found {other:?}"))),
        }
    }

    // ---- group graph patterns -------------------------------------------

    fn parse_group(&mut self, graph: GraphSpec) -> Result<GroupPattern> {
        self.expect_punct("{")?;
        let mut elements = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Punct("}") => {
                    self.bump();
                    break;
                }
                TokenKind::Keyword(k) if k == "FILTER" => {
                    self.bump();
                    self.expect_punct("(")?;
                    let expr = self.parse_expr()?;
                    self.expect_punct(")")?;
                    elements.push(PatternElement::Filter(expr));
                    self.eat_punct(".");
                }
                TokenKind::Keyword(k) if k == "OPTIONAL" => {
                    self.bump();
                    let inner = self.parse_group(graph.clone())?;
                    elements.push(PatternElement::Optional(inner));
                    self.eat_punct(".");
                }
                TokenKind::Keyword(k) if k == "BIND" => {
                    self.bump();
                    self.expect_punct("(")?;
                    let expr = self.parse_expr()?;
                    self.expect_keyword("AS")?;
                    let var = match self.bump() {
                        TokenKind::Var(v) => v,
                        other => {
                            return Err(
                                self.error(format!("expected variable after AS, found {other:?}"))
                            )
                        }
                    };
                    self.expect_punct(")")?;
                    elements.push(PatternElement::Bind { expr, var });
                    self.eat_punct(".");
                }
                TokenKind::Keyword(k) if k == "VALUES" => {
                    self.bump();
                    elements.push(self.parse_values()?);
                    self.eat_punct(".");
                }
                TokenKind::Punct("{") => {
                    // Nested group; possibly the head of a UNION chain.
                    let first = self.parse_group(graph.clone())?;
                    if matches!(self.peek(), TokenKind::Keyword(k) if k == "UNION") {
                        let mut union = first;
                        while self.eat_keyword("UNION") {
                            let next = self.parse_group(graph.clone())?;
                            union = GroupPattern {
                                elements: vec![PatternElement::Union(union, next)],
                            };
                        }
                        elements.extend(union.elements);
                    } else {
                        // A plain nested group: splice its elements.
                        elements.extend(first.elements);
                    }
                    self.eat_punct(".");
                }
                TokenKind::Keyword(k) if k == "GRAPH" => {
                    self.bump();
                    let iri = match self.bump() {
                        TokenKind::Iri(iri) => Iri::new_unchecked(iri),
                        TokenKind::PrefixedName(p, l) => self.expand_prefixed(&p, &l)?,
                        other => {
                            return Err(self.error(format!(
                                "GRAPH expects an IRI (variables unsupported), found {other:?}"
                            )))
                        }
                    };
                    let inner = self.parse_group(GraphSpec::Named(iri))?;
                    elements.extend(inner.elements);
                    self.eat_punct(".");
                }
                TokenKind::Eof => return Err(self.error("unterminated group pattern")),
                _ => {
                    let patterns = self.parse_triples_block()?;
                    elements.push(PatternElement::Triples {
                        graph: graph.clone(),
                        patterns,
                    });
                }
            }
        }
        Ok(GroupPattern { elements })
    }

    /// One or more triples-same-subject, separated by '.'.
    fn parse_triples_block(&mut self) -> Result<Vec<TriplePattern>> {
        let mut patterns = Vec::new();
        loop {
            let subject = self.parse_pattern_term()?;
            // Property list: verb objects ( ';' verb objects )*
            loop {
                let predicate = self.parse_verb()?;
                loop {
                    let object = self.parse_pattern_term()?;
                    patterns.push(TriplePattern::new(
                        subject.clone(),
                        predicate.clone(),
                        object,
                    ));
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                if !self.eat_punct(";") {
                    break;
                }
                // Allow a dangling ';' before '.' or '}'.
                if matches!(self.peek(), TokenKind::Punct(".") | TokenKind::Punct("}")) {
                    break;
                }
            }
            if !self.eat_punct(".") {
                break;
            }
            // '.' may terminate the block.
            match self.peek() {
                TokenKind::Punct("}") | TokenKind::Keyword(_) | TokenKind::Eof => break,
                _ => continue,
            }
        }
        Ok(patterns)
    }

    /// `VALUES ?v { t ... }` or `VALUES (?a ?b) { (t u) ... }`; `UNDEF`
    /// leaves a cell unbound.
    fn parse_values(&mut self) -> Result<PatternElement> {
        let mut vars = Vec::new();
        let parenthesized = self.eat_punct("(");
        while let TokenKind::Var(_) = self.peek() {
            if let TokenKind::Var(v) = self.bump() {
                vars.push(v);
            }
            if !parenthesized {
                break;
            }
        }
        if parenthesized {
            self.expect_punct(")")?;
        }
        if vars.is_empty() {
            return Err(self.error("VALUES needs at least one variable"));
        }
        self.expect_punct("{")?;
        let mut rows = Vec::new();
        loop {
            if self.eat_punct("}") {
                break;
            }
            let mut row = Vec::with_capacity(vars.len());
            if vars.len() == 1 && !matches!(self.peek(), TokenKind::Punct("(")) {
                row.push(self.parse_values_cell()?);
            } else {
                self.expect_punct("(")?;
                for _ in 0..vars.len() {
                    row.push(self.parse_values_cell()?);
                }
                self.expect_punct(")")?;
            }
            rows.push(row);
        }
        Ok(PatternElement::Values { vars, rows })
    }

    fn parse_values_cell(&mut self) -> Result<Option<Term>> {
        if matches!(self.peek(), TokenKind::Keyword(k) if k == "UNDEF") {
            self.bump();
            return Ok(None);
        }
        match self.parse_pattern_term()? {
            PatternTerm::Const(t) => Ok(Some(t)),
            PatternTerm::Var(v) => {
                Err(self.error(format!("variable ?{v} not allowed in VALUES data")))
            }
        }
    }

    fn parse_verb(&mut self) -> Result<PatternTerm> {
        if self.eat_punct("a") {
            return Ok(PatternTerm::iri(sofos_rdf::vocab::rdf::TYPE));
        }
        self.parse_pattern_term()
    }

    fn parse_pattern_term(&mut self) -> Result<PatternTerm> {
        let term = match self.bump() {
            TokenKind::Var(name) => return Ok(PatternTerm::Var(name)),
            TokenKind::Iri(iri) => Term::iri(iri),
            TokenKind::PrefixedName(p, l) => Term::Iri(self.expand_prefixed(&p, &l)?),
            TokenKind::BlankNode(label) => Term::blank(label),
            TokenKind::String(value) => self.finish_literal(value)?,
            TokenKind::Integer(text) => Term::Literal(Literal::typed(
                text,
                Iri::new_unchecked(sofos_rdf::vocab::xsd::INTEGER),
            )),
            TokenKind::Decimal(text) => Term::Literal(Literal::typed(
                text,
                Iri::new_unchecked(sofos_rdf::vocab::xsd::DECIMAL),
            )),
            TokenKind::Double(text) => Term::Literal(Literal::typed(
                text,
                Iri::new_unchecked(sofos_rdf::vocab::xsd::DOUBLE),
            )),
            TokenKind::Keyword(k) if k == "TRUE" => Term::Literal(Literal::boolean(true)),
            TokenKind::Keyword(k) if k == "FALSE" => Term::Literal(Literal::boolean(false)),
            other => return Err(self.error(format!("expected term, found {other:?}"))),
        };
        Ok(PatternTerm::Const(term))
    }

    /// A string body has been consumed; attach `@lang` / `^^<dt>` if present.
    fn finish_literal(&mut self, value: String) -> Result<Term> {
        match self.peek() {
            TokenKind::LangTag(_) => {
                if let TokenKind::LangTag(tag) = self.bump() {
                    Ok(Term::Literal(Literal::lang_string(value, tag)))
                } else {
                    unreachable!("peeked LangTag")
                }
            }
            TokenKind::Punct("^^") => {
                self.bump();
                let datatype = match self.bump() {
                    TokenKind::Iri(iri) => Iri::new_unchecked(iri),
                    TokenKind::PrefixedName(p, l) => self.expand_prefixed(&p, &l)?,
                    other => {
                        return Err(self.error(format!("expected datatype IRI, found {other:?}")))
                    }
                };
                Ok(Term::Literal(Literal::typed(value, datatype)))
            }
            _ => Ok(Term::Literal(Literal::string(value))),
        }
    }

    // ---- expressions ------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_punct("||") {
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_comparison()?;
        while self.eat_punct("&&") {
            let right = self.parse_comparison()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        let op = match self.peek() {
            TokenKind::Punct("=") => Some(CompareOp::Eq),
            TokenKind::Punct("!=") => Some(CompareOp::Ne),
            TokenKind::Punct("<") => Some(CompareOp::Lt),
            TokenKind::Punct("<=") => Some(CompareOp::Le),
            TokenKind::Punct(">") => Some(CompareOp::Gt),
            TokenKind::Punct(">=") => Some(CompareOp::Ge),
            TokenKind::Keyword(k) if k == "IN" => {
                self.bump();
                self.expect_punct("(")?;
                let mut items = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        items.push(self.parse_expr()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                }
                return Ok(Expr::In(Box::new(left), items));
            }
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let right = self.parse_additive()?;
                Ok(Expr::Compare(op, Box::new(left), Box::new(right)))
            }
            None => Ok(left),
        }
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            if self.eat_punct("+") {
                let right = self.parse_multiplicative()?;
                left = Expr::Arith(ArithOp::Add, Box::new(left), Box::new(right));
            } else if self.eat_punct("-") {
                let right = self.parse_multiplicative()?;
                left = Expr::Arith(ArithOp::Sub, Box::new(left), Box::new(right));
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            if self.eat_punct("*") {
                let right = self.parse_unary()?;
                left = Expr::Arith(ArithOp::Mul, Box::new(left), Box::new(right));
            } else if self.eat_punct("/") {
                let right = self.parse_unary()?;
                left = Expr::Arith(ArithOp::Div, Box::new(left), Box::new(right));
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_punct("!") {
            return Ok(Expr::Not(Box::new(self.parse_unary()?)));
        }
        if self.eat_punct("-") {
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        if self.eat_punct("+") {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Punct("(") => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            TokenKind::Var(_) => {
                if let TokenKind::Var(name) = self.bump() {
                    Ok(Expr::Var(name))
                } else {
                    unreachable!("peeked Var")
                }
            }
            TokenKind::Iri(_)
            | TokenKind::PrefixedName(..)
            | TokenKind::String(_)
            | TokenKind::Integer(_)
            | TokenKind::Decimal(_)
            | TokenKind::Double(_)
            | TokenKind::BlankNode(_) => match self.parse_pattern_term()? {
                PatternTerm::Const(t) => Ok(Expr::Const(t)),
                PatternTerm::Var(_) => unreachable!("vars handled above"),
            },
            TokenKind::Keyword(kw) => self.parse_keyword_expr(&kw),
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }

    fn parse_keyword_expr(&mut self, kw: &str) -> Result<Expr> {
        // Aggregates.
        if let "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" = kw {
            self.bump();
            self.expect_punct("(")?;
            let distinct = self.eat_keyword("DISTINCT");
            if kw == "COUNT" && self.eat_punct("*") {
                self.expect_punct(")")?;
                return Ok(Expr::Aggregate(Aggregate::Count {
                    distinct,
                    expr: None,
                }));
            }
            let inner = Box::new(self.parse_expr()?);
            self.expect_punct(")")?;
            let agg = match kw {
                "COUNT" => Aggregate::Count {
                    distinct,
                    expr: Some(inner),
                },
                "SUM" => Aggregate::Sum {
                    distinct,
                    expr: inner,
                },
                "AVG" => Aggregate::Avg {
                    distinct,
                    expr: inner,
                },
                "MIN" => Aggregate::Min { expr: inner },
                "MAX" => Aggregate::Max { expr: inner },
                _ => unreachable!(),
            };
            return Ok(Expr::Aggregate(agg));
        }

        if kw == "TRUE" {
            self.bump();
            return Ok(Expr::Const(Term::Literal(Literal::boolean(true))));
        }
        if kw == "FALSE" {
            self.bump();
            return Ok(Expr::Const(Term::Literal(Literal::boolean(false))));
        }

        let func = match kw {
            "BOUND" => Func::Bound,
            "STR" => Func::Str,
            "LANG" => Func::Lang,
            "DATATYPE" => Func::Datatype,
            "ISIRI" | "ISURI" => Func::IsIri,
            "ISBLANK" => Func::IsBlank,
            "ISLITERAL" => Func::IsLiteral,
            "ISNUMERIC" => Func::IsNumeric,
            "ABS" => Func::Abs,
            "CEIL" => Func::Ceil,
            "FLOOR" => Func::Floor,
            "ROUND" => Func::Round,
            "STRLEN" => Func::StrLen,
            "CONTAINS" => Func::Contains,
            "STRSTARTS" => Func::StrStarts,
            "STRENDS" => Func::StrEnds,
            "UCASE" => Func::UCase,
            "LCASE" => Func::LCase,
            "YEAR" => Func::Year,
            "MONTH" => Func::Month,
            "DAY" => Func::Day,
            "REGEX" => Func::Regex,
            "COALESCE" => Func::Coalesce,
            "IF" => Func::If,
            other => return Err(self.error(format!("unexpected keyword {other} in expression"))),
        };
        self.bump();
        self.expect_punct("(")?;
        let mut args = Vec::new();
        if !self.eat_punct(")") {
            loop {
                args.push(self.parse_expr()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        let arity_ok = match func {
            Func::Bound
            | Func::Str
            | Func::Lang
            | Func::Datatype
            | Func::IsIri
            | Func::IsBlank
            | Func::IsLiteral
            | Func::IsNumeric
            | Func::Abs
            | Func::Ceil
            | Func::Floor
            | Func::Round
            | Func::StrLen
            | Func::UCase
            | Func::LCase
            | Func::Year
            | Func::Month
            | Func::Day => args.len() == 1,
            Func::Contains | Func::StrStarts | Func::StrEnds | Func::Regex => args.len() == 2,
            Func::If => args.len() == 3,
            Func::Coalesce => !args.is_empty(),
        };
        if !arity_ok {
            return Err(self.error(format!("wrong number of arguments for {func:?}")));
        }
        Ok(Expr::Call(func, args))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_analytical_form() {
        // The paper's running example (Example 1.1): total French-speaking
        // population — SELECT X̄ agg(u) WHERE P GROUP BY X̄.
        let q = parse_query(
            "PREFIX ex: <http://e/>
             SELECT ?country (SUM(?pop) AS ?total)
             WHERE {
               ?obs ex:country ?country .
               ?obs ex:language ?lang .
               ?obs ex:population ?pop .
               FILTER (?lang = \"French\")
             }
             GROUP BY ?country",
        )
        .expect("parses");
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.group_by, ["country"]);
        assert!(!q.distinct);
        match &q.select[1] {
            SelectItem::Expr {
                expr: Expr::Aggregate(Aggregate::Sum { .. }),
                alias,
            } => {
                assert_eq!(alias, "total");
            }
            other => panic!("expected SUM aggregate, got {other:?}"),
        }
        // Pattern: 3 triples + 1 filter.
        assert_eq!(q.pattern.elements.len(), 2);
    }

    #[test]
    fn semicolon_and_comma_abbreviations() {
        let q =
            parse_query("SELECT * WHERE { ?s <http://e/p> ?a , ?b ; <http://e/q> ?c . }").unwrap();
        match &q.pattern.elements[0] {
            PatternElement::Triples { patterns, .. } => {
                assert_eq!(patterns.len(), 3);
                assert!(patterns.iter().all(|p| p.subject == PatternTerm::var("s")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn a_expands_to_rdf_type() {
        let q = parse_query("SELECT ?s WHERE { ?s a <http://e/C> }").unwrap();
        match &q.pattern.elements[0] {
            PatternElement::Triples { patterns, .. } => {
                assert_eq!(
                    patterns[0].predicate,
                    PatternTerm::iri(sofos_rdf::vocab::rdf::TYPE)
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn graph_clause_scopes_patterns() {
        let q =
            parse_query("SELECT * WHERE { GRAPH <http://g/v1> { ?s ?p ?o } ?a ?b ?c }").unwrap();
        let graphs: Vec<&GraphSpec> = q
            .pattern
            .elements
            .iter()
            .filter_map(|e| match e {
                PatternElement::Triples { graph, .. } => Some(graph),
                _ => None,
            })
            .collect();
        assert_eq!(graphs.len(), 2);
        assert_eq!(
            *graphs[0],
            GraphSpec::Named(Iri::new_unchecked("http://g/v1"))
        );
        assert_eq!(*graphs[1], GraphSpec::Default);
    }

    #[test]
    fn optional_nests() {
        let q = parse_query(
            "SELECT * WHERE { ?s ?p ?o OPTIONAL { ?s <http://e/n> ?name FILTER(?name != \"x\") } }",
        )
        .unwrap();
        assert!(q
            .pattern
            .elements
            .iter()
            .any(|e| matches!(e, PatternElement::Optional(inner) if inner.elements.len() == 2)));
    }

    #[test]
    fn modifiers_parse() {
        let q = parse_query(
            "SELECT ?x (COUNT(*) AS ?n) WHERE { ?x ?p ?o } GROUP BY ?x
             HAVING (COUNT(*) > 2) ORDER BY DESC(?n) ?x LIMIT 10 OFFSET 5",
        )
        .unwrap();
        assert!(q.having.is_some());
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].descending);
        assert!(!q.order_by[1].descending);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, Some(5));
    }

    #[test]
    fn distinct_and_wildcard() {
        let q = parse_query("SELECT DISTINCT * WHERE { ?s ?p ?o }").unwrap();
        assert!(q.distinct);
        assert!(q.wildcard);
    }

    #[test]
    fn expression_precedence() {
        let q = parse_query(
            "SELECT ?x WHERE { ?x ?p ?y FILTER(?y > 1 + 2 * 3 && !(?y = 10) || ?x = <http://e/z>) }",
        )
        .unwrap();
        let filter = q
            .pattern
            .elements
            .iter()
            .find_map(|e| match e {
                PatternElement::Filter(f) => Some(f),
                _ => None,
            })
            .expect("has filter");
        // Top level must be OR.
        assert!(matches!(filter, Expr::Or(..)));
    }

    #[test]
    fn count_star_and_distinct_aggregates() {
        let q = parse_query(
            "SELECT (COUNT(*) AS ?n) (COUNT(DISTINCT ?x) AS ?d) (AVG(?v) AS ?a) WHERE { ?x ?p ?v }",
        )
        .unwrap();
        assert_eq!(q.select.len(), 3);
        match &q.select[0] {
            SelectItem::Expr {
                expr: Expr::Aggregate(Aggregate::Count { expr: None, .. }),
                ..
            } => {}
            other => panic!("{other:?}"),
        }
        match &q.select[1] {
            SelectItem::Expr {
                expr:
                    Expr::Aggregate(Aggregate::Count {
                        distinct: true,
                        expr: Some(_),
                    }),
                ..
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn numeric_literal_kinds() {
        let q = parse_query("SELECT * WHERE { ?s ?p ?o FILTER(?o = 2.5 || ?o = 3e1 || ?o = 7) }")
            .unwrap();
        // Just check it parses; kinds are covered by tokenizer tests.
        assert!(!q.pattern.elements.is_empty());
    }

    #[test]
    fn undeclared_prefix_is_an_error() {
        let err = parse_query("SELECT ?x WHERE { ?x foaf:name ?n }").unwrap_err();
        assert!(err.to_string().contains("undeclared prefix"));
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_query("SELECT").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ?p }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ?p ?o").is_err());
        assert!(parse_query("ASK { ?s ?p ?o }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ?p ?o } LIMIT ?x").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ?p ?o } trailing").is_err());
    }

    #[test]
    fn functions_check_arity() {
        assert!(parse_query("SELECT ?x WHERE { ?x ?p ?o FILTER(CONTAINS(?o)) }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ?p ?o FILTER(BOUND(?x, ?o)) }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ?p ?o FILTER(IF(?x, 1, 2) = 1) }").is_ok());
    }

    #[test]
    fn in_expression() {
        let q = parse_query("SELECT ?x WHERE { ?x ?p ?o FILTER(?o IN (1, 2, 3)) }").unwrap();
        let filter = q
            .pattern
            .elements
            .iter()
            .find_map(|e| match e {
                PatternElement::Filter(f) => Some(f),
                _ => None,
            })
            .unwrap();
        assert!(matches!(filter, Expr::In(_, items) if items.len() == 3));
    }

    #[test]
    fn typed_and_tagged_literals_in_patterns() {
        let q = parse_query(
            "SELECT * WHERE { ?s ?p \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> . ?s ?q \"hi\"@en }",
        )
        .unwrap();
        match &q.pattern.elements[0] {
            PatternElement::Triples { patterns, .. } => assert_eq!(patterns.len(), 2),
            other => panic!("{other:?}"),
        }
    }
}
