//! Query result sets.

use sofos_rdf::Term;
use std::fmt;

/// A SELECT result: column names plus rows of optional terms.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResults {
    /// Projected column names (without `?`).
    pub vars: Vec<String>,
    /// Result rows; `None` cells are unbound.
    pub rows: Vec<Vec<Option<Term>>>,
}

impl QueryResults {
    /// An empty result with the given columns.
    pub fn empty(vars: Vec<String>) -> QueryResults {
        QueryResults {
            vars,
            rows: Vec::new(),
        }
    }

    /// Number of rows (the paper's "number of aggregated values" when the
    /// query is a view query, cost model #3).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The index of a column by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == name)
    }

    /// All values of one column (unbound cells skipped).
    pub fn column_values(&self, name: &str) -> Vec<&Term> {
        match self.column(name) {
            Some(idx) => self.rows.iter().filter_map(|r| r[idx].as_ref()).collect(),
            None => Vec::new(),
        }
    }

    /// A canonically sorted copy — rows ordered by term order — for
    /// result-set comparison in tests and the rewrite-equivalence checker.
    pub fn sorted(&self) -> QueryResults {
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = match (x, y) {
                    (None, None) => std::cmp::Ordering::Equal,
                    (None, Some(_)) => std::cmp::Ordering::Less,
                    (Some(_), None) => std::cmp::Ordering::Greater,
                    (Some(x), Some(y)) => x.cmp(y),
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        QueryResults {
            vars: self.vars.clone(),
            rows,
        }
    }

    /// Render as a compact text table (used by examples and experiments).
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.vars.iter().map(|v| v.len() + 1).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(i, cell)| {
                        let text = match cell {
                            Some(t) => t.to_string(),
                            None => "—".to_string(),
                        };
                        widths[i] = widths[i].max(text.chars().count());
                        text
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        for (i, v) in self.vars.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", format!("?{v}"), w = widths[i]));
        }
        out.push('\n');
        for row in rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for QueryResults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results() -> QueryResults {
        QueryResults {
            vars: vec!["x".into(), "n".into()],
            rows: vec![
                vec![Some(Term::iri("b")), Some(Term::literal_int(2))],
                vec![Some(Term::iri("a")), None],
            ],
        }
    }

    #[test]
    fn column_lookup() {
        let r = results();
        assert_eq!(r.column("x"), Some(0));
        assert_eq!(r.column("n"), Some(1));
        assert_eq!(r.column("missing"), None);
        assert_eq!(r.column_values("n").len(), 1, "unbound cells skipped");
    }

    #[test]
    fn sorted_orders_rows() {
        let r = results().sorted();
        assert_eq!(r.rows[0][0], Some(Term::iri("a")));
        assert_eq!(r.rows[1][0], Some(Term::iri("b")));
    }

    #[test]
    fn table_rendering_includes_headers_and_unbound() {
        let t = results().to_table();
        assert!(t.contains("?x"));
        assert!(t.contains("?n"));
        assert!(t.contains("—"));
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(results().len(), 2);
        assert!(QueryResults::empty(vec!["a".into()]).is_empty());
    }
}
