//! Rendering a [`Query`] AST back to SPARQL text.
//!
//! SOFOS builds view queries and rewritten queries programmatically; this
//! module lets experiments and examples display them, and round-trips
//! through the parser (property-tested in the integration suite).

use crate::ast::*;
use sofos_rdf::Term;
use std::fmt::Write as _;

/// Render a query as SPARQL text.
pub fn query_to_sparql(query: &Query) -> String {
    let mut out = String::from("SELECT ");
    if query.distinct {
        out.push_str("DISTINCT ");
    }
    if query.wildcard {
        out.push('*');
    } else {
        let items: Vec<String> = query.select.iter().map(select_item_to_text).collect();
        out.push_str(&items.join(" "));
    }
    out.push_str(" WHERE ");
    group_to_text(&query.pattern, &mut out);
    if !query.group_by.is_empty() {
        out.push_str(" GROUP BY");
        for v in &query.group_by {
            let _ = write!(out, " ?{v}");
        }
    }
    if let Some(h) = &query.having {
        let _ = write!(out, " HAVING ({})", expr_to_text(h));
    }
    if !query.order_by.is_empty() {
        out.push_str(" ORDER BY");
        for cond in &query.order_by {
            if cond.descending {
                let _ = write!(out, " DESC({})", expr_to_text(&cond.expr));
            } else {
                let _ = write!(out, " ASC({})", expr_to_text(&cond.expr));
            }
        }
    }
    if let Some(l) = query.limit {
        let _ = write!(out, " LIMIT {l}");
    }
    if let Some(o) = query.offset {
        let _ = write!(out, " OFFSET {o}");
    }
    out
}

fn select_item_to_text(item: &SelectItem) -> String {
    match item {
        SelectItem::Var(v) => format!("?{v}"),
        SelectItem::Expr { expr, alias } => format!("({} AS ?{alias})", expr_to_text(expr)),
    }
}

fn group_to_text(group: &GroupPattern, out: &mut String) {
    out.push_str("{ ");
    for element in &group.elements {
        match element {
            PatternElement::Triples { graph, patterns } => match graph {
                GraphSpec::Default => triples_to_text(patterns, out),
                GraphSpec::Named(iri) => {
                    let _ = write!(out, "GRAPH {iri} {{ ");
                    triples_to_text(patterns, out);
                    out.push_str("} ");
                }
            },
            PatternElement::Filter(expr) => {
                let _ = write!(out, "FILTER ({}) ", expr_to_text(expr));
            }
            PatternElement::Optional(inner) => {
                out.push_str("OPTIONAL ");
                group_to_text(inner, out);
                out.push(' ');
            }
            PatternElement::Union(left, right) => {
                group_to_text(left, out);
                out.push_str(" UNION ");
                group_to_text(right, out);
                out.push(' ');
            }
            PatternElement::Bind { expr, var } => {
                let _ = write!(out, "BIND ({} AS ?{var}) ", expr_to_text(expr));
            }
            PatternElement::Values { vars, rows } => {
                let names: Vec<String> = vars.iter().map(|v| format!("?{v}")).collect();
                let _ = write!(out, "VALUES ({}) {{ ", names.join(" "));
                for row in rows {
                    out.push('(');
                    let cells: Vec<String> = row
                        .iter()
                        .map(|c| match c {
                            Some(t) => term_to_text(t),
                            None => "UNDEF".to_string(),
                        })
                        .collect();
                    out.push_str(&cells.join(" "));
                    out.push_str(") ");
                }
                out.push_str("} ");
            }
        }
    }
    out.push('}');
}

fn triples_to_text(patterns: &[TriplePattern], out: &mut String) {
    for p in patterns {
        let _ = write!(
            out,
            "{} {} {} . ",
            pattern_term_to_text(&p.subject),
            pattern_term_to_text(&p.predicate),
            pattern_term_to_text(&p.object)
        );
    }
}

fn pattern_term_to_text(t: &PatternTerm) -> String {
    match t {
        PatternTerm::Var(v) => format!("?{v}"),
        PatternTerm::Const(term) => term_to_text(term),
    }
}

fn term_to_text(t: &Term) -> String {
    // Term's Display is already SPARQL-compatible (N-Triples syntax).
    t.to_string()
}

/// Render an expression as SPARQL text (fully parenthesized where needed).
pub fn expr_to_text(expr: &Expr) -> String {
    match expr {
        Expr::Var(v) => format!("?{v}"),
        Expr::Const(t) => term_to_text(t),
        Expr::Or(a, b) => format!("({} || {})", expr_to_text(a), expr_to_text(b)),
        Expr::And(a, b) => format!("({} && {})", expr_to_text(a), expr_to_text(b)),
        Expr::Not(e) => format!("!({})", expr_to_text(e)),
        Expr::Compare(op, a, b) => {
            format!("({} {} {})", expr_to_text(a), op, expr_to_text(b))
        }
        Expr::In(e, list) => {
            let items: Vec<String> = list.iter().map(expr_to_text).collect();
            format!("({} IN ({}))", expr_to_text(e), items.join(", "))
        }
        Expr::Arith(op, a, b) => {
            let sym = match op {
                ArithOp::Add => "+",
                ArithOp::Sub => "-",
                ArithOp::Mul => "*",
                ArithOp::Div => "/",
            };
            format!("({} {} {})", expr_to_text(a), sym, expr_to_text(b))
        }
        Expr::Neg(e) => format!("(-{})", expr_to_text(e)),
        Expr::Call(func, args) => {
            let name = match func {
                Func::Bound => "BOUND",
                Func::Str => "STR",
                Func::Lang => "LANG",
                Func::Datatype => "DATATYPE",
                Func::IsIri => "isIRI",
                Func::IsBlank => "isBLANK",
                Func::IsLiteral => "isLITERAL",
                Func::IsNumeric => "isNUMERIC",
                Func::Abs => "ABS",
                Func::Ceil => "CEIL",
                Func::Floor => "FLOOR",
                Func::Round => "ROUND",
                Func::StrLen => "STRLEN",
                Func::Contains => "CONTAINS",
                Func::StrStarts => "STRSTARTS",
                Func::StrEnds => "STRENDS",
                Func::UCase => "UCASE",
                Func::LCase => "LCASE",
                Func::Year => "YEAR",
                Func::Month => "MONTH",
                Func::Day => "DAY",
                Func::Regex => "REGEX",
                Func::Coalesce => "COALESCE",
                Func::If => "IF",
            };
            let rendered: Vec<String> = args.iter().map(expr_to_text).collect();
            format!("{name}({})", rendered.join(", "))
        }
        Expr::Aggregate(agg) => match agg {
            Aggregate::Count {
                distinct,
                expr: None,
            } => {
                format!("COUNT({}*)", if *distinct { "DISTINCT " } else { "" })
            }
            Aggregate::Count {
                distinct,
                expr: Some(e),
            } => format!(
                "COUNT({}{})",
                if *distinct { "DISTINCT " } else { "" },
                expr_to_text(e)
            ),
            Aggregate::Sum { distinct, expr } => format!(
                "SUM({}{})",
                if *distinct { "DISTINCT " } else { "" },
                expr_to_text(expr)
            ),
            Aggregate::Avg { distinct, expr } => format!(
                "AVG({}{})",
                if *distinct { "DISTINCT " } else { "" },
                expr_to_text(expr)
            ),
            Aggregate::Min { expr } => format!("MIN({})", expr_to_text(expr)),
            Aggregate::Max { expr } => format!("MAX({})", expr_to_text(expr)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;

    fn round_trip(text: &str) {
        let q1 = parse_query(text).expect("first parse");
        let rendered = query_to_sparql(&q1);
        let q2 = parse_query(&rendered)
            .unwrap_or_else(|e| panic!("rendered query must re-parse: {rendered}\n{e}"));
        assert_eq!(q1, q2, "round trip changed the AST:\n{rendered}");
    }

    #[test]
    fn round_trips_analytical_query() {
        round_trip(
            "SELECT ?c (SUM(?p) AS ?t) WHERE { ?o <http://e/c> ?c . ?o <http://e/p> ?p . \
             FILTER ((?p > 10)) } GROUP BY ?c HAVING ((SUM(?p) > 100)) ORDER BY DESC(?t) LIMIT 5",
        );
    }

    #[test]
    fn round_trips_graph_and_optional() {
        round_trip(
            "SELECT * WHERE { GRAPH <http://g/1> { ?s <http://e/p> ?v . } \
             OPTIONAL { ?s <http://e/q> ?w . } }",
        );
    }

    #[test]
    fn round_trips_functions_and_literals() {
        round_trip(
            "SELECT ?s WHERE { ?s <http://e/p> ?v . \
             FILTER ((CONTAINS(STR(?v), \"x\") && (?v != \"a\"@en))) }",
        );
    }

    #[test]
    fn round_trips_aggregates() {
        round_trip(
            "SELECT (COUNT(*) AS ?n) (AVG(?v) AS ?a) (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) \
             (COUNT(DISTINCT ?v) AS ?d) WHERE { ?s <http://e/p> ?v . }",
        );
    }

    #[test]
    fn renders_distinct_and_offset() {
        let q = parse_query("SELECT DISTINCT ?s WHERE { ?s ?p ?o } OFFSET 3").unwrap();
        let text = query_to_sparql(&q);
        assert!(text.contains("DISTINCT"));
        assert!(text.contains("OFFSET 3"));
    }
}
