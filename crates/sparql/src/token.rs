//! Tokenizer for the SPARQL subset.
//!
//! Produces a flat token stream consumed by the recursive-descent parser in
//! [`crate::parse`]. Keywords are recognized case-insensitively and
//! normalized to uppercase; prefixed names are kept split so the parser can
//! expand them against the prologue's `PREFIX` table.

use crate::error::{Result, SparqlError};

/// A lexical token with its byte position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokenKind,
    /// Byte offset of the token start in the query text.
    pub position: usize,
}

/// Token kinds of the SPARQL subset grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `<http://...>`.
    Iri(String),
    /// `prefix:local` (either part may be empty).
    PrefixedName(String, String),
    /// `?name` or `$name`.
    Var(String),
    /// `_:label`.
    BlankNode(String),
    /// String literal body (unescaped), without tag/datatype.
    String(String),
    /// `@tag` following a string.
    LangTag(String),
    /// Integer literal text.
    Integer(String),
    /// Decimal literal text (contains `.`).
    Decimal(String),
    /// Double literal text (contains exponent).
    Double(String),
    /// An uppercased keyword (`SELECT`, `WHERE`, `SUM`, ...) or bare word.
    Keyword(String),
    /// Punctuation / operators: `{ } ( ) . ; , * = != < <= > >= + - / && || ! ^^ a`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// The words the tokenizer treats as keywords (uppercased).
const KEYWORDS: &[&str] = &[
    "SELECT",
    "DISTINCT",
    "WHERE",
    "FILTER",
    "OPTIONAL",
    "GRAPH",
    "GROUP",
    "BY",
    "HAVING",
    "ORDER",
    "ASC",
    "DESC",
    "LIMIT",
    "OFFSET",
    "AS",
    "PREFIX",
    "BASE",
    "UNION",
    "SUM",
    "AVG",
    "COUNT",
    "MIN",
    "MAX",
    "TRUE",
    "FALSE",
    "BOUND",
    "STR",
    "LANG",
    "DATATYPE",
    "ISIRI",
    "ISURI",
    "ISBLANK",
    "ISLITERAL",
    "ISNUMERIC",
    "ABS",
    "CEIL",
    "FLOOR",
    "ROUND",
    "STRLEN",
    "CONTAINS",
    "STRSTARTS",
    "STRENDS",
    "UCASE",
    "LCASE",
    "YEAR",
    "MONTH",
    "DAY",
    "REGEX",
    "COALESCE",
    "IF",
    "IN",
    "VALUES",
    "BIND",
    "UNDEF",
];

/// Tokenize a query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;

    macro_rules! err {
        ($p:expr, $($arg:tt)*) => {
            return Err(SparqlError::Parse { position: $p, message: format!($($arg)*) })
        };
    }

    while pos < bytes.len() {
        let start = pos;
        let b = bytes[pos];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                pos += 1;
            }
            b'#' => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'<' => {
                // Either an IRI or the '<'/'<=' operator. IRIs never contain
                // spaces; scan ahead to a '>' before any whitespace.
                let mut end = pos + 1;
                let mut is_iri = false;
                while end < bytes.len() {
                    match bytes[end] {
                        b'>' => {
                            is_iri = true;
                            break;
                        }
                        b' ' | b'\t' | b'\r' | b'\n' | b'"' => break,
                        _ => end += 1,
                    }
                }
                if is_iri {
                    let text = std::str::from_utf8(&bytes[pos + 1..end])
                        .map_err(|_| SparqlError::Parse {
                            position: pos,
                            message: "invalid UTF-8 in IRI".into(),
                        })?
                        .to_string();
                    tokens.push(Token {
                        kind: TokenKind::Iri(text),
                        position: start,
                    });
                    pos = end + 1;
                } else if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Punct("<="),
                        position: start,
                    });
                    pos += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Punct("<"),
                        position: start,
                    });
                    pos += 1;
                }
            }
            b'?' | b'$' => {
                pos += 1;
                let name_start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                if pos == name_start {
                    err!(start, "empty variable name");
                }
                let name = input[name_start..pos].to_string();
                tokens.push(Token {
                    kind: TokenKind::Var(name),
                    position: start,
                });
            }
            b'"' | b'\'' => {
                let quote = b;
                pos += 1;
                let mut value = String::new();
                loop {
                    if pos >= bytes.len() {
                        err!(start, "unterminated string literal");
                    }
                    let c = bytes[pos];
                    if c == quote {
                        pos += 1;
                        break;
                    }
                    if c == b'\\' {
                        pos += 1;
                        match bytes.get(pos) {
                            Some(b'"') => value.push('"'),
                            Some(b'\'') => value.push('\''),
                            Some(b'\\') => value.push('\\'),
                            Some(b'n') => value.push('\n'),
                            Some(b't') => value.push('\t'),
                            Some(b'r') => value.push('\r'),
                            _ => err!(pos, "invalid string escape"),
                        }
                        pos += 1;
                    } else if c < 0x80 {
                        value.push(c as char);
                        pos += 1;
                    } else {
                        // Copy the full UTF-8 sequence.
                        let ch_start = pos;
                        let ch = input[ch_start..].chars().next().expect("valid utf8");
                        value.push(ch);
                        pos += ch.len_utf8();
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::String(value),
                    position: start,
                });
            }
            b'@' => {
                pos += 1;
                let tag_start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'-')
                {
                    pos += 1;
                }
                if pos == tag_start {
                    err!(start, "empty language tag");
                }
                tokens.push(Token {
                    kind: TokenKind::LangTag(input[tag_start..pos].to_string()),
                    position: start,
                });
            }
            b'^' => {
                if bytes.get(pos + 1) == Some(&b'^') {
                    tokens.push(Token {
                        kind: TokenKind::Punct("^^"),
                        position: start,
                    });
                    pos += 2;
                } else {
                    err!(start, "lone '^'");
                }
            }
            b'0'..=b'9' => {
                let (kind, len) = scan_number(&input[pos..]);
                tokens.push(Token {
                    kind,
                    position: start,
                });
                pos += len;
            }
            b'.' => {
                // Could start a decimal like ".5" — only when followed by a digit.
                if bytes.get(pos + 1).is_some_and(|c| c.is_ascii_digit()) {
                    let (kind, len) = scan_number(&input[pos..]);
                    tokens.push(Token {
                        kind,
                        position: start,
                    });
                    pos += len;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Punct("."),
                        position: start,
                    });
                    pos += 1;
                }
            }
            b'{' | b'}' | b'(' | b')' | b';' | b',' | b'*' | b'/' | b'+' => {
                let p: &'static str = match b {
                    b'{' => "{",
                    b'}' => "}",
                    b'(' => "(",
                    b')' => ")",
                    b';' => ";",
                    b',' => ",",
                    b'*' => "*",
                    b'/' => "/",
                    _ => "+",
                };
                tokens.push(Token {
                    kind: TokenKind::Punct(p),
                    position: start,
                });
                pos += 1;
            }
            b'-' => {
                tokens.push(Token {
                    kind: TokenKind::Punct("-"),
                    position: start,
                });
                pos += 1;
            }
            b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Punct("="),
                    position: start,
                });
                pos += 1;
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Punct("!="),
                        position: start,
                    });
                    pos += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Punct("!"),
                        position: start,
                    });
                    pos += 1;
                }
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Punct(">="),
                        position: start,
                    });
                    pos += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Punct(">"),
                        position: start,
                    });
                    pos += 1;
                }
            }
            b'&' => {
                if bytes.get(pos + 1) == Some(&b'&') {
                    tokens.push(Token {
                        kind: TokenKind::Punct("&&"),
                        position: start,
                    });
                    pos += 2;
                } else {
                    err!(start, "lone '&'");
                }
            }
            b'|' => {
                if bytes.get(pos + 1) == Some(&b'|') {
                    tokens.push(Token {
                        kind: TokenKind::Punct("||"),
                        position: start,
                    });
                    pos += 2;
                } else {
                    err!(start, "lone '|'");
                }
            }
            b'_' if bytes.get(pos + 1) == Some(&b':') => {
                pos += 2;
                let label_start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric()
                        || bytes[pos] == b'_'
                        || bytes[pos] == b'-')
                {
                    pos += 1;
                }
                if pos == label_start {
                    err!(start, "empty blank node label");
                }
                tokens.push(Token {
                    kind: TokenKind::BlankNode(input[label_start..pos].to_string()),
                    position: start,
                });
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                // Bare word: keyword, `a`, or a prefixed name.
                let word_start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric()
                        || bytes[pos] == b'_'
                        || bytes[pos] == b'-')
                {
                    pos += 1;
                }
                let word = &input[word_start..pos];
                if bytes.get(pos) == Some(&b':') {
                    // Prefixed name: prefix ':' local
                    pos += 1;
                    let local_start = pos;
                    while pos < bytes.len()
                        && (bytes[pos].is_ascii_alphanumeric()
                            || bytes[pos] == b'_'
                            || bytes[pos] == b'-'
                            || bytes[pos] == b'.')
                    {
                        pos += 1;
                    }
                    // A trailing '.' terminates the statement, not the name.
                    let mut local_end = pos;
                    while local_end > local_start && bytes[local_end - 1] == b'.' {
                        local_end -= 1;
                        pos -= 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::PrefixedName(
                            word.to_string(),
                            input[local_start..local_end].to_string(),
                        ),
                        position: start,
                    });
                } else if word == "a" {
                    tokens.push(Token {
                        kind: TokenKind::Punct("a"),
                        position: start,
                    });
                } else {
                    let upper = word.to_ascii_uppercase();
                    if KEYWORDS.contains(&upper.as_str()) {
                        tokens.push(Token {
                            kind: TokenKind::Keyword(upper),
                            position: start,
                        });
                    } else {
                        err!(start, "unexpected word {word:?}");
                    }
                }
            }
            b':' => {
                // Prefixed name with empty prefix.
                pos += 1;
                let local_start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric()
                        || bytes[pos] == b'_'
                        || bytes[pos] == b'-'
                        || bytes[pos] == b'.')
                {
                    pos += 1;
                }
                let mut local_end = pos;
                while local_end > local_start && bytes[local_end - 1] == b'.' {
                    local_end -= 1;
                    pos -= 1;
                }
                tokens.push(Token {
                    kind: TokenKind::PrefixedName(
                        String::new(),
                        input[local_start..local_end].to_string(),
                    ),
                    position: start,
                });
            }
            _ => err!(start, "unexpected character {:?}", b as char),
        }
    }

    tokens.push(Token {
        kind: TokenKind::Eof,
        position: input.len(),
    });
    Ok(tokens)
}

/// Scan a numeric token, returning its kind and consumed byte length.
fn scan_number(text: &str) -> (TokenKind, usize) {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let mut saw_dot = false;
    let mut saw_exp = false;
    while pos < bytes.len() {
        match bytes[pos] {
            b'0'..=b'9' => pos += 1,
            b'.' if !saw_dot && !saw_exp
                // '.' only counts as part of the number if a digit follows;
                // "1." at statement end must leave the dot as punctuation.
                && bytes.get(pos + 1).is_some_and(|c| c.is_ascii_digit()) =>
            {
                saw_dot = true;
                pos += 1;
            }
            b'e' | b'E' if !saw_exp => {
                // Exponent: optional sign then digits.
                let mut look = pos + 1;
                if matches!(bytes.get(look), Some(b'+') | Some(b'-')) {
                    look += 1;
                }
                if bytes.get(look).is_some_and(|c| c.is_ascii_digit()) {
                    saw_exp = true;
                    pos = look + 1;
                    while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                        pos += 1;
                    }
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    let lexical = text[..pos].to_string();
    let kind = if saw_exp {
        TokenKind::Double(lexical)
    } else if saw_dot {
        TokenKind::Decimal(lexical)
    } else {
        TokenKind::Integer(lexical)
    };
    (kind, pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .expect("tokenizes")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_select() {
        let ks = kinds("SELECT ?x WHERE { ?x <http://e/p> 5 . }");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Var("x".into()),
                TokenKind::Keyword("WHERE".into()),
                TokenKind::Punct("{"),
                TokenKind::Var("x".into()),
                TokenKind::Iri("http://e/p".into()),
                TokenKind::Integer("5".into()),
                TokenKind::Punct("."),
                TokenKind::Punct("}"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("select Select SELECT")[..3]
                .iter()
                .filter(|k| matches!(k, TokenKind::Keyword(w) if w == "SELECT"))
                .count(),
            3
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 2.5 3e4 1.5E-2 .5"),
            vec![
                TokenKind::Integer("1".into()),
                TokenKind::Decimal("2.5".into()),
                TokenKind::Double("3e4".into()),
                TokenKind::Double("1.5E-2".into()),
                TokenKind::Decimal(".5".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn statement_dot_is_not_swallowed_by_number() {
        // "5 ." vs "5." — both must yield Integer then Punct('.').
        assert_eq!(
            kinds("5."),
            vec![
                TokenKind::Integer("5".into()),
                TokenKind::Punct("."),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= != < <= > >= && || ! + - * /"),
            vec![
                TokenKind::Punct("="),
                TokenKind::Punct("!="),
                TokenKind::Punct("<"),
                TokenKind::Punct("<="),
                TokenKind::Punct(">"),
                TokenKind::Punct(">="),
                TokenKind::Punct("&&"),
                TokenKind::Punct("||"),
                TokenKind::Punct("!"),
                TokenKind::Punct("+"),
                TokenKind::Punct("-"),
                TokenKind::Punct("*"),
                TokenKind::Punct("/"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn less_than_vs_iri() {
        // '<' followed by a space is an operator; '<x>' is an IRI.
        assert_eq!(
            kinds("?a < 5"),
            vec![
                TokenKind::Var("a".into()),
                TokenKind::Punct("<"),
                TokenKind::Integer("5".into()),
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("<http://e/x>")[0],
            TokenKind::Iri("http://e/x".into())
        );
    }

    #[test]
    fn strings_with_escapes_and_tags() {
        assert_eq!(
            kinds(r#""a\"b" "x"@en "5"^^<http://t>"#),
            vec![
                TokenKind::String("a\"b".into()),
                TokenKind::String("x".into()),
                TokenKind::LangTag("en".into()),
                TokenKind::String("5".into()),
                TokenKind::Punct("^^"),
                TokenKind::Iri("http://t".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn prefixed_names() {
        assert_eq!(
            kinds("foaf:name :local rdf:type ."),
            vec![
                TokenKind::PrefixedName("foaf".into(), "name".into()),
                TokenKind::PrefixedName("".into(), "local".into()),
                TokenKind::PrefixedName("rdf".into(), "type".into()),
                TokenKind::Punct("."),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn prefixed_name_does_not_eat_statement_dot() {
        assert_eq!(
            kinds("?s a ex:Thing."),
            vec![
                TokenKind::Var("s".into()),
                TokenKind::Punct("a"),
                TokenKind::PrefixedName("ex".into(), "Thing".into()),
                TokenKind::Punct("."),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("SELECT # comment here\n ?x"),
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Var("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn blank_nodes() {
        assert_eq!(kinds("_:b1")[0], TokenKind::BlankNode("b1".into()));
    }

    #[test]
    fn the_a_keyword() {
        assert_eq!(kinds("a")[0], TokenKind::Punct("a"));
    }

    #[test]
    fn error_positions() {
        match tokenize("SELECT ~") {
            Err(SparqlError::Parse { position, .. }) => assert_eq!(position, 7),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("@").is_err());
        assert!(tokenize("?").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(
            kinds("\"café 日本\"")[0],
            TokenKind::String("café 日本".into())
        );
    }
}
