//! Runtime values for expression evaluation and ordering.
//!
//! Stored terms are decoded into [`Value`]s when they reach a `FILTER`,
//! aggregate, or `ORDER BY`; computed results are converted back to terms at
//! projection time. The numeric tower (`sofos_rdf::Numeric`) gives SPARQL's
//! integer/decimal/double promotion; everything else compares within its own
//! kind.

use sofos_rdf::vocab::xsd;
use sofos_rdf::{Literal, LiteralKind, Numeric, Term};
use std::cmp::Ordering;

/// A decoded runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An IRI (by text).
    Iri(String),
    /// A blank node (by label).
    Blank(String),
    /// An `xsd:boolean`.
    Boolean(bool),
    /// A numeric literal (integer / decimal / double).
    Numeric(Numeric),
    /// A plain or language-tagged string.
    Str {
        /// The text.
        text: String,
        /// Language tag, lowercase, if tagged.
        lang: Option<String>,
    },
    /// Any other typed literal (dateTime, custom types): compared by
    /// lexical form within the same datatype.
    Other {
        /// Lexical form.
        text: String,
        /// Datatype IRI.
        datatype: String,
    },
}

impl Value {
    /// Decode a stored term.
    pub fn from_term(term: &Term) -> Value {
        match term {
            Term::Iri(iri) => Value::Iri(iri.as_str().to_string()),
            Term::Blank(b) => Value::Blank(b.as_str().to_string()),
            Term::Literal(lit) => Value::from_literal(lit),
        }
    }

    /// Decode a literal.
    pub fn from_literal(lit: &Literal) -> Value {
        if lit.datatype_str() == xsd::BOOLEAN {
            if let Some(b) = lit.as_bool() {
                return Value::Boolean(b);
            }
        }
        if let Some(n) = lit.numeric() {
            return Value::Numeric(n);
        }
        match lit.kind() {
            LiteralKind::Plain => Value::Str {
                text: lit.lexical().to_string(),
                lang: None,
            },
            LiteralKind::Lang(tag) => Value::Str {
                text: lit.lexical().to_string(),
                lang: Some(tag.to_string()),
            },
            LiteralKind::Typed(dt) => Value::Other {
                text: lit.lexical().to_string(),
                datatype: dt.as_str().to_string(),
            },
        }
    }

    /// Encode back into a term (for projection). Always succeeds.
    pub fn to_term(&self) -> Term {
        match self {
            Value::Iri(iri) => Term::iri(iri.clone()),
            Value::Blank(b) => Term::blank(b.clone()),
            Value::Boolean(b) => Term::Literal(Literal::boolean(*b)),
            Value::Numeric(n) => Term::Literal(n.to_literal()),
            Value::Str { text, lang: None } => Term::Literal(Literal::string(text.clone())),
            Value::Str {
                text,
                lang: Some(tag),
            } => Term::Literal(Literal::lang_string(text.clone(), tag.clone())),
            Value::Other { text, datatype } => Term::Literal(Literal::typed(
                text.clone(),
                sofos_rdf::Iri::new_unchecked(datatype.clone()),
            )),
        }
    }

    /// Effective boolean value (SPARQL §17.2.2); `None` = type error.
    pub fn ebv(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            Value::Numeric(n) => {
                let f = n.to_f64();
                Some(f != 0.0 && !f.is_nan())
            }
            Value::Str { text, .. } => Some(!text.is_empty()),
            _ => None,
        }
    }

    /// The numeric view, if this value is numeric.
    pub fn as_numeric(&self) -> Option<Numeric> {
        match self {
            Value::Numeric(n) => Some(*n),
            _ => None,
        }
    }

    /// The string view for string functions: strings and IRIs via `STR()`
    /// semantics are handled by the caller; this is raw text for strings
    /// and `Other` literals.
    pub fn as_str_text(&self) -> Option<&str> {
        match self {
            Value::Str { text, .. } => Some(text),
            Value::Other { text, .. } => Some(text),
            _ => None,
        }
    }

    /// SPARQL `=` semantics: numeric comparison across numeric types,
    /// otherwise same-kind equality; cross-kind is `false`.
    pub fn sparql_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Numeric(a), Value::Numeric(b)) => {
                Numeric::compare(*a, *b) == Some(Ordering::Equal)
            }
            (Value::Str { text: a, lang: la }, Value::Str { text: b, lang: lb }) => {
                a == b && la == lb
            }
            (Value::Iri(a), Value::Iri(b)) => a == b,
            (Value::Blank(a), Value::Blank(b)) => a == b,
            (Value::Boolean(a), Value::Boolean(b)) => a == b,
            (
                Value::Other {
                    text: a,
                    datatype: da,
                },
                Value::Other {
                    text: b,
                    datatype: db,
                },
            ) => a == b && da == db,
            _ => false,
        }
    }

    /// SPARQL `<`/`>` comparison; `None` = incomparable (type error).
    pub fn sparql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Numeric(a), Value::Numeric(b)) => Numeric::compare(*a, *b),
            (Value::Str { text: a, .. }, Value::Str { text: b, .. }) => Some(a.cmp(b)),
            (Value::Boolean(a), Value::Boolean(b)) => Some(a.cmp(b)),
            (Value::Iri(a), Value::Iri(b)) => Some(a.cmp(b)),
            (
                Value::Other {
                    text: a,
                    datatype: da,
                },
                Value::Other {
                    text: b,
                    datatype: db,
                },
            ) if da == db => Some(a.cmp(b)), // ISO dateTime orders lexically
            _ => None,
        }
    }

    /// Total order used by ORDER BY, MIN/MAX over mixed types, and result
    /// sorting: unbound < blank < IRI < boolean < numeric < string < other.
    /// Deterministic for every pair, unlike [`Value::sparql_cmp`].
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        let rank = |v: &Value| -> u8 {
            match v {
                Value::Blank(_) => 0,
                Value::Iri(_) => 1,
                Value::Boolean(_) => 2,
                Value::Numeric(_) => 3,
                Value::Str { .. } => 4,
                Value::Other { .. } => 5,
            }
        };
        match rank(self).cmp(&rank(other)) {
            Ordering::Equal => match (self, other) {
                (Value::Blank(a), Value::Blank(b)) => a.cmp(b),
                (Value::Iri(a), Value::Iri(b)) => a.cmp(b),
                (Value::Boolean(a), Value::Boolean(b)) => a.cmp(b),
                (Value::Numeric(a), Value::Numeric(b)) => {
                    Numeric::compare(*a, *b).unwrap_or(Ordering::Equal)
                }
                (Value::Str { text: a, lang: la }, Value::Str { text: b, lang: lb }) => {
                    a.cmp(b).then_with(|| la.cmp(lb))
                }
                (
                    Value::Other {
                        text: a,
                        datatype: da,
                    },
                    Value::Other {
                        text: b,
                        datatype: db,
                    },
                ) => da.cmp(db).then_with(|| a.cmp(b)),
                _ => unreachable!("same rank implies same variant"),
            },
            ord => ord,
        }
    }

    /// A canonical key string for DISTINCT aggregation sets.
    pub fn distinct_key(&self) -> String {
        match self {
            Value::Iri(i) => format!("I{i}"),
            Value::Blank(b) => format!("B{b}"),
            Value::Boolean(b) => format!("b{b}"),
            // Canonicalize numerics so 1, 1.0 and 1e0 collapse.
            Value::Numeric(n) => format!("N{}", n.to_f64()),
            Value::Str { text, lang } => {
                format!("S{}@{}", text, lang.as_deref().unwrap_or(""))
            }
            Value::Other { text, datatype } => format!("T{datatype}\u{0}{text}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofos_rdf::Decimal;

    #[test]
    fn decode_term_kinds() {
        assert_eq!(Value::from_term(&Term::iri("x")), Value::Iri("x".into()));
        assert_eq!(
            Value::from_term(&Term::blank("b")),
            Value::Blank("b".into())
        );
        assert!(matches!(
            Value::from_term(&Term::literal_int(5)),
            Value::Numeric(Numeric::Integer(5))
        ));
        assert_eq!(
            Value::from_term(&Term::Literal(Literal::boolean(true))),
            Value::Boolean(true)
        );
        assert_eq!(
            Value::from_term(&Term::literal_str("hi")),
            Value::Str {
                text: "hi".into(),
                lang: None
            }
        );
        assert!(matches!(
            Value::from_term(&Term::Literal(Literal::date_time(2020, 1, 1, 0, 0, 0))),
            Value::Other { .. }
        ));
    }

    #[test]
    fn round_trip_to_term() {
        for term in [
            Term::iri("http://e/x"),
            Term::blank("b0"),
            Term::literal_int(42),
            Term::Literal(Literal::boolean(false)),
            Term::literal_str("plain"),
            Term::Literal(Literal::lang_string("salut", "fr")),
            Term::Literal(Literal::decimal(Decimal::from(3))),
        ] {
            let v = Value::from_term(&term);
            let back = v.to_term();
            // Values normalize (e.g. decimal "3" stays "3"); decoded values
            // must round-trip to semantically equal values.
            assert!(
                Value::from_term(&back).sparql_eq(&v),
                "{term} → {v:?} → {back}"
            );
        }
    }

    #[test]
    fn ebv_rules() {
        assert_eq!(Value::Boolean(true).ebv(), Some(true));
        assert_eq!(Value::Numeric(Numeric::Integer(0)).ebv(), Some(false));
        assert_eq!(Value::Numeric(Numeric::Double(f64::NAN)).ebv(), Some(false));
        assert_eq!(
            Value::Str {
                text: "".into(),
                lang: None
            }
            .ebv(),
            Some(false)
        );
        assert_eq!(
            Value::Str {
                text: "x".into(),
                lang: None
            }
            .ebv(),
            Some(true)
        );
        assert_eq!(Value::Iri("x".into()).ebv(), None, "IRI has no EBV");
    }

    #[test]
    fn numeric_equality_across_types() {
        let one_int = Value::Numeric(Numeric::Integer(1));
        let one_dbl = Value::Numeric(Numeric::Double(1.0));
        assert!(one_int.sparql_eq(&one_dbl));
        assert!(!one_int.sparql_eq(&Value::Str {
            text: "1".into(),
            lang: None
        }));
    }

    #[test]
    fn comparisons() {
        let a = Value::Numeric(Numeric::Integer(1));
        let b = Value::Numeric(Numeric::Double(1.5));
        assert_eq!(a.sparql_cmp(&b), Some(Ordering::Less));
        let s1 = Value::Str {
            text: "abc".into(),
            lang: None,
        };
        let s2 = Value::Str {
            text: "abd".into(),
            lang: None,
        };
        assert_eq!(s1.sparql_cmp(&s2), Some(Ordering::Less));
        assert_eq!(a.sparql_cmp(&s1), None, "number vs string is an error");
        let d1 = Value::Other {
            text: "2019-01-01T00:00:00".into(),
            datatype: xsd::DATE_TIME.into(),
        };
        let d2 = Value::Other {
            text: "2020-01-01T00:00:00".into(),
            datatype: xsd::DATE_TIME.into(),
        };
        assert_eq!(d1.sparql_cmp(&d2), Some(Ordering::Less));
    }

    #[test]
    fn total_order_is_total_and_ranked() {
        let values = [
            Value::Blank("b".into()),
            Value::Iri("i".into()),
            Value::Boolean(false),
            Value::Numeric(Numeric::Integer(1)),
            Value::Str {
                text: "s".into(),
                lang: None,
            },
            Value::Other {
                text: "t".into(),
                datatype: "d".into(),
            },
        ];
        for w in values.windows(2) {
            assert_eq!(
                w[0].total_cmp(&w[1]),
                Ordering::Less,
                "{:?} < {:?}",
                w[0],
                w[1]
            );
        }
        // Reflexive.
        for v in &values {
            assert_eq!(v.total_cmp(v), Ordering::Equal);
        }
    }

    #[test]
    fn distinct_keys_canonicalize_numbers() {
        let a = Value::Numeric(Numeric::Integer(1));
        let b = Value::Numeric(Numeric::Double(1.0));
        assert_eq!(a.distinct_key(), b.distinct_key());
        assert_ne!(
            Value::Str {
                text: "1".into(),
                lang: None
            }
            .distinct_key(),
            a.distinct_key()
        );
    }
}
