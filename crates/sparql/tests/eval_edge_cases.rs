//! Evaluator edge cases: error propagation in filters and aggregates,
//! OPTIONAL scoping, mixed-type ordering, and modifier interactions.

use sofos_rdf::{Literal, Term};
use sofos_sparql::{Evaluator, QueryResults};
use sofos_store::Dataset;

const NS: &str = "http://edge.example/";

fn iri(local: &str) -> Term {
    Term::iri(format!("{NS}{local}"))
}

/// A graph with deliberately messy data: numbers, strings and IRIs under
/// the same predicate, plus partially-attributed entities.
fn messy() -> Dataset {
    let mut ds = Dataset::new();
    let value = iri("value");
    let label = iri("label");
    ds.insert(None, &iri("a"), &value, &Term::literal_int(10));
    ds.insert(None, &iri("b"), &value, &Term::literal_str("not-a-number"));
    ds.insert(None, &iri("c"), &value, &iri("other-entity"));
    ds.insert(None, &iri("d"), &value, &Term::literal_int(-5));
    ds.insert(
        None,
        &iri("e"),
        &value,
        &Term::Literal(Literal::typed(
            "3.5",
            sofos_rdf::Iri::new_unchecked(sofos_rdf::vocab::xsd::DECIMAL),
        )),
    );
    // Only some entities have labels.
    ds.insert(None, &iri("a"), &label, &Term::literal_str("Alpha"));
    ds.insert(None, &iri("d"), &label, &Term::literal_str("Delta"));
    ds
}

fn run(ds: &Dataset, q: &str) -> QueryResults {
    Evaluator::new(ds)
        .evaluate_str(q)
        .unwrap_or_else(|e| panic!("{e}\n{q}"))
}

#[test]
fn type_errors_in_filters_drop_rows_silently() {
    let ds = messy();
    // ?v > 0 errors on the string and the IRI: those rows are filtered out,
    // not fatal.
    let r = run(
        &ds,
        &format!("SELECT ?s WHERE {{ ?s <{NS}value> ?v FILTER(?v > 0) }}"),
    );
    assert_eq!(
        r.len(),
        2,
        "10 and 3.5 pass; -5 fails; string/IRI error out"
    );
}

#[test]
fn negated_comparison_still_excludes_error_rows() {
    let ds = messy();
    // !(?v > 0) is an error for non-numerics too — they stay excluded, which
    // is exactly SPARQL's (sometimes surprising) three-valued behaviour.
    let r = run(
        &ds,
        &format!("SELECT ?s WHERE {{ ?s <{NS}value> ?v FILTER(!(?v > 0)) }}"),
    );
    assert_eq!(r.len(), 1, "only -5");
}

#[test]
fn sum_over_mixed_types_is_unbound_count_still_works() {
    let ds = messy();
    let r = run(
        &ds,
        &format!("SELECT (SUM(?v) AS ?s) (COUNT(?v) AS ?n) WHERE {{ ?x <{NS}value> ?v }}"),
    );
    assert_eq!(r.len(), 1);
    assert!(r.rows[0][0].is_none(), "SUM poisoned by non-numeric input");
    let n = r.rows[0][1]
        .as_ref()
        .unwrap()
        .as_literal()
        .unwrap()
        .numeric()
        .unwrap();
    assert_eq!(n.to_f64(), 5.0, "COUNT counts all bound values");
}

#[test]
fn min_max_over_mixed_types_use_total_order() {
    let ds = messy();
    let r = run(
        &ds,
        &format!("SELECT (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) WHERE {{ ?x <{NS}value> ?v }}"),
    );
    // Total order: IRI < numeric < string ⇒ MIN is the IRI, MAX the string.
    assert!(r.rows[0][0].as_ref().unwrap().is_iri());
    assert_eq!(
        r.rows[0][1]
            .as_ref()
            .unwrap()
            .as_literal()
            .unwrap()
            .lexical(),
        "not-a-number"
    );
}

#[test]
fn order_by_mixed_types_is_deterministic() {
    let ds = messy();
    let q = format!("SELECT ?v WHERE {{ ?x <{NS}value> ?v }} ORDER BY ?v");
    let a = run(&ds, &q);
    let b = run(&ds, &q);
    assert_eq!(a, b);
    // IRIs first, then numerics ascending, then strings.
    assert!(a.rows[0][0].as_ref().unwrap().is_iri());
    let second = a.rows[1][0].as_ref().unwrap().as_literal().unwrap();
    assert_eq!(second.lexical(), "-5");
}

#[test]
fn optional_filter_scopes_to_inner_group() {
    let ds = messy();
    // The FILTER inside OPTIONAL constrains only the optional part: rows
    // without labels survive with the label unbound.
    let r = run(
        &ds,
        &format!(
            "SELECT ?s ?l WHERE {{ ?s <{NS}value> ?v . \
               OPTIONAL {{ ?s <{NS}label> ?l FILTER(?l != \"Alpha\") }} }} ORDER BY ?s"
        ),
    );
    assert_eq!(r.len(), 5);
    let bound: Vec<&str> = r
        .rows
        .iter()
        .filter_map(|row| row[1].as_ref())
        .map(|t| t.as_literal().unwrap().lexical())
        .collect();
    assert_eq!(bound, ["Delta"], "Alpha is filtered inside the OPTIONAL");
}

#[test]
fn nested_optionals() {
    let mut ds = messy();
    ds.insert(None, &iri("a"), &iri("extra"), &Term::literal_int(1));
    let r = run(
        &ds,
        &format!(
            "SELECT ?s ?l ?x WHERE {{ ?s <{NS}value> ?v . \
               OPTIONAL {{ ?s <{NS}label> ?l OPTIONAL {{ ?s <{NS}extra> ?x }} }} }}"
        ),
    );
    assert_eq!(r.len(), 5);
    let a_row = r
        .rows
        .iter()
        .find(|row| {
            row[0]
                .as_ref()
                .and_then(Term::as_iri)
                .map(|i| i.as_str().ends_with("/a"))
                == Some(true)
        })
        .unwrap();
    assert!(a_row[1].is_some() && a_row[2].is_some());
}

#[test]
fn having_without_group_by() {
    let ds = messy();
    // Aggregate + HAVING over the implicit single group.
    let r = run(
        &ds,
        &format!("SELECT (COUNT(*) AS ?n) WHERE {{ ?x <{NS}value> ?v }} HAVING (COUNT(*) > 3)"),
    );
    assert_eq!(r.len(), 1);
    let none = run(
        &ds,
        &format!("SELECT (COUNT(*) AS ?n) WHERE {{ ?x <{NS}value> ?v }} HAVING (COUNT(*) > 99)"),
    );
    assert_eq!(none.len(), 0);
}

#[test]
fn distinct_interacts_with_order_and_limit() {
    let mut ds = Dataset::new();
    for i in 0..6 {
        ds.insert(
            None,
            &iri(&format!("s{i}")),
            &iri("p"),
            &Term::literal_int(i % 3),
        );
    }
    let r = run(
        &ds,
        &format!("SELECT DISTINCT ?v WHERE {{ ?s <{NS}p> ?v }} ORDER BY DESC(?v) LIMIT 2"),
    );
    assert_eq!(r.len(), 2);
    let values: Vec<String> = r
        .rows
        .iter()
        .map(|row| {
            row[0]
                .as_ref()
                .unwrap()
                .as_literal()
                .unwrap()
                .lexical()
                .to_string()
        })
        .collect();
    assert_eq!(values, ["2", "1"]);
}

#[test]
fn offset_beyond_results_is_empty() {
    let ds = messy();
    let r = run(
        &ds,
        &format!("SELECT ?s WHERE {{ ?s <{NS}value> ?v }} OFFSET 100"),
    );
    assert!(r.is_empty());
    let r = run(
        &ds,
        &format!("SELECT ?s WHERE {{ ?s <{NS}value> ?v }} LIMIT 0"),
    );
    assert!(r.is_empty());
}

#[test]
fn coalesce_rescues_optional_unbound() {
    let ds = messy();
    let r = run(
        &ds,
        &format!(
            "SELECT ?s (COALESCE(?l, \"(unnamed)\") AS ?name) WHERE {{ \
               ?s <{NS}value> ?v OPTIONAL {{ ?s <{NS}label> ?l }} }} ORDER BY ?s"
        ),
    );
    assert_eq!(r.len(), 5);
    let names: Vec<&str> = r
        .rows
        .iter()
        .map(|row| row[1].as_ref().unwrap().as_literal().unwrap().lexical())
        .collect();
    assert_eq!(
        names,
        ["Alpha", "(unnamed)", "(unnamed)", "Delta", "(unnamed)"]
    );
}

#[test]
fn aggregates_in_order_by() {
    let mut ds = Dataset::new();
    for (s, v) in [("x", 1), ("x", 2), ("y", 10), ("z", 5)] {
        ds.insert(None, &iri(s), &iri("p"), &Term::literal_int(v));
    }
    let r = run(
        &ds,
        &format!("SELECT ?s WHERE {{ ?s <{NS}p> ?v }} GROUP BY ?s ORDER BY DESC(SUM(?v))"),
    );
    let order: Vec<String> = r
        .rows
        .iter()
        .map(|row| {
            row[0]
                .as_ref()
                .unwrap()
                .as_iri()
                .unwrap()
                .as_str()
                .to_string()
        })
        .collect();
    assert!(order[0].ends_with("/y"), "y has the largest sum: {order:?}");
    assert!(order[2].ends_with("/x"), "x has the smallest sum");
}
