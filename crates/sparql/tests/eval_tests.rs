//! End-to-end evaluator tests over the paper's Figure 1 knowledge graph
//! (countries, languages, populations, years, part-of edges).

use sofos_rdf::{Literal, Term};
use sofos_sparql::{Evaluator, QueryResults};
use sofos_store::Dataset;

const NS: &str = "http://sofos.example/";

fn iri(local: &str) -> Term {
    Term::iri(format!("{NS}{local}"))
}

/// Build the Figure 1 graph: France/Germany/Italy (EU), Canada; observation
/// nodes carry (country, language, population, year).
fn figure1() -> Dataset {
    let mut ds = Dataset::new();
    let name = iri("name");
    let part_of = iri("partOf");
    let country_p = iri("country");
    let language_p = iri("language");
    let population_p = iri("population");
    let year_p = iri("year");

    let eu = iri("EU");
    ds.insert(None, &eu, &name, &Term::literal_str("EU"));

    // (country, language, population (millions), year)
    let rows = [
        ("France", "French", 67, 2019),
        ("Germany", "German", 82, 2019),
        ("Italy", "Italian", 60, 2019),
        ("Canada", "English", 20, 2019),
        ("Canada", "French", 8, 2019),
        ("Canada", "English", 21, 2020),
        ("France", "French", 68, 2020),
    ];
    for (i, (country, lang, pop, year)) in rows.iter().enumerate() {
        let c = iri(country);
        ds.insert(None, &c, &name, &Term::literal_str(*country));
        if *country != "Canada" {
            ds.insert(None, &c, &part_of, &eu);
        }
        let obs = Term::blank(format!("obs{i}"));
        ds.insert(None, &obs, &country_p, &c);
        ds.insert(None, &obs, &language_p, &Term::literal_str(*lang));
        ds.insert(None, &obs, &population_p, &Term::literal_int(*pop));
        ds.insert(None, &obs, &year_p, &Term::Literal(Literal::year(*year)));
    }
    ds
}

fn run(ds: &Dataset, query: &str) -> QueryResults {
    Evaluator::new(ds)
        .evaluate_str(query)
        .unwrap_or_else(|e| panic!("query failed: {e}\n{query}"))
}

fn ints(results: &QueryResults, col: &str) -> Vec<i64> {
    results
        .column_values(col)
        .into_iter()
        .map(|t| {
            t.as_literal()
                .and_then(|l| l.numeric())
                .map(|n| n.to_f64() as i64)
                .unwrap_or_else(|| panic!("not numeric: {t}"))
        })
        .collect()
}

fn strings(results: &QueryResults, col: &str) -> Vec<String> {
    results
        .column_values(col)
        .into_iter()
        .map(|t| {
            t.as_literal()
                .map(|l| l.lexical().to_string())
                .unwrap_or_else(|| t.to_string())
        })
        .collect()
}

#[test]
fn basic_bgp_join() {
    let ds = figure1();
    let r = run(
        &ds,
        &format!(
            "SELECT ?n WHERE {{ ?c <{NS}partOf> ?r . ?c <{NS}name> ?n . ?r <{NS}name> \"EU\" }}",
        ),
    );
    let mut names = strings(&r, "n");
    names.sort();
    assert_eq!(names, ["France", "Germany", "Italy"]);
}

#[test]
fn example_1_1_french_country_count() {
    // "in how many countries is French an official language?"
    let ds = figure1();
    let r = run(
        &ds,
        &format!(
            "SELECT (COUNT(DISTINCT ?c) AS ?n) WHERE {{ \
               ?o <{NS}country> ?c . ?o <{NS}language> \"French\" }}"
        ),
    );
    assert_eq!(ints(&r, "n"), [2]); // France and Canada
}

#[test]
fn example_1_1_french_population_sum() {
    // "total amount of French-speaking population" (2019 only).
    let ds = figure1();
    let r = run(
        &ds,
        &format!(
            "SELECT (SUM(?p) AS ?total) WHERE {{ \
               ?o <{NS}language> \"French\" . ?o <{NS}population> ?p . \
               ?o <{NS}year> ?y . FILTER(YEAR(?y) = 2019) }}"
        ),
    );
    assert_eq!(ints(&r, "total"), [75]); // 67 + 8
}

#[test]
fn group_by_aggregates_per_country() {
    let ds = figure1();
    let r = run(
        &ds,
        &format!(
            "SELECT ?n (SUM(?p) AS ?total) (COUNT(*) AS ?obs) WHERE {{ \
               ?o <{NS}country> ?c . ?c <{NS}name> ?n . ?o <{NS}population> ?p }} \
             GROUP BY ?n ORDER BY DESC(?total)"
        ),
    );
    assert_eq!(strings(&r, "n"), ["France", "Germany", "Italy", "Canada"]);
    assert_eq!(ints(&r, "total"), [135, 82, 60, 49]);
    assert_eq!(ints(&r, "obs"), [2, 1, 1, 3]);
}

#[test]
fn avg_min_max() {
    let ds = figure1();
    let r = run(
        &ds,
        &format!(
            "SELECT (AVG(?p) AS ?avg) (MIN(?p) AS ?lo) (MAX(?p) AS ?hi) WHERE {{ \
               ?o <{NS}population> ?p . ?o <{NS}language> \"English\" }}"
        ),
    );
    assert_eq!(ints(&r, "lo"), [20]);
    assert_eq!(ints(&r, "hi"), [21]);
    let avg = r.rows[0][r.column("avg").unwrap()].clone().unwrap();
    let avg = avg.as_literal().unwrap().numeric().unwrap().to_f64();
    assert!((avg - 20.5).abs() < 1e-9);
}

#[test]
fn having_filters_groups() {
    let ds = figure1();
    let r = run(
        &ds,
        &format!(
            "SELECT ?n WHERE {{ ?o <{NS}country> ?c . ?c <{NS}name> ?n . \
               ?o <{NS}population> ?p }} \
             GROUP BY ?n HAVING (SUM(?p) > 100) ORDER BY ?n"
        ),
    );
    assert_eq!(strings(&r, "n"), ["France"]);
}

#[test]
fn aggregate_over_empty_input() {
    let ds = figure1();
    let r = run(
        &ds,
        &format!(
            "SELECT (COUNT(*) AS ?n) (SUM(?p) AS ?s) WHERE {{ \
               ?o <{NS}language> \"Klingon\" . ?o <{NS}population> ?p }}"
        ),
    );
    assert_eq!(r.len(), 1, "aggregation over zero rows yields one row");
    assert_eq!(ints(&r, "n"), [0]);
    assert_eq!(ints(&r, "s"), [0]);
}

#[test]
fn empty_group_by_yields_no_groups() {
    let ds = figure1();
    let r = run(
        &ds,
        &format!(
            "SELECT ?c (COUNT(*) AS ?n) WHERE {{ \
               ?o <{NS}language> \"Klingon\" . ?o <{NS}country> ?c }} GROUP BY ?c"
        ),
    );
    assert_eq!(r.len(), 0, "GROUP BY over zero rows yields zero groups");
}

#[test]
fn optional_keeps_unmatched_rows() {
    let ds = figure1();
    // partOf is absent for Canada: OPTIONAL keeps it with unbound ?r.
    let r = run(
        &ds,
        &format!(
            "SELECT DISTINCT ?n ?r WHERE {{ \
               ?o <{NS}country> ?c . ?c <{NS}name> ?n . \
               OPTIONAL {{ ?c <{NS}partOf> ?r }} }} ORDER BY ?n"
        ),
    );
    assert_eq!(r.len(), 4);
    let canada_row = r
        .rows
        .iter()
        .find(|row| {
            row[0]
                .as_ref()
                .and_then(|t| t.as_literal().map(|l| l.lexical() == "Canada"))
                == Some(true)
        })
        .expect("Canada present");
    assert!(canada_row[1].is_none(), "Canada has no region");
}

#[test]
fn filters_with_arithmetic_and_logic() {
    let ds = figure1();
    let r = run(
        &ds,
        &format!(
            "SELECT DISTINCT ?n WHERE {{ \
               ?o <{NS}country> ?c . ?c <{NS}name> ?n . ?o <{NS}population> ?p . \
               FILTER(?p * 2 >= 120 && ?p < 80) }} ORDER BY ?n"
        ),
    );
    assert_eq!(strings(&r, "n"), ["France", "Italy"]);
}

#[test]
fn distinct_limit_offset() {
    let ds = figure1();
    let all = run(
        &ds,
        &format!("SELECT DISTINCT ?c WHERE {{ ?o <{NS}country> ?c }} ORDER BY ?c"),
    );
    assert_eq!(all.len(), 4);
    let page = run(
        &ds,
        &format!("SELECT DISTINCT ?c WHERE {{ ?o <{NS}country> ?c }} ORDER BY ?c LIMIT 2 OFFSET 1"),
    );
    assert_eq!(page.len(), 2);
    assert_eq!(page.rows[0], all.rows[1]);
    assert_eq!(page.rows[1], all.rows[2]);
}

#[test]
fn same_variable_twice_in_pattern() {
    let mut ds = Dataset::new();
    ds.insert(None, &iri("x"), &iri("p"), &iri("x"));
    ds.insert(None, &iri("x"), &iri("p"), &iri("y"));
    let r = run(&ds, &format!("SELECT ?s WHERE {{ ?s <{NS}p> ?s }}"));
    assert_eq!(r.len(), 1, "self-loop only");
}

#[test]
fn constant_absent_from_data_matches_nothing() {
    let ds = figure1();
    let r = run(&ds, "SELECT ?s WHERE { ?s <http://nowhere/p> ?o }");
    assert!(r.is_empty());
}

#[test]
fn unknown_named_graph_is_empty() {
    let ds = figure1();
    let r = run(
        &ds,
        "SELECT ?s WHERE { GRAPH <http://nowhere/g> { ?s ?p ?o } }",
    );
    assert!(r.is_empty());
}

#[test]
fn named_graph_scoping() {
    let mut ds = figure1();
    let g = ds.intern_iri("http://g/views");
    ds.insert(Some(g), &iri("v"), &iri("p"), &Term::literal_int(1));
    // Default graph does not see the named graph triple.
    let r = run(&ds, &format!("SELECT ?o WHERE {{ <{NS}v> <{NS}p> ?o }}"));
    assert!(r.is_empty());
    // GRAPH clause does.
    let r = run(
        &ds,
        &format!("SELECT ?o WHERE {{ GRAPH <http://g/views> {{ <{NS}v> <{NS}p> ?o }} }}"),
    );
    assert_eq!(r.len(), 1);
}

#[test]
fn cross_graph_join() {
    let mut ds = figure1();
    let g = ds.intern_iri("http://g/extra");
    let france = iri("France");
    ds.insert(
        Some(g),
        &france,
        &iri("capital"),
        &Term::literal_str("Paris"),
    );
    let r = run(
        &ds,
        &format!(
            "SELECT ?n ?cap WHERE {{ \
               ?c <{NS}name> ?n . \
               GRAPH <http://g/extra> {{ ?c <{NS}capital> ?cap }} }}"
        ),
    );
    assert_eq!(r.len(), 1);
    assert_eq!(strings(&r, "n"), ["France"]);
    assert_eq!(strings(&r, "cap"), ["Paris"]);
}

#[test]
fn select_expression_projection() {
    let ds = figure1();
    let r = run(
        &ds,
        &format!(
            "SELECT ?n (?p * 1000000 AS ?people) WHERE {{ \
               ?o <{NS}country> ?c . ?c <{NS}name> ?n . ?o <{NS}population> ?p . \
               ?o <{NS}year> ?y FILTER(YEAR(?y) = 2020 && ?n = \"France\") }}"
        ),
    );
    assert_eq!(ints(&r, "people"), [68_000_000]);
}

#[test]
fn wildcard_with_aggregate_is_plan_error() {
    let ds = figure1();
    let err = Evaluator::new(&ds)
        .evaluate_str("SELECT * WHERE { ?s ?p ?o } GROUP BY ?s")
        .unwrap_err();
    assert!(err.to_string().contains("planning"));
}

#[test]
fn ungrouped_projection_is_plan_error() {
    let ds = figure1();
    let err = Evaluator::new(&ds)
        .evaluate_str("SELECT ?p (COUNT(*) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?s")
        .unwrap_err();
    assert!(err.to_string().contains("GROUP BY"));
}

#[test]
fn order_by_multiple_keys() {
    let ds = figure1();
    let r = run(
        &ds,
        &format!(
            "SELECT ?n ?p WHERE {{ ?o <{NS}country> ?c . ?c <{NS}name> ?n . \
               ?o <{NS}population> ?p }} ORDER BY ?n DESC(?p)"
        ),
    );
    // Canada rows first (alphabetical), descending population within.
    assert_eq!(strings(&r, "n")[..3], ["Canada", "Canada", "Canada"]);
    assert_eq!(ints(&r, "p")[..3], [21, 20, 8]);
}

#[test]
fn count_distinct_vs_plain() {
    let ds = figure1();
    let r = run(
        &ds,
        &format!(
            "SELECT (COUNT(?l) AS ?all) (COUNT(DISTINCT ?l) AS ?distinct) \
             WHERE {{ ?o <{NS}language> ?l }}"
        ),
    );
    assert_eq!(ints(&r, "all"), [7]);
    assert_eq!(ints(&r, "distinct"), [4]); // French, German, Italian, English
}

#[test]
fn regex_and_string_filters() {
    let ds = figure1();
    let r = run(
        &ds,
        &format!(
            "SELECT DISTINCT ?l WHERE {{ ?o <{NS}language> ?l \
               FILTER(REGEX(?l, \"^Fr.*h$\") || STRSTARTS(?l, \"Ger\")) }} ORDER BY ?l"
        ),
    );
    assert_eq!(strings(&r, "l"), ["French", "German"]);
}

#[test]
fn results_are_deterministic_across_runs() {
    let ds = figure1();
    let q = format!(
        "SELECT ?n (SUM(?p) AS ?t) WHERE {{ ?o <{NS}country> ?c . \
           ?c <{NS}name> ?n . ?o <{NS}population> ?p }} GROUP BY ?n ORDER BY ?n"
    );
    let a = run(&ds, &q);
    let b = run(&ds, &q);
    assert_eq!(a, b);
}

#[test]
fn union_combines_branches() {
    let ds = figure1();
    let r = run(
        &ds,
        &format!(
            "SELECT DISTINCT ?n WHERE {{ \
               {{ ?o <{NS}language> \"German\" . ?o <{NS}country> ?c }} UNION \
               {{ ?o <{NS}language> \"Italian\" . ?o <{NS}country> ?c }} \
               ?c <{NS}name> ?n }} ORDER BY ?n"
        ),
    );
    assert_eq!(strings(&r, "n"), ["Germany", "Italy"]);
}

#[test]
fn union_of_three_branches() {
    let ds = figure1();
    let r = run(
        &ds,
        &format!(
            "SELECT DISTINCT ?l WHERE {{ \
               {{ ?o <{NS}language> \"German\" }} UNION {{ ?o <{NS}language> \"French\" }} \
               UNION {{ ?o <{NS}language> \"Italian\" }} ?o <{NS}language> ?l }} ORDER BY ?l"
        ),
    );
    assert_eq!(strings(&r, "l"), ["French", "German", "Italian"]);
}

#[test]
fn bind_computes_new_bindings() {
    let ds = figure1();
    let r = run(
        &ds,
        &format!(
            "SELECT ?n ?millions WHERE {{ \
               ?o <{NS}country> ?c . ?c <{NS}name> ?n . ?o <{NS}population> ?p . \
               ?o <{NS}year> ?y . FILTER(YEAR(?y) = 2019 && ?n = \"France\") \
               BIND(?p * 1000000 AS ?millions) }}"
        ),
    );
    assert_eq!(ints(&r, "millions"), [67_000_000]);
}

#[test]
fn bind_result_joins_with_later_filters() {
    let ds = figure1();
    // BIND then FILTER over the bound variable.
    let r = run(
        &ds,
        &format!(
            "SELECT DISTINCT ?n WHERE {{ \
               ?o <{NS}country> ?c . ?c <{NS}name> ?n . ?o <{NS}population> ?p . \
               BIND(?p / 2 AS ?half) FILTER(?half > 33) }} ORDER BY ?n"
        ),
    );
    assert_eq!(strings(&r, "n"), ["France", "Germany"]);
}

#[test]
fn bind_error_leaves_unbound() {
    let ds = figure1();
    let r = run(
        &ds,
        &format!("SELECT ?n ?bad WHERE {{ ?c <{NS}name> ?n . BIND(?n / 0 AS ?bad) }} LIMIT 1"),
    );
    assert_eq!(r.len(), 1);
    assert!(r.rows[0][1].is_none(), "division error leaves ?bad unbound");
}

#[test]
fn values_restricts_bindings() {
    let ds = figure1();
    let r = run(
        &ds,
        &format!(
            "SELECT DISTINCT ?n WHERE {{ \
               VALUES ?l {{ \"French\" \"German\" }} \
               ?o <{NS}language> ?l . ?o <{NS}country> ?c . ?c <{NS}name> ?n }} ORDER BY ?n"
        ),
    );
    assert_eq!(strings(&r, "n"), ["Canada", "France", "Germany"]);
}

#[test]
fn values_multi_column_with_undef() {
    let ds = figure1();
    let r = run(
        &ds,
        &format!(
            "SELECT DISTINCT ?n ?l WHERE {{ \
               VALUES (?n ?l) {{ (\"France\" \"French\") (\"Canada\" UNDEF) }} \
               ?c <{NS}name> ?n . ?o <{NS}country> ?c . ?o <{NS}language> ?l }} \
             ORDER BY ?n ?l"
        ),
    );
    // France+French fixed; Canada matches both its languages via UNDEF.
    assert_eq!(strings(&r, "n"), ["Canada", "Canada", "France"]);
    assert_eq!(strings(&r, "l"), ["English", "French", "French"]);
}

#[test]
fn values_constant_absent_from_data_matches_nothing() {
    let ds = figure1();
    let r = run(
        &ds,
        &format!(
            "SELECT ?n WHERE {{ VALUES ?l {{ \"Klingon\" }} \
               ?o <{NS}language> ?l . ?o <{NS}country> ?c . ?c <{NS}name> ?n }}"
        ),
    );
    assert!(r.is_empty());
}

#[test]
fn values_projection_of_novel_constant() {
    // A VALUES constant that does not occur in the data can still be
    // projected (it lives in the evaluation's working dictionary).
    let ds = figure1();
    let r = run(&ds, "SELECT ?x WHERE { VALUES ?x { \"novel-constant\" } }");
    assert_eq!(r.len(), 1);
    assert_eq!(
        r.rows[0][0]
            .as_ref()
            .unwrap()
            .as_literal()
            .unwrap()
            .lexical(),
        "novel-constant"
    );
}

#[test]
fn join_ordering_ablation_gives_identical_results() {
    let ds = figure1();
    let q = format!(
        "SELECT ?n (SUM(?p) AS ?t) WHERE {{ ?o <{NS}country> ?c . \
           ?c <{NS}name> ?n . ?o <{NS}population> ?p }} GROUP BY ?n ORDER BY ?n"
    );
    let ordered = Evaluator::new(&ds).evaluate_str(&q).unwrap();
    let syntactic = Evaluator::new(&ds)
        .without_join_ordering()
        .evaluate_str(&q)
        .unwrap();
    assert_eq!(ordered, syntactic);
}

#[test]
fn union_bind_values_render_and_reparse() {
    use sofos_sparql::{parse_query, query_to_sparql};
    for q in [
        format!("SELECT ?x WHERE {{ {{ ?x <{NS}a> ?y . }} UNION {{ ?x <{NS}b> ?y . }} }}"),
        format!("SELECT ?x WHERE {{ ?x <{NS}a> ?y . BIND ((?y + 1) AS ?z) }}"),
        format!("SELECT ?x WHERE {{ VALUES (?x) {{ (<{NS}v1>) (UNDEF) }} ?x <{NS}a> ?y . }}"),
    ] {
        let ast = parse_query(&q).unwrap_or_else(|e| panic!("{q}: {e}"));
        let text = query_to_sparql(&ast);
        let back = parse_query(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(ast, back, "{text}");
    }
}
