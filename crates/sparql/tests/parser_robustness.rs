//! Parser robustness: random and adversarial inputs must produce errors,
//! never panics; structured random queries must round-trip.

use proptest::prelude::*;
use sofos_sparql::{parse_query, query_to_sparql};

#[test]
fn adversarial_inputs_error_cleanly() {
    let cases = [
        "",
        "SELECT",
        "SELECT *",
        "SELECT * WHERE",
        "SELECT * WHERE {",
        "SELECT * WHERE { ?s ?p ?o",
        "SELECT * WHERE { ?s ?p ?o } GROUP",
        "SELECT * WHERE { ?s ?p ?o } GROUP BY",
        "SELECT * WHERE { ?s ?p ?o } ORDER BY",
        "SELECT * WHERE { ?s ?p ?o } LIMIT",
        "SELECT * WHERE { ?s ?p ?o } LIMIT -1",
        "SELECT () WHERE { ?s ?p ?o }",
        "SELECT (?x) WHERE { ?s ?p ?o }",
        "SELECT (SUM() AS ?x) WHERE { ?s ?p ?o }",
        "SELECT ?x WHERE { FILTER() }",
        "SELECT ?x WHERE { BIND() }",
        "SELECT ?x WHERE { BIND(1 AS 2) }",
        "SELECT ?x WHERE { VALUES { } }",
        "SELECT ?x WHERE { VALUES ?v { ?not_allowed } }",
        "SELECT ?x WHERE { { ?s ?p ?o } UNION }",
        "SELECT ?x WHERE { OPTIONAL }",
        "SELECT ?x WHERE { GRAPH { ?s ?p ?o } }",
        "SELECT ?x WHERE { GRAPH ?g { ?s ?p ?o } }",
        "PREFIX SELECT ?x WHERE { ?s ?p ?o }",
        "SELECT ?x WHERE { ?s ?p \"unterminated }",
        "SELECT ?x WHERE { ?s ?p ?o . } HAVING",
        "SELECT ?x WHERE { ?s ?p ?o } }",
        "}{",
        "\u{0}\u{1}\u{2}",
        "SELECT ?x WHERE { ?s ?p ?o FILTER(1 +) }",
        "SELECT ?x WHERE { ?s ?p ?o FILTER((1) }",
    ];
    for case in cases {
        assert!(
            parse_query(case).is_err(),
            "expected parse error for {case:?}"
        );
    }
}

#[test]
fn deeply_nested_expressions_parse() {
    // 64 levels of parentheses: recursion depth stays manageable.
    let mut expr = String::from("1");
    for _ in 0..64 {
        expr = format!("({expr} + 1)");
    }
    let q = format!("SELECT ?x WHERE {{ ?x ?p ?o FILTER({expr} > 0) }}");
    parse_query(&q).expect("deep expression parses");
}

proptest! {
    /// Arbitrary byte soup never panics the tokenizer/parser.
    #[test]
    fn random_strings_never_panic(input in "[ -~\\n\\t]{0,200}") {
        let _ = parse_query(&input);
    }

    /// Structured random analytical queries round-trip through text.
    #[test]
    fn random_analytical_queries_round_trip(
        dims in proptest::collection::vec("[a-z]{1,6}", 1..4),
        agg_idx in 0usize..5,
        limit in proptest::option::of(0usize..100),
        desc in any::<bool>(),
    ) {
        let aggs = ["SUM", "AVG", "COUNT", "MIN", "MAX"];
        let agg = aggs[agg_idx];
        let mut unique = dims.clone();
        unique.sort();
        unique.dedup();
        let select: Vec<String> = unique.iter().map(|d| format!("?{d}")).collect();
        let patterns: Vec<String> = unique
            .iter()
            .map(|d| format!("?o <http://e/{d}> ?{d} ."))
            .collect();
        let mut q = format!(
            "SELECT {} ({agg}(?m) AS ?value) WHERE {{ {} ?o <http://e/m> ?m }} GROUP BY {}",
            select.join(" "),
            patterns.join(" "),
            select.join(" "),
        );
        if desc {
            q.push_str(" ORDER BY DESC(?value)");
        }
        if let Some(l) = limit {
            q.push_str(&format!(" LIMIT {l}"));
        }
        let ast = parse_query(&q).expect("generated query parses");
        let text = query_to_sparql(&ast);
        let back = parse_query(&text).expect("rendered query reparses");
        prop_assert_eq!(ast, back);
    }
}
