//! A vendored roaring-style compressed bitmap over `u32` ids.
//!
//! The value space is chunked by the high 16 bits; each chunk is stored in
//! one of two container shapes, picked by cardinality:
//!
//! * **Array** — sorted `Vec<u16>` of the low 16 bits, for chunks with at
//!   most [`ARRAY_MAX`] (= 4096) members. Below the cutoff two bytes per
//!   member beats the fixed bitset.
//! * **Bits** — a 65536-bit bitset (`[u64; 1024]`, 8 KiB) with a cached
//!   cardinality, for denser chunks.
//!
//! Containers promote (array → bits) when an insert would push an array
//! past the cutoff, and demote (bits → array) when a removal brings a
//! bitset back to it, so the representation is *canonical*: equal sets
//! compare equal with derived `PartialEq`.
//!
//! Containers sit behind [`Arc`]s: cloning a bitmap is O(#containers) and
//! shares every chunk, and mutation copies only the touched container
//! (`Arc::make_mut`). That matters because [`crate::index::GraphStore`]s —
//! which carry posting lists built from these bitmaps — are cloned on
//! every epoch publish.
//!
//! Deliberately minimal and std-only (no registry deps): membership,
//! AND / OR / AND-NOT / NOT-within-universe, cardinality, min, iteration,
//! and a heap estimate. That is the full surface the posting lists and
//! the maintenance planner need.

use std::sync::Arc;

/// Array containers hold at most this many elements; the next insert
/// promotes the chunk to a bitset (roaring's classic cutoff — above 4096
/// entries the fixed 8 KiB bitset is denser than 2-byte entries).
pub const ARRAY_MAX: usize = 4096;

/// `u64` words per bitset container (65536 bits).
const WORDS: usize = 1024;

#[inline]
fn split(value: u32) -> (u16, u16) {
    ((value >> 16) as u16, (value & 0xFFFF) as u16)
}

#[inline]
fn join(hi: u16, lo: u16) -> u32 {
    ((hi as u32) << 16) | lo as u32
}

/// One 65536-value chunk. Invariant: `Array` holds 1..=[`ARRAY_MAX`]
/// sorted unique values; `Bits` holds more than [`ARRAY_MAX`] with `len`
/// caching the popcount. Empty containers never exist — the owning
/// [`Bitmap`] drops them.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Container {
    Array(Vec<u16>),
    Bits { words: Box<[u64; WORDS]>, len: u32 },
}

impl Container {
    fn len(&self) -> u32 {
        match self {
            Container::Array(v) => v.len() as u32,
            Container::Bits { len, .. } => *len,
        }
    }

    fn contains(&self, low: u16) -> bool {
        match self {
            Container::Array(v) => v.binary_search(&low).is_ok(),
            Container::Bits { words, .. } => words[(low >> 6) as usize] & (1u64 << (low & 63)) != 0,
        }
    }

    /// Insert; `true` if newly added. Promotes past [`ARRAY_MAX`].
    fn insert(&mut self, low: u16) -> bool {
        match self {
            Container::Array(v) => match v.binary_search(&low) {
                Ok(_) => false,
                Err(pos) => {
                    if v.len() < ARRAY_MAX {
                        v.insert(pos, low);
                    } else {
                        let mut bits = Container::bits_from(v);
                        bits.insert(low);
                        *self = bits;
                    }
                    true
                }
            },
            Container::Bits { words, len } => {
                let word = &mut words[(low >> 6) as usize];
                let mask = 1u64 << (low & 63);
                if *word & mask != 0 {
                    return false;
                }
                *word |= mask;
                *len += 1;
                true
            }
        }
    }

    /// Remove; `true` if present. Demotes back to an array at the cutoff
    /// (keeps the representation canonical). May leave the container
    /// empty — the caller drops it.
    fn remove(&mut self, low: u16) -> bool {
        match self {
            Container::Array(v) => match v.binary_search(&low) {
                Ok(pos) => {
                    v.remove(pos);
                    true
                }
                Err(_) => false,
            },
            Container::Bits { words, len } => {
                let word = &mut words[(low >> 6) as usize];
                let mask = 1u64 << (low & 63);
                if *word & mask == 0 {
                    return false;
                }
                *word &= !mask;
                *len -= 1;
                if *len as usize <= ARRAY_MAX {
                    *self = Container::Array(Self::array_from(words));
                }
                true
            }
        }
    }

    fn bits_from(array: &[u16]) -> Container {
        let mut words = Box::new([0u64; WORDS]);
        for &low in array {
            words[(low >> 6) as usize] |= 1u64 << (low & 63);
        }
        Container::Bits {
            words,
            len: array.len() as u32,
        }
    }

    fn array_from(words: &[u64; WORDS]) -> Vec<u16> {
        let mut out = Vec::new();
        for (i, &word) in words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                out.push((i as u32 * 64 + w.trailing_zeros()) as u16);
                w &= w - 1;
            }
        }
        out
    }

    /// Canonicalize a raw bitset into `None` (empty) / array / bits.
    fn from_words(words: Box<[u64; WORDS]>) -> Option<Container> {
        let len: u32 = words.iter().map(|w| w.count_ones()).sum();
        if len == 0 {
            None
        } else if len as usize <= ARRAY_MAX {
            Some(Container::Array(Self::array_from(&words)))
        } else {
            Some(Container::Bits { words, len })
        }
    }

    fn and(&self, other: &Container) -> Option<Container> {
        match (self, other) {
            (Container::Array(a), Container::Array(b)) => {
                let mut out = Vec::new();
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            out.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                // An intersection of arrays can never exceed the cutoff.
                (!out.is_empty()).then_some(Container::Array(out))
            }
            (Container::Array(a), bits @ Container::Bits { .. })
            | (bits @ Container::Bits { .. }, Container::Array(a)) => {
                let out: Vec<u16> = a.iter().copied().filter(|&v| bits.contains(v)).collect();
                (!out.is_empty()).then_some(Container::Array(out))
            }
            (Container::Bits { words: a, .. }, Container::Bits { words: b, .. }) => {
                let mut words = Box::new([0u64; WORDS]);
                for (w, (x, y)) in words.iter_mut().zip(a.iter().zip(b.iter())) {
                    *w = x & y;
                }
                Self::from_words(words)
            }
        }
    }

    fn or(&self, other: &Container) -> Container {
        match (self, other) {
            (Container::Array(a), Container::Array(b)) => {
                let mut out = Vec::with_capacity(a.len() + b.len());
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => {
                            out.push(a[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            out.push(b[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            out.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                out.extend_from_slice(&a[i..]);
                out.extend_from_slice(&b[j..]);
                if out.len() <= ARRAY_MAX {
                    Container::Array(out)
                } else {
                    Container::bits_from(&out)
                }
            }
            (Container::Array(a), Container::Bits { words, .. })
            | (Container::Bits { words, .. }, Container::Array(a)) => {
                let mut words = words.clone();
                for &v in a {
                    words[(v >> 6) as usize] |= 1u64 << (v & 63);
                }
                let len = words.iter().map(|w| w.count_ones()).sum();
                // A superset of a bits container stays above the cutoff.
                Container::Bits { words, len }
            }
            (Container::Bits { words: a, .. }, Container::Bits { words: b, .. }) => {
                let mut words = Box::new([0u64; WORDS]);
                for (w, (x, y)) in words.iter_mut().zip(a.iter().zip(b.iter())) {
                    *w = x | y;
                }
                let len = words.iter().map(|w| w.count_ones()).sum();
                Container::Bits { words, len }
            }
        }
    }

    fn and_not(&self, other: &Container) -> Option<Container> {
        match (self, other) {
            (Container::Array(a), b) => {
                let out: Vec<u16> = a.iter().copied().filter(|&v| !b.contains(v)).collect();
                (!out.is_empty()).then_some(Container::Array(out))
            }
            (Container::Bits { words, .. }, Container::Array(b)) => {
                let mut words = words.clone();
                for &v in b {
                    words[(v >> 6) as usize] &= !(1u64 << (v & 63));
                }
                Self::from_words(words)
            }
            (Container::Bits { words: a, .. }, Container::Bits { words: b, .. }) => {
                let mut words = Box::new([0u64; WORDS]);
                for (w, (x, y)) in words.iter_mut().zip(a.iter().zip(b.iter())) {
                    *w = x & !y;
                }
                Self::from_words(words)
            }
        }
    }

    /// `[0, limit)` minus `existing`, for NOT-within-universe.
    /// `limit` is in `1..=65536`.
    fn complement(existing: Option<&Container>, limit: u32) -> Option<Container> {
        let mut words = Box::new([0u64; WORDS]);
        let full = (limit / 64) as usize;
        words[..full].fill(u64::MAX);
        let rem = limit % 64;
        if rem != 0 {
            words[full] = (1u64 << rem) - 1;
        }
        match existing {
            Some(Container::Array(v)) => {
                for &x in v {
                    if (x as u32) < limit {
                        words[(x >> 6) as usize] &= !(1u64 << (x & 63));
                    }
                }
            }
            Some(Container::Bits { words: b, .. }) => {
                for (w, x) in words.iter_mut().zip(b.iter()) {
                    *w &= !x;
                }
            }
            None => {}
        }
        Self::from_words(words)
    }

    fn min(&self) -> u16 {
        match self {
            Container::Array(v) => v[0],
            Container::Bits { words, .. } => {
                for (i, &w) in words.iter().enumerate() {
                    if w != 0 {
                        return (i as u32 * 64 + w.trailing_zeros()) as u16;
                    }
                }
                unreachable!("Bits containers are never empty")
            }
        }
    }

    fn iter(&self) -> ContainerIter<'_> {
        match self {
            Container::Array(v) => ContainerIter::Array(v.iter()),
            Container::Bits { words, .. } => ContainerIter::Bits {
                words,
                word_idx: 0,
                current: words[0],
            },
        }
    }

    fn estimated_bytes(&self) -> usize {
        match self {
            Container::Array(v) => 24 + v.len() * 2,
            Container::Bits { .. } => 16 + WORDS * 8,
        }
    }
}

enum ContainerIter<'a> {
    Array(std::slice::Iter<'a, u16>),
    Bits {
        words: &'a [u64; WORDS],
        word_idx: usize,
        current: u64,
    },
}

impl Iterator for ContainerIter<'_> {
    type Item = u16;

    fn next(&mut self) -> Option<u16> {
        match self {
            ContainerIter::Array(it) => it.next().copied(),
            ContainerIter::Bits {
                words,
                word_idx,
                current,
            } => {
                while *current == 0 {
                    *word_idx += 1;
                    if *word_idx >= WORDS {
                        return None;
                    }
                    *current = words[*word_idx];
                }
                let bit = current.trailing_zeros();
                *current &= *current - 1;
                Some((*word_idx as u32 * 64 + bit) as u16)
            }
        }
    }
}

/// A compressed set of `u32` values (see the module docs for the layout).
///
/// Cheap to clone: containers are `Arc`-shared, so a clone costs one small
/// `Vec` copy and mutation pays copy-on-write per touched 65536-value
/// chunk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    /// `(high 16 bits, container)`, sorted by key. No empty containers.
    containers: Vec<(u16, Arc<Container>)>,
    /// Total cardinality, maintained incrementally.
    len: u64,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    fn container_idx(&self, hi: u16) -> Result<usize, usize> {
        self.containers.binary_search_by_key(&hi, |(k, _)| *k)
    }

    /// Insert a value; `true` if it was newly added.
    pub fn insert(&mut self, value: u32) -> bool {
        let (hi, lo) = split(value);
        match self.container_idx(hi) {
            Ok(idx) => {
                let added = Arc::make_mut(&mut self.containers[idx].1).insert(lo);
                if added {
                    self.len += 1;
                }
                added
            }
            Err(idx) => {
                self.containers
                    .insert(idx, (hi, Arc::new(Container::Array(vec![lo]))));
                self.len += 1;
                true
            }
        }
    }

    /// Remove a value; `true` if it was present.
    pub fn remove(&mut self, value: u32) -> bool {
        let (hi, lo) = split(value);
        let Ok(idx) = self.container_idx(hi) else {
            return false;
        };
        let container = Arc::make_mut(&mut self.containers[idx].1);
        if !container.remove(lo) {
            return false;
        }
        self.len -= 1;
        if container.len() == 0 {
            self.containers.remove(idx);
        }
        true
    }

    /// Membership test.
    pub fn contains(&self, value: u32) -> bool {
        let (hi, lo) = split(value);
        match self.container_idx(hi) {
            Ok(idx) => self.containers[idx].1.contains(lo),
            Err(_) => false,
        }
    }

    /// Number of values in the set.
    pub fn cardinality(&self) -> u64 {
        self.len
    }

    /// True when no value is set.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The smallest value, if any.
    pub fn min(&self) -> Option<u32> {
        self.containers.first().map(|(hi, c)| join(*hi, c.min()))
    }

    /// Set intersection.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        let (mut i, mut j) = (0, 0);
        while i < self.containers.len() && j < other.containers.len() {
            let (ka, ca) = &self.containers[i];
            let (kb, cb) = &other.containers[j];
            match ka.cmp(kb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if Arc::ptr_eq(ca, cb) {
                        out.len += ca.len() as u64;
                        out.containers.push((*ka, Arc::clone(ca)));
                    } else if let Some(c) = ca.and(cb) {
                        out.len += c.len() as u64;
                        out.containers.push((*ka, Arc::new(c)));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Set union.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        let (mut i, mut j) = (0, 0);
        loop {
            let a = self.containers.get(i);
            let b = other.containers.get(j);
            let entry = match (a, b) {
                (None, None) => break,
                (Some((k, c)), None) => {
                    i += 1;
                    (*k, Arc::clone(c))
                }
                (None, Some((k, c))) => {
                    j += 1;
                    (*k, Arc::clone(c))
                }
                (Some((ka, ca)), Some((kb, cb))) => match ka.cmp(kb) {
                    std::cmp::Ordering::Less => {
                        i += 1;
                        (*ka, Arc::clone(ca))
                    }
                    std::cmp::Ordering::Greater => {
                        j += 1;
                        (*kb, Arc::clone(cb))
                    }
                    std::cmp::Ordering::Equal => {
                        i += 1;
                        j += 1;
                        if Arc::ptr_eq(ca, cb) {
                            (*ka, Arc::clone(ca))
                        } else {
                            (*ka, Arc::new(ca.or(cb)))
                        }
                    }
                },
            };
            out.len += entry.1.len() as u64;
            out.containers.push(entry);
        }
        out
    }

    /// Set difference (`self \ other`).
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        let mut j = 0;
        for (k, c) in &self.containers {
            while j < other.containers.len() && other.containers[j].0 < *k {
                j += 1;
            }
            let entry = match other.containers.get(j) {
                Some((kb, cb)) if kb == k => {
                    if Arc::ptr_eq(c, cb) {
                        None
                    } else {
                        c.and_not(cb).map(Arc::new)
                    }
                }
                _ => Some(Arc::clone(c)),
            };
            if let Some(c) = entry {
                out.len += c.len() as u64;
                out.containers.push((*k, c));
            }
        }
        out
    }

    /// Complement within the half-open universe `[0, universe)`.
    pub fn not(&self, universe: u32) -> Bitmap {
        let mut out = Bitmap::new();
        if universe == 0 {
            return out;
        }
        let max_hi = ((universe - 1) >> 16) as u16;
        for hi in 0..=max_hi {
            let limit = (universe - ((hi as u32) << 16)).min(65536);
            let existing = match self.container_idx(hi) {
                Ok(idx) => Some(&*self.containers[idx].1),
                Err(_) => None,
            };
            if let Some(c) = Container::complement(existing, limit) {
                out.len += c.len() as u64;
                out.containers.push((hi, Arc::new(c)));
            }
        }
        out
    }

    /// Iterate values in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.containers.iter().flat_map(|(hi, c)| {
            let base = (*hi as u32) << 16;
            c.iter().map(move |lo| base | lo as u32)
        })
    }

    /// Heap footprint estimate (the posting-list side of the store's
    /// memory accounting).
    pub fn estimated_bytes(&self) -> usize {
        24 + self
            .containers
            .iter()
            .map(|(_, c)| 16 + c.estimated_bytes())
            .sum::<usize>()
    }
}

impl FromIterator<u32> for Bitmap {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Bitmap {
        let mut bm = Bitmap::new();
        for v in iter {
            bm.insert(v);
        }
        bm
    }
}

impl Extend<u32> for Bitmap {
    fn extend<I: IntoIterator<Item = u32>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_bits(bm: &Bitmap, hi: u16) -> bool {
        match bm.container_idx(hi) {
            Ok(idx) => matches!(&*bm.containers[idx].1, Container::Bits { .. }),
            Err(_) => false,
        }
    }

    #[test]
    fn insert_remove_contains() {
        let mut bm = Bitmap::new();
        assert!(bm.insert(5));
        assert!(!bm.insert(5), "duplicate rejected");
        assert!(bm.insert(70_000), "second chunk");
        assert!(bm.contains(5));
        assert!(bm.contains(70_000));
        assert!(!bm.contains(6));
        assert_eq!(bm.cardinality(), 2);
        assert_eq!(bm.min(), Some(5));
        assert!(bm.remove(5));
        assert!(!bm.remove(5), "double remove is a no-op");
        assert_eq!(bm.cardinality(), 1);
        assert_eq!(bm.min(), Some(70_000));
        assert!(bm.remove(70_000));
        assert!(bm.is_empty());
        assert_eq!(bm.min(), None);
        assert!(bm.containers.is_empty(), "empty containers are dropped");
    }

    /// The promotion boundary, explicitly: 4095 and 4096 members stay an
    /// array, the 4097th promotes to a bitset, and removing back down to
    /// 4096 demotes again — with content intact at every step.
    #[test]
    fn promotion_and_demotion_at_the_cutoff() {
        let mut bm = Bitmap::new();
        for v in 0..4095u32 {
            bm.insert(v);
        }
        assert!(!is_bits(&bm, 0), "4095 members: still an array");
        bm.insert(4095);
        assert!(
            !is_bits(&bm, 0),
            "4096 members: still an array (the cutoff)"
        );
        assert_eq!(bm.cardinality(), 4096);

        bm.insert(4096);
        assert!(is_bits(&bm, 0), "4097 members: promoted to a bitset");
        assert_eq!(bm.cardinality(), 4097);
        assert!(
            (0..=4096).all(|v| bm.contains(v)),
            "promotion keeps content"
        );

        bm.remove(2000);
        assert!(!is_bits(&bm, 0), "4096 members again: demoted to an array");
        assert_eq!(bm.cardinality(), 4096);
        assert!(!bm.contains(2000));
        assert!(
            bm.contains(0) && bm.contains(4096),
            "demotion keeps content"
        );

        // Canonical representation: the round-tripped bitmap equals one
        // built directly at the same cardinality.
        let direct: Bitmap = (0..=4096u32).filter(|&v| v != 2000).collect();
        assert_eq!(bm, direct);
    }

    #[test]
    fn ops_across_container_shapes() {
        // a: dense bitset chunk; b: sparse array overlapping it.
        let a: Bitmap = (0..5000u32).collect();
        let b: Bitmap = (4000..4100u32).chain(66_000..66_010).collect();
        let and = a.and(&b);
        assert_eq!(and.cardinality(), 100);
        assert!(and.contains(4000) && and.contains(4099));
        assert!(!and.contains(66_000), "b's second chunk misses a entirely");

        let or = a.or(&b);
        assert_eq!(or.cardinality(), 5000 + 10);
        assert!(or.contains(66_009));

        let diff = a.and_not(&b);
        assert_eq!(diff.cardinality(), 5000 - 100);
        assert!(diff.contains(3999) && !diff.contains(4000));
    }

    #[test]
    fn not_within_universe() {
        let bm: Bitmap = [0u32, 2, 65_536].into_iter().collect();
        let complement = bm.not(65_538);
        assert_eq!(complement.cardinality(), 65_538 - 3);
        assert!(complement.contains(1));
        assert!(!complement.contains(0));
        assert!(!complement.contains(65_536));
        assert!(complement.contains(65_537));
        assert!(!complement.contains(65_538), "universe is half-open");
        assert!(Bitmap::new().not(0).is_empty());
    }

    #[test]
    fn iteration_is_sorted() {
        let values = [70_000u32, 3, 65_535, 65_536, 0, 131_072];
        let bm: Bitmap = values.into_iter().collect();
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        assert_eq!(bm.iter().collect::<Vec<_>>(), sorted);
    }

    #[test]
    fn clones_share_and_diverge() {
        let mut a: Bitmap = (0..10_000u32).collect();
        let b = a.clone();
        a.insert(1_000_000);
        a.remove(5);
        assert!(!b.contains(1_000_000));
        assert!(b.contains(5));
        assert_eq!(b.cardinality(), 10_000);
    }

    #[test]
    fn bytes_reflect_container_shapes() {
        let sparse: Bitmap = (0..10u32).collect();
        let dense: Bitmap = (0..10_000u32).collect();
        assert!(sparse.estimated_bytes() < 200);
        assert!(dense.estimated_bytes() > 8000, "bitset chunk dominates");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    /// Values concentrated so ops hit the same chunks, with a tail above
    /// 65536 to exercise multi-container paths.
    fn arb_values() -> impl Strategy<Value = Vec<u32>> {
        proptest::collection::vec(
            prop_oneof![0u32..9000, 60_000u32..70_000, 200_000u32..200_050],
            0..400,
        )
    }

    fn model(values: &[u32]) -> BTreeSet<u32> {
        values.iter().copied().collect()
    }

    proptest! {
        /// AND / OR / AND-NOT / NOT agree with a `BTreeSet` reference
        /// model, and cardinality / iteration / min match throughout.
        #[test]
        fn ops_agree_with_set_model(a in arb_values(), b in arb_values()) {
            let bm_a: Bitmap = a.iter().copied().collect();
            let bm_b: Bitmap = b.iter().copied().collect();
            let set_a = model(&a);
            let set_b = model(&b);

            prop_assert_eq!(bm_a.cardinality(), set_a.len() as u64);
            prop_assert_eq!(bm_a.iter().collect::<Vec<_>>(),
                set_a.iter().copied().collect::<Vec<_>>());
            prop_assert_eq!(bm_a.min(), set_a.first().copied());

            let and = bm_a.and(&bm_b);
            let and_ref: Vec<u32> = set_a.intersection(&set_b).copied().collect();
            prop_assert_eq!(and.iter().collect::<Vec<_>>(), and_ref.clone());
            prop_assert_eq!(and.cardinality(), and_ref.len() as u64);

            let or = bm_a.or(&bm_b);
            let or_ref: Vec<u32> = set_a.union(&set_b).copied().collect();
            prop_assert_eq!(or.iter().collect::<Vec<_>>(), or_ref.clone());
            prop_assert_eq!(or.cardinality(), or_ref.len() as u64);

            let diff = bm_a.and_not(&bm_b);
            let diff_ref: Vec<u32> = set_a.difference(&set_b).copied().collect();
            prop_assert_eq!(diff.iter().collect::<Vec<_>>(), diff_ref.clone());
            prop_assert_eq!(diff.cardinality(), diff_ref.len() as u64);

            let universe = 70_000u32;
            let not = bm_a.not(universe);
            let not_ref: Vec<u32> = (0..universe).filter(|v| !set_a.contains(v)).collect();
            prop_assert_eq!(not.cardinality(), not_ref.len() as u64);
            prop_assert_eq!(not.iter().collect::<Vec<_>>(), not_ref);
        }

        /// Mixed insert/remove sequences crossing the promotion cutoff in
        /// both directions stay equal to the set model — including the
        /// return values and the canonical-representation equality.
        #[test]
        fn mutation_agrees_with_set_model(
            ops in proptest::collection::vec(
                (proptest::bool::weighted(0.7), 0u32..6000),
                0..600,
            ),
        ) {
            let mut bm = Bitmap::new();
            let mut set = BTreeSet::new();
            for (is_insert, v) in ops {
                if is_insert {
                    prop_assert_eq!(bm.insert(v), set.insert(v));
                } else {
                    prop_assert_eq!(bm.remove(v), set.remove(&v));
                }
            }
            prop_assert_eq!(bm.cardinality(), set.len() as u64);
            prop_assert_eq!(bm.iter().collect::<Vec<_>>(),
                set.iter().copied().collect::<Vec<_>>());
            let rebuilt: Bitmap = set.iter().copied().collect();
            prop_assert_eq!(bm, rebuilt);
        }
    }
}
