//! The [`Dataset`]: one dictionary, a default graph, and named graphs.
//!
//! This is the paper's expanded graph `G+` (§3.1): after materialization the
//! base knowledge graph is augmented with one named graph per view. Sharing
//! a single dictionary across graphs means query evaluation joins on ids
//! regardless of which graph a pattern targets.

use crate::delta::{ChangeSet, Delta, OpKind};
use crate::graphmap::GraphMap;
use crate::index::GraphStore;
use crate::pattern::EncodedTriple;
use crate::stats::{GraphStats, StatsTracker};
use sofos_rdf::{Dictionary, Graph, Term, TermId};
use std::sync::Arc;

/// Identifies a graph inside a [`Dataset`]: `None` is the default graph,
/// `Some(id)` a named graph keyed by the interned IRI of its name.
pub type GraphName = Option<TermId>;

/// An RDF dataset: default graph + named graphs over a shared dictionary.
///
/// The dictionary sits behind an [`Arc`] with copy-on-write semantics:
/// cloning a dataset — which the epoch store does once per published
/// snapshot — shares the (large, append-only) term table. Together with
/// the `Arc`-shared index runs ([`crate::index::PermIndex`]) and the
/// chunked copy-on-write named-graph map ([`GraphMap`]) the clone itself
/// is an O(recent-writes) value: untouched view graphs cost nothing per
/// clone, no matter how many are materialized. The *writer's* first
/// genuinely-new-term intern after a publish re-copies the term table
/// (lookups of known terms never detach), so a batch that mints fresh
/// terms pays one dictionary copy — an accepted per-batch cost at
/// current scales.
#[derive(Debug, Default, Clone)]
pub struct Dataset {
    dict: Arc<Dictionary>,
    default_graph: GraphStore,
    named: GraphMap,
    /// Live statistics of the default graph, updated per mutation instead
    /// of recomputed (see [`StatsTracker`]). View graphs are not tracked:
    /// the cost models only consume base-graph statistics.
    base_stats: StatsTracker,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Dataset {
        Dataset::default()
    }

    /// Shared term dictionary (read access).
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Shared term dictionary (intern access). Detaches from any snapshot
    /// still sharing the dictionary (copy-on-write).
    pub fn dict_mut(&mut self) -> &mut Dictionary {
        Arc::make_mut(&mut self.dict)
    }

    /// Intern a term into the shared dictionary. Known terms resolve
    /// through the shared `Arc` without detaching it; only a genuinely
    /// new term pays the copy-on-write (see [`Dataset::dict_mut`]).
    pub fn intern(&mut self, term: &Term) -> TermId {
        if let Some(id) = self.dict.get_id(term) {
            return id;
        }
        self.dict_mut().intern(term)
    }

    /// Intern an IRI string (typical for graph names and predicates).
    pub fn intern_iri(&mut self, iri: &str) -> TermId {
        self.intern(&Term::iri(iri))
    }

    /// Resolve an id to its term (panics on ids from another dictionary).
    pub fn term(&self, id: TermId) -> &Term {
        self.dict.term_unchecked(id)
    }

    /// Insert an encoded triple into a graph, creating the graph if needed.
    pub fn insert_encoded(&mut self, graph: GraphName, triple: EncodedTriple) -> bool {
        match graph {
            None => {
                let inserted = self.default_graph.insert(triple);
                if inserted {
                    self.base_stats.record_insert(&triple);
                }
                inserted
            }
            Some(name) => self.named.entry_or_default(name).insert(triple),
        }
    }

    /// Remove an encoded triple from a graph; returns `true` if present.
    pub fn remove_encoded(&mut self, graph: GraphName, triple: &EncodedTriple) -> bool {
        match graph {
            None => {
                let removed = self.default_graph.remove(triple);
                if removed {
                    self.base_stats.record_remove(triple);
                }
                removed
            }
            Some(name) => self.named.get_mut(name).is_some_and(|g| g.remove(triple)),
        }
    }

    /// Intern three terms and insert the triple into a graph.
    pub fn insert(&mut self, graph: GraphName, s: &Term, p: &Term, o: &Term) -> bool {
        let triple = [self.intern(s), self.intern(p), self.intern(o)];
        self.insert_encoded(graph, triple)
    }

    /// Remove a term-level triple; `false` when any term is unknown (an
    /// unknown term cannot appear in any triple).
    pub fn remove(&mut self, graph: GraphName, s: &Term, p: &Term, o: &Term) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.dict.get_id(s),
            self.dict.get_id(p),
            self.dict.get_id(o),
        ) else {
            return false;
        };
        self.remove_encoded(graph, &[s, p, o])
    }

    /// Apply a batched [`Delta`] — the transactional write path of the
    /// living graph. Operations run in order through the LSM-lite index
    /// deltas (inserts into the B-tree deltas, deletes as tombstones);
    /// no-ops (inserting a present triple, deleting an absent one) are
    /// counted but have no effect. Returns the **net** [`ChangeSet`] per
    /// graph, with intra-batch insert/delete pairs cancelled — the input
    /// the view-maintenance engine consumes. Base-graph statistics stay
    /// incrementally maintained throughout (see [`Dataset::base_stats`]).
    pub fn apply(&mut self, delta: Delta) -> ChangeSet {
        let mut changes = ChangeSet::default();
        for op in delta.ops {
            let [s, p, o] = &op.triple;
            let (graph, applied, triple) = match op.kind {
                OpKind::Insert => {
                    let graph = op.graph.as_ref().map(|g| self.intern(g));
                    let triple = [self.intern(s), self.intern(p), self.intern(o)];
                    (graph, self.insert_encoded(graph, triple), triple)
                }
                OpKind::Delete => {
                    // Like [`Dataset::remove`]: resolve without interning —
                    // a term the dictionary has never seen cannot appear in
                    // any triple, and no-op deletes must not grow the
                    // (never garbage-collected) dictionary.
                    let ids = (
                        op.graph.as_ref().map(|g| self.dict.get_id(g)),
                        self.dict.get_id(s),
                        self.dict.get_id(p),
                        self.dict.get_id(o),
                    );
                    match ids {
                        (graph @ (None | Some(Some(_))), Some(s), Some(p), Some(o)) => {
                            let graph = graph.flatten();
                            let triple = [s, p, o];
                            (graph, self.remove_encoded(graph, &triple), triple)
                        }
                        _ => {
                            changes.noops += 1;
                            continue;
                        }
                    }
                }
            };
            if !applied {
                changes.noops += 1;
                continue;
            }
            let graph_changes = changes.graph_mut(graph);
            match op.kind {
                OpKind::Insert => graph_changes.inserted.push(triple),
                OpKind::Delete => graph_changes.removed.push(triple),
            }
        }
        changes.coalesce();
        changes
    }

    /// Current statistics of the default graph, maintained incrementally
    /// by every mutation (the replacement for ad-hoc
    /// [`GraphStats::compute`] passes on the write path).
    pub fn base_stats(&self) -> GraphStats {
        self.base_stats.snapshot()
    }

    /// Load a term-level [`Graph`] into a dataset graph (bulk path).
    pub fn load(&mut self, graph: GraphName, data: &Graph) {
        let mut encoded: Vec<EncodedTriple> = Vec::with_capacity(data.len());
        for t in data.iter() {
            encoded.push([
                self.intern(&t.subject),
                self.intern(&t.predicate),
                self.intern(&t.object),
            ]);
        }
        match graph {
            None => {
                if self.default_graph.is_empty() {
                    self.default_graph.bulk_load(encoded);
                    // Rebuild rather than track: bulk_load deduplicates.
                    self.base_stats = StatsTracker::from_store(&self.default_graph);
                } else {
                    for t in encoded {
                        self.insert_encoded(None, t);
                    }
                }
            }
            Some(name) => {
                let store = self.named.entry_or_default(name);
                if store.is_empty() {
                    store.bulk_load(encoded);
                } else {
                    for t in encoded {
                        store.insert(t);
                    }
                }
            }
        }
    }

    /// Load already-encoded triples into a graph — the bulk path snapshot
    /// recovery uses. The ids must come from this dataset's dictionary
    /// (recovery rebuilds the dictionary first, reproducing the ids the
    /// snapshot was encoded under).
    pub fn load_encoded(&mut self, graph: GraphName, encoded: Vec<EncodedTriple>) {
        match graph {
            None => {
                if self.default_graph.is_empty() {
                    self.default_graph.bulk_load(encoded);
                    // Rebuild rather than track: bulk_load deduplicates.
                    self.base_stats = StatsTracker::from_store(&self.default_graph);
                } else {
                    for t in encoded {
                        self.insert_encoded(None, t);
                    }
                }
            }
            Some(name) => {
                let store = self.named.entry_or_default(name);
                if store.is_empty() {
                    store.bulk_load(encoded);
                } else {
                    for t in encoded {
                        store.insert(t);
                    }
                }
            }
        }
    }

    /// The default graph (the paper's base knowledge graph `G`).
    pub fn default_graph(&self) -> &GraphStore {
        &self.default_graph
    }

    /// Resolve a graph name to its store, if present.
    pub fn graph(&self, name: GraphName) -> Option<&GraphStore> {
        match name {
            None => Some(&self.default_graph),
            Some(id) => self.named.get(id),
        }
    }

    /// Create an empty named graph (no-op if it exists).
    pub fn create_graph(&mut self, name: TermId) {
        self.named.entry_or_default(name);
    }

    /// Drop a named graph; returns `true` if it existed. The dictionary is
    /// intentionally not garbage-collected (see `Dictionary` docs).
    pub fn drop_graph(&mut self, name: TermId) -> bool {
        self.named.remove(name)
    }

    /// Iterate the names of all named graphs (deterministic: sorted by id).
    pub fn graph_names(&self) -> Vec<TermId> {
        self.named.names_sorted()
    }

    /// The named-graph map (chunk-sharing diagnostics live on it).
    pub fn named_graphs(&self) -> &GraphMap {
        &self.named
    }

    /// Total triples across the default and all named graphs.
    pub fn total_triples(&self) -> usize {
        self.default_graph.len() + self.named.values().map(GraphStore::len).sum::<usize>()
    }

    /// Estimated heap bytes: dictionary + all graph indexes. This is the
    /// figure the experiments report as storage / space amplification.
    pub fn estimated_bytes(&self) -> usize {
        self.dict.estimated_bytes()
            + self.default_graph.estimated_bytes()
            + self
                .named
                .values()
                .map(GraphStore::estimated_bytes)
                .sum::<usize>()
    }

    /// Register predicates for per-(predicate, value) posting lists on
    /// one graph (see [`crate::posting`]). No-op when the graph does not
    /// exist; idempotent when it does.
    pub fn register_value_preds(&mut self, graph: GraphName, preds: &[TermId]) {
        let store = match graph {
            None => Some(&mut self.default_graph),
            Some(name) => self.named.get_mut(name),
        };
        if let Some(store) = store {
            store.register_value_preds(preds);
        }
    }

    /// Posting-list observability figures summed across the default and
    /// all named graphs (the `sofos_index_*` gauges read this).
    pub fn posting_stats(&self) -> crate::posting::PostingStats {
        let mut total = self.default_graph.posting_stats();
        for store in self.named.values() {
            total.merge(store.posting_stats());
        }
        total
    }

    /// Force-merge all graphs' index deltas.
    pub fn optimize(&mut self) {
        self.default_graph.optimize();
        for store in self.named.values_mut() {
            store.optimize();
        }
    }

    /// Materialize the RDFS closure of the default graph in place
    /// (see [`crate::inference`]).
    pub fn materialize_rdfs(&mut self) -> crate::inference::InferenceStats {
        let stats = crate::inference::materialize_rdfs(&mut self.default_graph, &self.dict);
        // Inference writes to the store directly; rebuild the live
        // statistics in one pass (inference itself is already O(|G|)).
        if stats.inferred > 0 {
            self.base_stats = StatsTracker::from_store(&self.default_graph);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::IdPattern;

    fn term(s: &str) -> Term {
        Term::iri(format!("http://e/{s}"))
    }

    #[test]
    fn default_and_named_graphs_are_disjoint() {
        let mut ds = Dataset::new();
        ds.insert(None, &term("s"), &term("p"), &term("o"));
        let g1 = ds.intern_iri("http://e/g1");
        ds.insert(Some(g1), &term("s"), &term("p"), &term("o2"));

        assert_eq!(ds.default_graph().len(), 1);
        assert_eq!(ds.graph(Some(g1)).unwrap().len(), 1);
        assert_eq!(ds.total_triples(), 2);
        // Same dictionary: the subject id is shared.
        let s_id = ds.dict().get_id(&term("s")).unwrap();
        assert_eq!(
            ds.default_graph()
                .scan(IdPattern::new(Some(s_id), None, None))
                .count(),
            1
        );
        assert_eq!(
            ds.graph(Some(g1))
                .unwrap()
                .scan(IdPattern::new(Some(s_id), None, None))
                .count(),
            1
        );
    }

    #[test]
    fn load_bulk_and_incremental_agree() {
        use sofos_rdf::{Graph, Triple};
        let mut g = Graph::new();
        for i in 0..20 {
            g.insert(Triple::new_unchecked(
                term(&format!("s{i}")),
                term("p"),
                Term::literal_int(i),
            ));
        }
        let mut ds1 = Dataset::new();
        ds1.load(None, &g);
        let mut ds2 = Dataset::new();
        for t in g.iter() {
            ds2.insert(None, &t.subject, &t.predicate, &t.object);
        }
        assert_eq!(ds1.default_graph().len(), 20);
        assert_eq!(ds2.default_graph().len(), 20);
    }

    #[test]
    fn drop_graph_removes_content() {
        let mut ds = Dataset::new();
        let g1 = ds.intern_iri("http://e/g1");
        ds.insert(Some(g1), &term("s"), &term("p"), &term("o"));
        assert!(ds.graph(Some(g1)).is_some());
        assert!(ds.drop_graph(g1));
        assert!(ds.graph(Some(g1)).is_none());
        assert!(!ds.drop_graph(g1), "second drop is a no-op");
        assert_eq!(ds.total_triples(), 0);
    }

    #[test]
    fn graph_names_are_sorted() {
        let mut ds = Dataset::new();
        let b = ds.intern_iri("http://e/b");
        let a = ds.intern_iri("http://e/a");
        ds.create_graph(b);
        ds.create_graph(a);
        let names = ds.graph_names();
        assert_eq!(names.len(), 2);
        assert!(names[0] < names[1]);
    }

    #[test]
    fn bytes_include_dictionary_and_indexes() {
        let mut ds = Dataset::new();
        let before = ds.estimated_bytes();
        ds.insert(None, &term("subject"), &term("predicate"), &term("object"));
        assert!(ds.estimated_bytes() > before);
    }

    #[test]
    fn posting_stats_aggregate_across_graphs() {
        let mut ds = Dataset::new();
        ds.insert(None, &term("s"), &term("p"), &term("o"));
        let g1 = ds.intern_iri("http://e/g1");
        ds.insert(Some(g1), &term("s2"), &term("p"), &term("o"));
        let base_only = ds.posting_stats();
        assert_eq!(base_only.posting_lists, 2, "one pred list per graph");
        assert!(base_only.updates >= 2);

        let p = ds.dict().get_id(&term("p")).unwrap();
        ds.register_value_preds(Some(g1), &[p]);
        let with_values = ds.posting_stats();
        assert_eq!(with_values.posting_lists, 3, "plus one value list");
        assert!(with_values.bytes > 0);

        // Registering on a missing graph is a quiet no-op.
        let ghost = ds.intern_iri("http://e/ghost");
        ds.register_value_preds(Some(ghost), &[p]);
        assert_eq!(ds.posting_stats().posting_lists, 3);
    }

    #[test]
    fn missing_named_graph_is_none() {
        let mut ds = Dataset::new();
        let ghost = ds.intern_iri("http://e/ghost");
        assert!(ds.graph(Some(ghost)).is_none());
    }

    #[test]
    fn apply_reports_net_changes_and_noops() {
        let mut ds = Dataset::new();
        ds.insert(None, &term("s0"), &term("p"), &term("o0"));

        let mut delta = Delta::new();
        delta
            .insert(term("s1"), term("p"), term("o1")) // new
            .insert(term("s0"), term("p"), term("o0")) // already present: no-op
            .delete(term("s0"), term("p"), term("o0")) // present: removed
            .insert(term("s2"), term("p"), term("o2")) // new...
            .delete(term("s2"), term("p"), term("o2")) // ...cancelled in-batch
            .delete(term("ghost"), term("p"), term("o")); // absent: no-op
        let changes = ds.apply(delta);

        assert_eq!(changes.default_graph.inserted.len(), 1);
        assert_eq!(changes.default_graph.removed.len(), 1);
        assert_eq!(changes.noops, 2);
        assert_eq!(ds.default_graph().len(), 1);
        let s1 = ds.dict().get_id(&term("s1")).unwrap();
        assert_eq!(changes.default_graph.inserted[0][0], s1);
    }

    #[test]
    fn apply_routes_named_graphs() {
        let mut ds = Dataset::new();
        let g = Term::iri("http://e/g1");
        let mut delta = Delta::new();
        delta.insert_into(g.clone(), term("s"), term("p"), term("o"));
        delta.insert(term("s"), term("p"), term("o"));
        let changes = ds.apply(delta);
        let g_id = ds.dict().get_id(&g).unwrap();
        assert_eq!(changes.graph(Some(g_id)).unwrap().inserted.len(), 1);
        assert_eq!(changes.default_graph.inserted.len(), 1);
        assert_eq!(ds.graph(Some(g_id)).unwrap().len(), 1);
        assert_eq!(ds.default_graph().len(), 1);

        let mut delta = Delta::new();
        delta.delete_from(g.clone(), term("s"), term("p"), term("o"));
        let changes = ds.apply(delta);
        assert_eq!(changes.graph(Some(g_id)).unwrap().removed.len(), 1);
        assert!(ds.graph(Some(g_id)).unwrap().is_empty());
    }

    #[test]
    fn incremental_stats_match_full_recomputation() {
        let mut ds = Dataset::new();
        // Build through every mutation path: load, insert, apply, remove.
        use sofos_rdf::{Graph, Triple};
        let mut g = Graph::new();
        for i in 0..12 {
            g.insert(Triple::new_unchecked(
                term(&format!("s{}", i % 4)),
                term(&format!("p{}", i % 3)),
                Term::literal_int(i % 5),
            ));
        }
        ds.load(None, &g);
        assert_eq!(ds.base_stats(), GraphStats::compute(ds.default_graph()));

        ds.insert(None, &term("s9"), &term("p0"), &term("s0"));
        assert_eq!(ds.base_stats(), GraphStats::compute(ds.default_graph()));

        let mut delta = Delta::new();
        delta
            .delete(term("s9"), term("p0"), term("s0"))
            .insert(term("sA"), term("pZ"), term("oA"))
            .delete(term("s0"), term("p0"), term("s0")); // maybe absent: no-op ok
        ds.apply(delta);
        assert_eq!(ds.base_stats(), GraphStats::compute(ds.default_graph()));

        assert!(ds.remove(None, &term("sA"), &term("pZ"), &term("oA")));
        assert_eq!(ds.base_stats(), GraphStats::compute(ds.default_graph()));
        // Removing the only pZ triple drops the predicate entirely.
        let pz = ds.dict().get_id(&term("pZ")).unwrap();
        assert_eq!(ds.base_stats().predicate_count(pz), 0);
    }

    #[test]
    fn remove_with_unknown_terms_is_noop() {
        let mut ds = Dataset::new();
        ds.insert(None, &term("s"), &term("p"), &term("o"));
        assert!(!ds.remove(None, &term("never-seen"), &term("p"), &term("o")));
        assert_eq!(ds.default_graph().len(), 1);
    }

    #[test]
    fn coalesce_nets_by_multiplicity_not_membership() {
        // insert / delete / insert of an initially-absent triple: the net
        // effect is ONE insert — a set-based cancellation would wrongly
        // report no change at all.
        let mut ds = Dataset::new();
        let mut delta = Delta::new();
        delta
            .insert(term("s"), term("p"), term("o"))
            .delete(term("s"), term("p"), term("o"))
            .insert(term("s"), term("p"), term("o"));
        let changes = ds.apply(delta);
        assert_eq!(changes.default_graph.inserted.len(), 1);
        assert!(changes.default_graph.removed.is_empty());
        assert!(ds.default_graph().len() == 1);

        // Symmetric: delete / insert / delete of a present triple nets to
        // one removal.
        let mut delta = Delta::new();
        delta
            .delete(term("s"), term("p"), term("o"))
            .insert(term("s"), term("p"), term("o"))
            .delete(term("s"), term("p"), term("o"));
        let changes = ds.apply(delta);
        assert!(changes.default_graph.inserted.is_empty());
        assert_eq!(changes.default_graph.removed.len(), 1);
        assert!(ds.default_graph().is_empty());
    }

    #[test]
    fn noop_deletes_do_not_grow_the_dictionary() {
        let mut ds = Dataset::new();
        ds.insert(None, &term("s"), &term("p"), &term("o"));
        let dict_before = ds.dict().len();
        let mut delta = Delta::new();
        delta.delete(term("ghost-s"), term("ghost-p"), term("ghost-o"));
        delta.delete_from(term("ghost-g"), term("s"), term("p"), term("o"));
        let changes = ds.apply(delta);
        assert_eq!(changes.noops, 2);
        assert_eq!(
            ds.dict().len(),
            dict_before,
            "deletes of never-seen terms must not intern them"
        );
    }
}
