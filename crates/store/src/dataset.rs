//! The [`Dataset`]: one dictionary, a default graph, and named graphs.
//!
//! This is the paper's expanded graph `G+` (§3.1): after materialization the
//! base knowledge graph is augmented with one named graph per view. Sharing
//! a single dictionary across graphs means query evaluation joins on ids
//! regardless of which graph a pattern targets.

use crate::index::GraphStore;
use crate::pattern::EncodedTriple;
use sofos_rdf::{Dictionary, FxHashMap, Graph, Term, TermId};

/// Identifies a graph inside a [`Dataset`]: `None` is the default graph,
/// `Some(id)` a named graph keyed by the interned IRI of its name.
pub type GraphName = Option<TermId>;

/// An RDF dataset: default graph + named graphs over a shared dictionary.
#[derive(Debug, Default, Clone)]
pub struct Dataset {
    dict: Dictionary,
    default_graph: GraphStore,
    named: FxHashMap<TermId, GraphStore>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Dataset {
        Dataset::default()
    }

    /// Shared term dictionary (read access).
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Shared term dictionary (intern access).
    pub fn dict_mut(&mut self) -> &mut Dictionary {
        &mut self.dict
    }

    /// Intern a term into the shared dictionary.
    pub fn intern(&mut self, term: &Term) -> TermId {
        self.dict.intern(term)
    }

    /// Intern an IRI string (typical for graph names and predicates).
    pub fn intern_iri(&mut self, iri: &str) -> TermId {
        self.dict.intern_iri(iri)
    }

    /// Resolve an id to its term (panics on ids from another dictionary).
    pub fn term(&self, id: TermId) -> &Term {
        self.dict.term_unchecked(id)
    }

    /// Insert an encoded triple into a graph, creating the graph if needed.
    pub fn insert_encoded(&mut self, graph: GraphName, triple: EncodedTriple) -> bool {
        match graph {
            None => self.default_graph.insert(triple),
            Some(name) => self.named.entry(name).or_default().insert(triple),
        }
    }

    /// Intern three terms and insert the triple into a graph.
    pub fn insert(&mut self, graph: GraphName, s: &Term, p: &Term, o: &Term) -> bool {
        let triple = [self.dict.intern(s), self.dict.intern(p), self.dict.intern(o)];
        self.insert_encoded(graph, triple)
    }

    /// Load a term-level [`Graph`] into a dataset graph (bulk path).
    pub fn load(&mut self, graph: GraphName, data: &Graph) {
        let mut encoded: Vec<EncodedTriple> = Vec::with_capacity(data.len());
        for t in data.iter() {
            encoded.push([
                self.dict.intern(&t.subject),
                self.dict.intern(&t.predicate),
                self.dict.intern(&t.object),
            ]);
        }
        let store = match graph {
            None => &mut self.default_graph,
            Some(name) => self.named.entry(name).or_default(),
        };
        if store.is_empty() {
            store.bulk_load(encoded);
        } else {
            for t in encoded {
                store.insert(t);
            }
        }
    }

    /// The default graph (the paper's base knowledge graph `G`).
    pub fn default_graph(&self) -> &GraphStore {
        &self.default_graph
    }

    /// Resolve a graph name to its store, if present.
    pub fn graph(&self, name: GraphName) -> Option<&GraphStore> {
        match name {
            None => Some(&self.default_graph),
            Some(id) => self.named.get(&id),
        }
    }

    /// Create an empty named graph (no-op if it exists).
    pub fn create_graph(&mut self, name: TermId) {
        self.named.entry(name).or_default();
    }

    /// Drop a named graph; returns `true` if it existed. The dictionary is
    /// intentionally not garbage-collected (see `Dictionary` docs).
    pub fn drop_graph(&mut self, name: TermId) -> bool {
        self.named.remove(&name).is_some()
    }

    /// Iterate the names of all named graphs (deterministic: sorted by id).
    pub fn graph_names(&self) -> Vec<TermId> {
        let mut names: Vec<TermId> = self.named.keys().copied().collect();
        names.sort_unstable();
        names
    }

    /// Total triples across the default and all named graphs.
    pub fn total_triples(&self) -> usize {
        self.default_graph.len() + self.named.values().map(GraphStore::len).sum::<usize>()
    }

    /// Estimated heap bytes: dictionary + all graph indexes. This is the
    /// figure the experiments report as storage / space amplification.
    pub fn estimated_bytes(&self) -> usize {
        self.dict.estimated_bytes()
            + self.default_graph.estimated_bytes()
            + self.named.values().map(GraphStore::estimated_bytes).sum::<usize>()
    }

    /// Force-merge all graphs' index deltas.
    pub fn optimize(&mut self) {
        self.default_graph.optimize();
        for store in self.named.values_mut() {
            store.optimize();
        }
    }

    /// Materialize the RDFS closure of the default graph in place
    /// (see [`crate::inference`]).
    pub fn materialize_rdfs(&mut self) -> crate::inference::InferenceStats {
        crate::inference::materialize_rdfs(&mut self.default_graph, &self.dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::IdPattern;

    fn term(s: &str) -> Term {
        Term::iri(format!("http://e/{s}"))
    }

    #[test]
    fn default_and_named_graphs_are_disjoint() {
        let mut ds = Dataset::new();
        ds.insert(None, &term("s"), &term("p"), &term("o"));
        let g1 = ds.intern_iri("http://e/g1");
        ds.insert(Some(g1), &term("s"), &term("p"), &term("o2"));

        assert_eq!(ds.default_graph().len(), 1);
        assert_eq!(ds.graph(Some(g1)).unwrap().len(), 1);
        assert_eq!(ds.total_triples(), 2);
        // Same dictionary: the subject id is shared.
        let s_id = ds.dict().get_id(&term("s")).unwrap();
        assert_eq!(ds.default_graph().scan(IdPattern::new(Some(s_id), None, None)).count(), 1);
        assert_eq!(
            ds.graph(Some(g1)).unwrap().scan(IdPattern::new(Some(s_id), None, None)).count(),
            1
        );
    }

    #[test]
    fn load_bulk_and_incremental_agree() {
        use sofos_rdf::{Triple, Graph};
        let mut g = Graph::new();
        for i in 0..20 {
            g.insert(Triple::new_unchecked(
                term(&format!("s{i}")),
                term("p"),
                Term::literal_int(i),
            ));
        }
        let mut ds1 = Dataset::new();
        ds1.load(None, &g);
        let mut ds2 = Dataset::new();
        for t in g.iter() {
            ds2.insert(None, &t.subject, &t.predicate, &t.object);
        }
        assert_eq!(ds1.default_graph().len(), 20);
        assert_eq!(ds2.default_graph().len(), 20);
    }

    #[test]
    fn drop_graph_removes_content() {
        let mut ds = Dataset::new();
        let g1 = ds.intern_iri("http://e/g1");
        ds.insert(Some(g1), &term("s"), &term("p"), &term("o"));
        assert!(ds.graph(Some(g1)).is_some());
        assert!(ds.drop_graph(g1));
        assert!(ds.graph(Some(g1)).is_none());
        assert!(!ds.drop_graph(g1), "second drop is a no-op");
        assert_eq!(ds.total_triples(), 0);
    }

    #[test]
    fn graph_names_are_sorted() {
        let mut ds = Dataset::new();
        let b = ds.intern_iri("http://e/b");
        let a = ds.intern_iri("http://e/a");
        ds.create_graph(b);
        ds.create_graph(a);
        let names = ds.graph_names();
        assert_eq!(names.len(), 2);
        assert!(names[0] < names[1]);
    }

    #[test]
    fn bytes_include_dictionary_and_indexes() {
        let mut ds = Dataset::new();
        let before = ds.estimated_bytes();
        ds.insert(None, &term("subject"), &term("predicate"), &term("object"));
        assert!(ds.estimated_bytes() > before);
    }

    #[test]
    fn missing_named_graph_is_none() {
        let mut ds = Dataset::new();
        let ghost = ds.intern_iri("http://e/ghost");
        assert!(ds.graph(Some(ghost)).is_none());
    }
}
