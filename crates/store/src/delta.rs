//! The transactional write path: [`Delta`] batches and [`ChangeSet`]s.
//!
//! SOFOS materializes views once over a frozen graph; turning the
//! reproduction into a *serving* system needs a principled update path.
//! A [`Delta`] is a batch of term-level insert/delete operations against
//! any graph of the dataset. [`crate::Dataset::apply`] pushes the batch
//! through the LSM-lite permutation indexes (inserts land in the B-tree
//! deltas, deletes become tombstones) and emits a [`ChangeSet`]: the *net*
//! triple changes per graph, with intra-batch insert/delete pairs
//! cancelled. The change set is what downstream consumers — above all the
//! `sofos-maintain` view-maintenance engine — use to propagate base-graph
//! updates into materialized views without re-evaluating them.

use crate::pattern::EncodedTriple;
use sofos_rdf::{FxHashMap, Term, TermId};

/// Insert or delete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Add the triple (no-op if already present).
    Insert,
    /// Remove the triple (no-op if absent).
    Delete,
}

/// One term-level operation of a [`Delta`].
#[derive(Debug, Clone)]
pub struct DeltaOp {
    /// Target graph: `None` is the default graph, `Some(iri)` a named one.
    pub graph: Option<Term>,
    /// Insert or delete.
    pub kind: OpKind,
    /// Subject, predicate, object.
    pub triple: [Term; 3],
}

/// A batch of updates, applied atomically-in-order by
/// [`crate::Dataset::apply`].
#[derive(Debug, Clone, Default)]
pub struct Delta {
    pub(crate) ops: Vec<DeltaOp>,
}

impl Delta {
    /// An empty batch.
    pub fn new() -> Delta {
        Delta::default()
    }

    /// Queue an insert into the default graph.
    pub fn insert(&mut self, s: Term, p: Term, o: Term) -> &mut Delta {
        self.push(None, OpKind::Insert, s, p, o)
    }

    /// Queue a delete from the default graph.
    pub fn delete(&mut self, s: Term, p: Term, o: Term) -> &mut Delta {
        self.push(None, OpKind::Delete, s, p, o)
    }

    /// Queue an insert into a named graph.
    pub fn insert_into(&mut self, graph: Term, s: Term, p: Term, o: Term) -> &mut Delta {
        self.push(Some(graph), OpKind::Insert, s, p, o)
    }

    /// Queue a delete from a named graph.
    pub fn delete_from(&mut self, graph: Term, s: Term, p: Term, o: Term) -> &mut Delta {
        self.push(Some(graph), OpKind::Delete, s, p, o)
    }

    fn push(&mut self, graph: Option<Term>, kind: OpKind, s: Term, p: Term, o: Term) -> &mut Delta {
        self.ops.push(DeltaOp {
            graph,
            kind,
            triple: [s, p, o],
        });
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterate the queued operations in application order.
    pub fn ops(&self) -> impl Iterator<Item = &DeltaOp> {
        self.ops.iter()
    }

    /// Append another batch's operations.
    pub fn extend(&mut self, other: Delta) {
        self.ops.extend(other.ops);
    }
}

/// Net triple changes of one graph after a batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphChanges {
    /// Triples that are present after the batch but were not before.
    pub inserted: Vec<EncodedTriple>,
    /// Triples that were present before the batch but are not after.
    pub removed: Vec<EncodedTriple>,
}

impl GraphChanges {
    /// True when the batch did not change this graph.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.removed.is_empty()
    }

    /// `inserted + removed` — the size of the net change.
    pub fn len(&self) -> usize {
        self.inserted.len() + self.removed.len()
    }

    /// Cancel intra-batch insert/delete pairs *by multiplicity*. The store
    /// deduplicates, so a triple's effective ops alternate insert/delete;
    /// the net effect is one insert when it gained presence, one removal
    /// when it lost it, nothing when the counts tie (state unchanged).
    fn coalesce(&mut self) {
        use std::collections::BTreeMap;
        let mut net: BTreeMap<EncodedTriple, i32> = BTreeMap::new();
        for t in &self.inserted {
            *net.entry(*t).or_insert(0) += 1;
        }
        for t in &self.removed {
            *net.entry(*t).or_insert(0) -= 1;
        }
        self.inserted.clear();
        self.removed.clear();
        for (t, n) in net {
            match n.cmp(&0) {
                std::cmp::Ordering::Greater => self.inserted.push(t),
                std::cmp::Ordering::Less => self.removed.push(t),
                std::cmp::Ordering::Equal => {}
            }
        }
    }
}

/// The net effect of one [`crate::Dataset::apply`] call, per graph.
#[derive(Debug, Clone, Default)]
pub struct ChangeSet {
    /// Changes to the default graph (the base graph `G`).
    pub default_graph: GraphChanges,
    /// Changes to named graphs, keyed by interned graph name.
    pub named: FxHashMap<TermId, GraphChanges>,
    /// Operations that were no-ops (inserting a present triple, deleting
    /// an absent one) — useful for update-stream accounting.
    pub noops: usize,
}

impl ChangeSet {
    /// True when the batch changed nothing.
    pub fn is_empty(&self) -> bool {
        self.default_graph.is_empty() && self.named.values().all(GraphChanges::is_empty)
    }

    /// Total net changes across all graphs.
    pub fn len(&self) -> usize {
        self.default_graph.len() + self.named.values().map(GraphChanges::len).sum::<usize>()
    }

    /// The changes of one graph (`None` = default graph).
    pub fn graph(&self, name: Option<TermId>) -> Option<&GraphChanges> {
        match name {
            None => Some(&self.default_graph),
            Some(id) => self.named.get(&id),
        }
    }

    pub(crate) fn graph_mut(&mut self, name: Option<TermId>) -> &mut GraphChanges {
        match name {
            None => &mut self.default_graph,
            Some(id) => self.named.entry(id).or_default(),
        }
    }

    pub(crate) fn coalesce(&mut self) {
        self.default_graph.coalesce();
        for changes in self.named.values_mut() {
            changes.coalesce();
        }
        self.named.retain(|_, c| !c.is_empty());
    }

    /// Fold another change set (from a *later* apply in the same batch)
    /// into this one. Appending the raw vectors and re-coalescing nets
    /// the two sequential change sets correctly, because coalescing is
    /// multiplicity arithmetic over the concatenated op streams.
    pub fn absorb(&mut self, other: &ChangeSet) {
        self.default_graph
            .inserted
            .extend_from_slice(&other.default_graph.inserted);
        self.default_graph
            .removed
            .extend_from_slice(&other.default_graph.removed);
        for (name, changes) in &other.named {
            let mine = self.graph_mut(Some(*name));
            mine.inserted.extend_from_slice(&changes.inserted);
            mine.removed.extend_from_slice(&changes.removed);
        }
        self.noops += other.noops;
        self.coalesce();
    }
}
