//! Epoch snapshots: overlap maintenance and query serving.
//!
//! The single-writer [`crate::Dataset`] stalls every reader for the length
//! of a maintenance batch. The [`EpochStore`] removes that stall with the
//! classic epoch-snapshot discipline:
//!
//! * **pin** — readers call [`EpochStore::pin`] and get an immutable
//!   [`Snapshot`] (an `Arc`): the full dataset — indexes *and*
//!   materialized view graphs — exactly as of one published epoch.
//!   Pinning is a read-lock acquire plus an `Arc` clone; it never waits
//!   for a writer's batch, only for the (nanosecond-scale) pointer swap
//!   of a publish.
//! * **publish** — the single writer mutates its private master dataset
//!   inside a [`WriteTxn`] and then publishes: the master is cloned into
//!   a fresh snapshot (cheap — index runs and the dictionary are
//!   `Arc`-shared, see [`crate::index::PermIndex`] and
//!   [`crate::Dataset`]) and swapped in atomically. Readers pinned to
//!   older epochs are undisturbed; new pins see the new epoch.
//! * **retire** — when the last reader of an old snapshot drops its
//!   `Arc`, the snapshot's memory is released and the store's retired
//!   counter ticks. Nothing is ever freed under a reader.
//!
//! Epochs are tracked per [`shard`](crate::shard::ShardRouter): a publish
//! bumps the global epoch and stamps it onto every shard the batch
//! touched, so consumers replaying history (the lazy staleness policy)
//! can tell which shards actually changed in the epochs they missed.
//!
//! Consistency guarantee (property-tested in `tests/epoch_concurrency.rs`):
//! because the writer is serialized and snapshots are complete immutable
//! values, every pinned snapshot equals the state after some *prefix* of
//! the committed transactions — readers never observe a half-applied
//! batch, regardless of how maintenance threads interleave inside the
//! transaction.

use crate::dataset::Dataset;
use crate::delta::{ChangeSet, Delta};
use crate::persist::Persister;
use crate::shard::ShardRouter;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// One published epoch: an immutable dataset plus epoch bookkeeping.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    /// Epoch of the last publish that touched each shard.
    shard_epochs: Vec<u64>,
    dataset: Dataset,
    /// Set at publish time. A prepared-but-never-published snapshot (the
    /// rollback path) must not count toward the retire accounting.
    published: std::sync::atomic::AtomicBool,
    retired: Arc<AtomicU64>,
}

impl Snapshot {
    /// The epoch this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Epoch of the last batch that touched shard `i`.
    pub fn shard_epoch(&self, shard: usize) -> u64 {
        self.shard_epochs[shard]
    }

    /// All per-shard epochs (index = shard).
    pub fn shard_epochs(&self) -> &[u64] {
        &self.shard_epochs
    }

    /// The immutable dataset as of this epoch. Evaluate queries against
    /// it exactly as against a live [`Dataset`].
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        // The last reader just left this epoch: it is now retired.
        // Never-published snapshots (aborted prepares) don't count —
        // they were never part of the published/retired ledger.
        if *self.published.get_mut() {
            self.retired.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A pinned snapshot: clone-cheap, releases its epoch on the last drop.
pub type PinnedSnapshot = Arc<Snapshot>;

/// The concurrent store: one writer, any number of snapshot readers.
#[derive(Debug)]
pub struct EpochStore {
    router: ShardRouter,
    /// The currently-published snapshot; replaced wholesale on publish.
    current: RwLock<PinnedSnapshot>,
    /// The writer's master dataset — the mutable truth. The mutex also
    /// serializes writers (the store is single-writer by design; write
    /// *parallelism* lives inside a transaction, per shard).
    master: Mutex<Dataset>,
    /// The epoch of the latest publish.
    epoch: AtomicU64,
    /// Snapshots published so far (including the initial one).
    published: AtomicU64,
    /// Snapshots whose last reader has dropped.
    retired: Arc<AtomicU64>,
    /// Durable side, when the store runs with a data directory. Publishes
    /// append + fsync a log record *before* the pointer swap, so the log
    /// always covers every state a reader could have observed.
    persist: Option<Arc<Persister>>,
}

impl EpochStore {
    /// Wrap a dataset, publishing it as epoch 0 across `shards` shards.
    pub fn new(dataset: Dataset, shards: usize) -> EpochStore {
        EpochStore::build(dataset, shards, 0, None)
    }

    /// Wrap a *recovered* dataset: the initial snapshot publishes at the
    /// recovered epoch (not 0) and every subsequent publish is durably
    /// logged through `persister`. The caller must already have written a
    /// baseline snapshot covering `dataset`'s dictionary (see
    /// [`Persister::baseline`]).
    pub fn recovered(
        dataset: Dataset,
        shards: usize,
        epoch: u64,
        persister: Arc<Persister>,
    ) -> EpochStore {
        EpochStore::build(dataset, shards, epoch, Some(persister))
    }

    fn build(
        dataset: Dataset,
        shards: usize,
        epoch: u64,
        persist: Option<Arc<Persister>>,
    ) -> EpochStore {
        let router = ShardRouter::new(shards);
        let retired = Arc::new(AtomicU64::new(0));
        let snapshot = Arc::new(Snapshot {
            epoch,
            shard_epochs: vec![epoch; shards],
            dataset: dataset.clone(),
            published: std::sync::atomic::AtomicBool::new(true),
            retired: Arc::clone(&retired),
        });
        EpochStore {
            router,
            current: RwLock::new(snapshot),
            master: Mutex::new(dataset),
            epoch: AtomicU64::new(epoch),
            published: AtomicU64::new(1),
            retired,
            persist,
        }
    }

    /// The durable side, when this store has one.
    pub fn persister(&self) -> Option<&Arc<Persister>> {
        self.persist.as_ref()
    }

    /// The shard router (shared with the maintenance engine so write
    /// splitting and epoch bookkeeping agree on subject placement).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.router.shards()
    }

    /// Pin the current epoch. The returned snapshot is immutable and
    /// remains valid (and allocated) until the last clone drops.
    pub fn pin(&self) -> PinnedSnapshot {
        Arc::clone(&self.current.read().expect("epoch lock poisoned"))
    }

    /// The latest published epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Snapshots published so far (including the initial epoch 0).
    pub fn published_snapshots(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Old snapshots fully released by their readers.
    pub fn retired_snapshots(&self) -> u64 {
        self.retired.load(Ordering::Relaxed)
    }

    /// Snapshots still alive (pinned by a reader, or current).
    pub fn live_snapshots(&self) -> u64 {
        self.published_snapshots() - self.retired_snapshots()
    }

    /// Begin a write transaction: exclusive access to the master dataset.
    /// Nothing becomes visible to readers until [`WriteTxn::publish`];
    /// dropping the transaction without publishing keeps the previous
    /// epoch current (see `WriteTxn` docs for the rollback contract).
    pub fn begin(&self) -> WriteTxn<'_> {
        WriteTxn {
            guard: self.master.lock().expect("writer lock poisoned"),
            store: self,
            touched: vec![false; self.router.shards()],
            any_touch: false,
            // Accumulate net changes only when a publish must log them —
            // `Durability::None` pays nothing on the write path.
            changes: self.persist.is_some().then(ChangeSet::default),
        }
    }

    /// Convenience: apply one delta transactionally and publish. Returns
    /// the net changes and the new epoch.
    pub fn apply(&self, delta: Delta) -> (ChangeSet, u64) {
        let mut txn = self.begin();
        let changes = txn.dataset().apply(delta);
        txn.touch_changes(&changes);
        let epoch = txn.publish();
        (changes, epoch)
    }

    /// Begin a *batched* write transaction: several deltas coalesced into
    /// one published epoch. One snapshot clone and one pointer swap pay
    /// for the whole batch, which is what makes the two-phase maintenance
    /// pipeline's phase 2 cheap — the per-publish master clone was the
    /// writer-throughput ceiling the ROADMAP tracked since PR 3.
    pub fn begin_batch(&self) -> BatchWriteTxn<'_> {
        BatchWriteTxn {
            txn: self.begin(),
            deltas: 0,
        }
    }
}

/// A write transaction that coalesces multiple deltas into one epoch.
///
/// Same visibility contract as [`WriteTxn`]: nothing is visible to
/// readers until [`BatchWriteTxn::publish`], and dropping without
/// publishing is the rollback path (the caller must undo its writes).
/// Unlike a sequence of [`EpochStore::apply`] calls, readers can never
/// observe a state *between* two deltas of the batch — the batch is one
/// atomic epoch.
pub struct BatchWriteTxn<'a> {
    txn: WriteTxn<'a>,
    deltas: usize,
}

impl<'a> BatchWriteTxn<'a> {
    /// The master dataset (mutable) — for callers that route deltas
    /// through the maintenance engine instead of
    /// [`BatchWriteTxn::apply`].
    pub fn dataset(&mut self) -> &mut Dataset {
        self.txn.dataset()
    }

    /// Read access to the master.
    pub fn dataset_ref(&self) -> &Dataset {
        self.txn.dataset_ref()
    }

    /// The store's shard router.
    pub fn router(&self) -> &ShardRouter {
        self.txn.router()
    }

    /// Apply one more delta into the batch; shard touches accumulate.
    pub fn apply(&mut self, delta: Delta) -> ChangeSet {
        let changes = self.txn.dataset().apply(delta);
        self.absorb(&changes);
        changes
    }

    /// Record the changes of a delta the caller applied against
    /// [`BatchWriteTxn::dataset`] directly (e.g. through
    /// `sofos_maintain::Maintainer::apply_sharded`).
    pub fn absorb(&mut self, changes: &ChangeSet) {
        self.txn.touch_changes(changes);
        self.deltas += 1;
    }

    /// Deltas coalesced into this batch so far.
    pub fn deltas(&self) -> usize {
        self.deltas
    }

    /// Build the batch's snapshot without making it visible (see
    /// [`WriteTxn::prepare`]).
    pub fn prepare(self) -> PreparedTxn<'a> {
        self.txn.prepare()
    }

    /// Publish the whole batch as one epoch and return its number.
    pub fn publish(self) -> u64 {
        self.txn.publish()
    }
}

/// An open write transaction on an [`EpochStore`].
///
/// Mutations go to the writer's master dataset and are invisible to
/// readers until [`WriteTxn::publish`] swaps in a new snapshot. Dropping
/// the transaction without publishing is the rollback path: readers keep
/// the previous epoch forever-unaware, but the *master* retains whatever
/// was mutated — a caller aborting mid-transaction must first undo its
/// partial writes (e.g. drop half-materialized view graphs) so the master
/// stays logically equal to the published state. Interned dictionary
/// terms are exempt: the dictionary is append-only and ghost terms are
/// invisible to every read path.
pub struct WriteTxn<'a> {
    guard: MutexGuard<'a, Dataset>,
    store: &'a EpochStore,
    touched: Vec<bool>,
    any_touch: bool,
    /// Net base changes accumulated for the epoch log; `Some` only when
    /// the store is durable. Every caller routes its change sets through
    /// [`WriteTxn::touch_changes`], which is what feeds this.
    changes: Option<ChangeSet>,
}

impl<'a> WriteTxn<'a> {
    /// The master dataset (mutable).
    pub fn dataset(&mut self) -> &mut Dataset {
        &mut self.guard
    }

    /// Read access to the master (e.g. for pre-apply scans).
    pub fn dataset_ref(&self) -> &Dataset {
        &self.guard
    }

    /// The store's shard router.
    pub fn router(&self) -> &ShardRouter {
        self.store.router()
    }

    /// Mark one shard as touched by this transaction.
    pub fn touch_shard(&mut self, shard: usize) {
        self.touched[shard] = true;
        self.any_touch = true;
    }

    /// Mark the shard owning `subject` as touched.
    pub fn touch_subject(&mut self, subject: sofos_rdf::TermId) {
        let shard = self.store.router.shard_of(subject);
        self.touch_shard(shard);
    }

    /// Mark every shard a change set touched. On a durable store this is
    /// also what accumulates the changes the publish will log — the two
    /// concerns share one call site because every correct caller must
    /// already report its change sets here for shard stamping.
    pub fn touch_changes(&mut self, changes: &ChangeSet) {
        for (shard, touched) in self
            .store
            .router
            .touched_shards(changes)
            .into_iter()
            .enumerate()
        {
            if touched {
                self.touch_shard(shard);
            }
        }
        if let Some(accumulated) = &mut self.changes {
            accumulated.absorb(changes);
        }
    }

    /// Publish the master as the next epoch and return its number.
    ///
    /// Per-shard epochs advance only for touched shards; a transaction
    /// that never called a `touch_*` method conservatively stamps every
    /// shard (correct, just less precise for lazy replay).
    ///
    /// Equivalent to `self.prepare().publish()`. Callers holding a
    /// latency-sensitive lock of their own should [`WriteTxn::prepare`]
    /// first — the snapshot clone happens there — and swap inside their
    /// critical section with the (pointer-swap-cheap) publish.
    pub fn publish(self) -> u64 {
        self.prepare().publish()
    }

    /// Upgrade into a [`BatchWriteTxn`] (same lock, same rollback
    /// contract) — for callers that opened a plain transaction before
    /// deciding to coalesce several deltas into it. Lock-order-safe where
    /// `begin_batch` would not be: the master lock is already held.
    pub fn batch(self) -> BatchWriteTxn<'a> {
        BatchWriteTxn {
            txn: self,
            deltas: 0,
        }
    }

    /// Build the next epoch's snapshot — the expensive part of a publish
    /// (cloning the master) — without making it visible yet. The returned
    /// [`PreparedTxn`] still holds the writer lock; its `publish` is a
    /// pointer swap.
    pub fn prepare(self) -> PreparedTxn<'a> {
        let epoch = self.store.epoch.load(Ordering::Acquire) + 1;
        // Single writer: the current snapshot's shard epochs cannot move
        // while this transaction holds the master lock.
        let mut shard_epochs = self
            .store
            .current
            .read()
            .expect("epoch lock poisoned")
            .shard_epochs
            .clone();
        for (shard, slot) in shard_epochs.iter_mut().enumerate() {
            if !self.any_touch || self.touched[shard] {
                *slot = epoch;
            }
        }
        let snapshot = Arc::new(Snapshot {
            epoch,
            shard_epochs,
            dataset: self.guard.clone(),
            published: std::sync::atomic::AtomicBool::new(false),
            retired: Arc::clone(&self.store.retired),
        });
        PreparedTxn {
            guard: self.guard,
            store: self.store,
            snapshot,
            epoch,
            changes: self.changes,
        }
    }
}

/// A write transaction whose next-epoch snapshot is fully built: all that
/// remains is the atomic pointer swap. Dropping without publishing keeps
/// the previous epoch current (same rollback contract as [`WriteTxn`]).
pub struct PreparedTxn<'a> {
    /// Held (not read) until publish so the store stays single-writer
    /// across prepare → publish.
    guard: MutexGuard<'a, Dataset>,
    store: &'a EpochStore,
    snapshot: Arc<Snapshot>,
    epoch: u64,
    /// Net base changes to log at publish (durable stores only).
    changes: Option<ChangeSet>,
}

impl PreparedTxn<'_> {
    /// The epoch number this publish will install.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Swap the prepared snapshot in (O(1); safe inside caller-held
    /// latency-sensitive critical sections).
    ///
    /// On a durable store the epoch-log record is appended and fsync'd
    /// *before* the swap — the write-ahead half of the recovery
    /// guarantee. A log I/O failure panics rather than publishing: the
    /// caller is about to acknowledge this batch, and acknowledging a
    /// write the log cannot cover would silently break the durability
    /// contract.
    pub fn publish(self) -> u64 {
        self.publish_with_catalog(None)
    }

    /// [`PreparedTxn::publish`], also recording a view-catalog change in
    /// the same log record (`None` carries the previous catalog forward).
    pub fn publish_with_catalog(self, catalog: Option<&[(u64, u64)]>) -> u64 {
        let mut snapshot_due = false;
        if let Some(persister) = &self.store.persist {
            let changes = self.changes.clone().unwrap_or_default();
            match persister.log_publish(self.epoch, self.guard.dict(), &changes, catalog) {
                Ok(due) => snapshot_due = due,
                Err(e) => panic!(
                    "durability failure: epoch {} cannot be logged, refusing to publish: {e}",
                    self.epoch
                ),
            }
        }
        let published = Arc::clone(&self.snapshot);
        self.snapshot
            .published
            .store(true, std::sync::atomic::Ordering::Release);
        {
            let mut current = self.store.current.write().expect("epoch lock poisoned");
            *current = self.snapshot;
        }
        self.store.epoch.store(self.epoch, Ordering::Release);
        self.store.published.fetch_add(1, Ordering::Relaxed);
        if snapshot_due {
            if let Some(persister) = &self.store.persist {
                // Snapshot from the just-published immutable clone, still
                // under the writer lock (`self.guard` lives to the end of
                // this call) so no later batch can be half-visible in it.
                // Failure is non-fatal: the log still covers everything,
                // recovery just replays a longer tail.
                if let Err(e) = persister.snapshot(published.dataset(), self.epoch) {
                    eprintln!("sofos-store: snapshot at epoch {} failed: {e}", self.epoch);
                }
            }
        }
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofos_rdf::Term;

    fn term(s: &str) -> Term {
        Term::iri(format!("http://e/{s}"))
    }

    fn delta_inserting(names: &[&str]) -> Delta {
        let mut delta = Delta::new();
        for n in names {
            delta.insert(term(n), term("p"), term("o"));
        }
        delta
    }

    #[test]
    fn pin_sees_published_state_only() {
        let store = EpochStore::new(Dataset::new(), 2);
        let before = store.pin();
        assert_eq!(before.epoch(), 0);
        assert!(before.dataset().default_graph().is_empty());

        let (changes, epoch) = store.apply(delta_inserting(&["s1"]));
        assert_eq!(epoch, 1);
        assert_eq!(changes.default_graph.inserted.len(), 1);

        // The old pin is frozen; a new pin sees the write.
        assert!(before.dataset().default_graph().is_empty());
        let after = store.pin();
        assert_eq!(after.epoch(), 1);
        assert_eq!(after.dataset().default_graph().len(), 1);
    }

    #[test]
    fn unpublished_transactions_stay_invisible() {
        let store = EpochStore::new(Dataset::new(), 1);
        {
            let mut txn = store.begin();
            txn.dataset()
                .insert(None, &term("s"), &term("p"), &term("o"));
            // Dropped without publish.
        }
        assert_eq!(store.epoch(), 0);
        assert!(store.pin().dataset().default_graph().is_empty());
        // The master retains the write: the next publish exposes it. This
        // is the documented contract — rollbacks must undo their writes.
        let mut txn = store.begin();
        txn.touch_shard(0);
        txn.publish();
        assert_eq!(store.pin().dataset().default_graph().len(), 1);
    }

    #[test]
    fn shard_epochs_advance_only_for_touched_shards() {
        let store = EpochStore::new(Dataset::new(), 4);
        let (changes, _) = store.apply(delta_inserting(&["a"]));
        let snap = store.pin();
        let touched = store.router().touched_shards(&changes);
        for (shard, &was_touched) in touched.iter().enumerate() {
            let expected = if was_touched { 1 } else { 0 };
            assert_eq!(snap.shard_epoch(shard), expected, "shard {shard}");
        }

        // A touch-free transaction stamps every shard.
        let txn = store.begin();
        txn.publish();
        let snap = store.pin();
        assert!(snap.shard_epochs().iter().all(|&e| e == 2));
    }

    #[test]
    fn aborted_prepares_do_not_corrupt_retire_accounting() {
        let store = EpochStore::new(Dataset::new(), 2);
        {
            let txn = store.begin();
            let prepared = txn.prepare();
            assert_eq!(prepared.epoch(), 1);
            // Dropped without publish: the built snapshot dies unseen.
        }
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.published_snapshots(), 1);
        assert_eq!(store.retired_snapshots(), 0, "aborts are not retirements");
        assert_eq!(store.live_snapshots(), 1);
        // Epochs only advance on publish: the next real one takes the
        // number the abort prepared but never consumed.
        let (_, epoch) = store.apply(delta_inserting(&["a"]));
        assert_eq!(epoch, 1);
        assert_eq!(store.live_snapshots(), 1, "epoch 0 retired cleanly");
    }

    #[test]
    fn snapshots_retire_when_last_reader_drops() {
        let store = EpochStore::new(Dataset::new(), 1);
        let pinned = store.pin();
        store.apply(delta_inserting(&["x"]));
        // Epoch 0 is still pinned; epoch 1 is current.
        assert_eq!(store.published_snapshots(), 2);
        assert_eq!(store.retired_snapshots(), 0);
        assert_eq!(store.live_snapshots(), 2);
        drop(pinned);
        assert_eq!(store.retired_snapshots(), 1);
        assert_eq!(store.live_snapshots(), 1);
    }

    #[test]
    fn batch_txn_coalesces_deltas_into_one_epoch() {
        let store = EpochStore::new(Dataset::new(), 2);
        let reader = store.pin();
        let mut batch = store.begin_batch();
        for i in 0..5 {
            batch.apply(delta_inserting(&[&format!("s{i}")]));
        }
        assert_eq!(batch.deltas(), 5);
        // Nothing visible until the single publish.
        assert_eq!(store.epoch(), 0);
        assert!(store.pin().dataset().default_graph().is_empty());
        let epoch = batch.publish();
        assert_eq!(epoch, 1, "five deltas, one epoch");
        assert_eq!(store.pin().dataset().default_graph().len(), 5);
        assert_eq!(store.published_snapshots(), 2);
        // The pre-batch pin never saw an intermediate state.
        assert!(reader.dataset().default_graph().is_empty());
    }

    #[test]
    fn batch_publish_shares_untouched_graph_chunks() {
        // The chunked-CoW named-graph map keeps snapshot clones O(1) in
        // the graph count: a batch that touches no named graph leaves
        // every chunk shared with the previous epoch.
        let mut dataset = Dataset::new();
        for i in 0..10 {
            let name = dataset.intern_iri(&format!("http://e/g{i}"));
            dataset.insert(Some(name), &term("s"), &term("p"), &term("o"));
        }
        let store = EpochStore::new(dataset, 2);
        let before = store.pin();
        store.apply(delta_inserting(&["only-default-graph"]));
        let after = store.pin();
        let map_before = before.dataset().named_graphs();
        let map_after = after.dataset().named_graphs();
        assert_eq!(map_after.len(), 10);
        assert_eq!(
            map_before.shared_chunks(map_after),
            map_after.chunk_count(),
            "a default-graph-only epoch re-clones no named graph"
        );
    }

    #[test]
    fn concurrent_readers_never_block_on_a_writer() {
        // Readers pin and scan while a writer publishes many epochs; every
        // observed triple count must equal some batch prefix (0..=N).
        let store = std::sync::Arc::new(EpochStore::new(Dataset::new(), 4));
        let batches = 50usize;
        std::thread::scope(|scope| {
            let reader_store = std::sync::Arc::clone(&store);
            let reader = scope.spawn(move || {
                let mut last = 0usize;
                for _ in 0..200 {
                    let snap = reader_store.pin();
                    let len = snap.dataset().default_graph().len();
                    assert!(len >= last, "epochs are monotonic");
                    assert!(len <= batches, "never more than all batches");
                    last = len;
                }
            });
            for i in 0..batches {
                store.apply(delta_inserting(&[&format!("s{i}")]));
            }
            reader.join().expect("reader ran clean");
        });
        assert_eq!(store.epoch(), batches as u64);
        assert_eq!(store.pin().dataset().default_graph().len(), batches);
    }
}
