//! A chunked copy-on-write map from graph name to [`GraphStore`].
//!
//! The epoch store clones the writer's master dataset once per published
//! epoch. With the named graphs in a plain `HashMap`, every clone walks
//! every entry and clones every [`GraphStore`] (cheap individually —
//! `Arc`-shared runs — but O(graph-count) in aggregate), so publish cost
//! grows with the catalog. The [`GraphMap`] makes the clone O(1) in the
//! graph count: names hash into a fixed number of *chunks*, each an
//! `Arc`-shared hash map, so
//!
//! * **clone** copies `CHUNKS` `Arc` pointers — independent of how many
//!   view graphs are materialized;
//! * **mutation** detaches only the touched chunk (`Arc::make_mut`),
//!   re-cloning just the graphs that happen to share it — untouched
//!   chunks stay shared with every snapshot;
//! * **reads** are one modulo plus one hash lookup, exactly as before.
//!
//! This is the "persistent named-graph map" escape hatch the ROADMAP
//! tracked since PR 3: a batch that patches two views re-clones (at most)
//! two chunks' worth of graph headers instead of the whole catalog.

use crate::index::GraphStore;
use sofos_rdf::{FxHashMap, TermId};
use std::sync::Arc;
use std::sync::OnceLock;

/// Chunk fan-out. Small enough that an empty map is a handful of pointer
/// copies, large enough that typical catalogs (tens of views) rarely
/// co-locate two hot graphs in one chunk.
const CHUNKS: usize = 32;

/// The shared all-empty chunk every fresh map points at — a new dataset
/// allocates no per-chunk tables until a named graph actually exists.
fn empty_chunk() -> &'static Arc<FxHashMap<TermId, GraphStore>> {
    static EMPTY: OnceLock<Arc<FxHashMap<TermId, GraphStore>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(FxHashMap::default()))
}

/// Chunked-CoW name → graph map (see module docs).
#[derive(Debug, Clone)]
pub struct GraphMap {
    chunks: Vec<Arc<FxHashMap<TermId, GraphStore>>>,
    /// Total graphs across chunks (kept so `len` is O(1)).
    len: usize,
}

impl Default for GraphMap {
    fn default() -> GraphMap {
        GraphMap {
            chunks: vec![Arc::clone(empty_chunk()); CHUNKS],
            len: 0,
        }
    }
}

impl GraphMap {
    #[inline]
    fn chunk_of(name: TermId) -> usize {
        name.0 as usize % CHUNKS
    }

    /// Number of named graphs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no named graph exists.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Look up a graph (read-only; never detaches a chunk).
    pub fn get(&self, name: TermId) -> Option<&GraphStore> {
        self.chunks[Self::chunk_of(name)].get(&name)
    }

    /// Mutable lookup. Detaches the owning chunk only when the graph
    /// exists — probing for an absent name never copies anything.
    pub fn get_mut(&mut self, name: TermId) -> Option<&mut GraphStore> {
        let chunk = &mut self.chunks[Self::chunk_of(name)];
        if !chunk.contains_key(&name) {
            return None;
        }
        Arc::make_mut(chunk).get_mut(&name)
    }

    /// The graph under `name`, created empty if absent.
    pub fn entry_or_default(&mut self, name: TermId) -> &mut GraphStore {
        let chunk = &mut self.chunks[Self::chunk_of(name)];
        if !chunk.contains_key(&name) {
            self.len += 1;
        }
        Arc::make_mut(chunk).entry(name).or_default()
    }

    /// Remove a graph; returns `true` if it existed. Absent names never
    /// detach a chunk.
    pub fn remove(&mut self, name: TermId) -> bool {
        let chunk = &mut self.chunks[Self::chunk_of(name)];
        if !chunk.contains_key(&name) {
            return false;
        }
        Arc::make_mut(chunk).remove(&name);
        self.len -= 1;
        true
    }

    /// All graph names, sorted (deterministic iteration order).
    pub fn names_sorted(&self) -> Vec<TermId> {
        let mut names: Vec<TermId> = self.chunks.iter().flat_map(|c| c.keys().copied()).collect();
        names.sort_unstable();
        names
    }

    /// Iterate all graphs (arbitrary order).
    pub fn values(&self) -> impl Iterator<Item = &GraphStore> {
        self.chunks.iter().flat_map(|c| c.values())
    }

    /// Mutably iterate all graphs. Detaches every non-empty chunk — meant
    /// for rare whole-dataset passes (`Dataset::optimize`), not the write
    /// path.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut GraphStore> {
        self.chunks
            .iter_mut()
            .filter(|c| !c.is_empty())
            .flat_map(|c| Arc::make_mut(c).values_mut())
    }

    /// How many chunks this map still shares with `other` — the measure
    /// of how cheap the divergence between two clones was.
    pub fn shared_chunks(&self, other: &GraphMap) -> usize {
        self.chunks
            .iter()
            .zip(&other.chunks)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Total chunk fan-out (the denominator for [`GraphMap::shared_chunks`]).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> TermId {
        TermId(n)
    }

    #[test]
    fn empty_maps_share_the_static_chunk() {
        let a = GraphMap::default();
        let b = GraphMap::default();
        assert_eq!(a.shared_chunks(&b), a.chunk_count());
        assert!(a.is_empty());
        assert_eq!(a.names_sorted(), Vec::<TermId>::new());
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut map = GraphMap::default();
        map.entry_or_default(id(7)).insert([id(1), id(2), id(3)]);
        assert_eq!(map.len(), 1);
        assert_eq!(map.get(id(7)).unwrap().len(), 1);
        assert!(map.get(id(8)).is_none());
        assert!(map.get_mut(id(8)).is_none());
        assert!(map.remove(id(7)));
        assert!(!map.remove(id(7)), "second remove is a no-op");
        assert!(map.is_empty());
    }

    #[test]
    fn clone_shares_untouched_chunks() {
        let mut map = GraphMap::default();
        // Two graphs in (very likely) different chunks.
        map.entry_or_default(id(1)).insert([id(1), id(2), id(3)]);
        map.entry_or_default(id(2)).insert([id(4), id(5), id(6)]);
        let snapshot = map.clone();
        assert_eq!(snapshot.shared_chunks(&map), map.chunk_count());

        // Mutating one graph detaches exactly its chunk.
        map.entry_or_default(id(1)).insert([id(7), id(8), id(9)]);
        assert_eq!(snapshot.shared_chunks(&map), map.chunk_count() - 1);
        // The snapshot is frozen.
        assert_eq!(snapshot.get(id(1)).unwrap().len(), 1);
        assert_eq!(map.get(id(1)).unwrap().len(), 2);
        assert_eq!(map.get(id(2)).unwrap().len(), 1);
    }

    #[test]
    fn probing_absent_names_never_detaches() {
        let mut map = GraphMap::default();
        map.entry_or_default(id(3)).insert([id(1), id(1), id(1)]);
        let snapshot = map.clone();
        assert!(map.get_mut(id(100)).is_none());
        assert!(!map.remove(id(101)));
        assert_eq!(snapshot.shared_chunks(&map), map.chunk_count());
    }

    #[test]
    fn names_are_sorted_across_chunks() {
        let mut map = GraphMap::default();
        for n in [90u32, 3, 41, 17, 64] {
            map.entry_or_default(id(n));
        }
        let names = map.names_sorted();
        assert_eq!(names.len(), 5);
        assert!(names.windows(2).all(|w| w[0] < w[1]));
    }
}
