//! Permutation indexes and the per-graph store.
//!
//! Each [`PermIndex`] keeps the graph's triples in one of three sort orders
//! (SPO, POS, OSP) as an LSM-lite pair: a large sorted *run* (`Vec`) plus a
//! small *delta* (`BTreeSet`) absorbing inserts. When the delta outgrows a
//! threshold it is merged into the run. Prefix range scans over both halves
//! are merged on the fly, so readers always see one sorted stream.
//!
//! The three orders cover all eight triple-pattern shapes exactly (no
//! residual filtering):
//!
//! | bound      | index | prefix      |
//! |------------|-------|-------------|
//! | s p o      | SPO   | `[s, p, o]` |
//! | s p ?      | SPO   | `[s, p]`    |
//! | s ? ?      | SPO   | `[s]`       |
//! | ? p o      | POS   | `[p, o]`    |
//! | ? p ?      | POS   | `[p]`       |
//! | ? ? o      | OSP   | `[o]`       |
//! | s ? o      | OSP   | `[o, s]`    |
//! | ? ? ?      | SPO   | `[]`        |

use crate::bitmap::Bitmap;
use crate::pattern::{EncodedTriple, IdPattern};
use crate::posting::{PostingLists, PostingStats};
use sofos_rdf::TermId;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Delta is merged into the run once it exceeds
/// `max(MERGE_MIN, run.len() / MERGE_RATIO)` entries.
const MERGE_MIN: usize = 4096;
const MERGE_RATIO: usize = 8;

/// The three triple orderings kept by a [`GraphStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Perm {
    /// Subject, predicate, object.
    Spo,
    /// Predicate, object, subject.
    Pos,
    /// Object, subject, predicate.
    Osp,
}

impl Perm {
    /// Reorder an `(s,p,o)` triple into this permutation's key order.
    #[inline]
    pub fn permute(self, t: EncodedTriple) -> EncodedTriple {
        match self {
            Perm::Spo => t,
            Perm::Pos => [t[1], t[2], t[0]],
            Perm::Osp => [t[2], t[0], t[1]],
        }
    }

    /// Restore an `(s,p,o)` triple from this permutation's key order.
    #[inline]
    pub fn invert(self, k: EncodedTriple) -> EncodedTriple {
        match self {
            Perm::Spo => k,
            Perm::Pos => [k[2], k[0], k[1]],
            Perm::Osp => [k[1], k[2], k[0]],
        }
    }
}

/// One sort order over the graph's triples: sorted run + B-tree delta,
/// plus a tombstone set masking deletions from the run until the next
/// merge folds them away (classic LSM delete handling).
///
/// The run is behind an [`Arc`] so cloning an index — the epoch-snapshot
/// publish path ([`crate::epoch::EpochStore`]) clones every graph per
/// batch — shares the large sorted body and copies only the small delta
/// and tombstone sets. Mutation never writes through the `Arc`: inserts
/// and removes land in the owned B-trees, and a merge *replaces* the run
/// wholesale, so pinned snapshots keep reading the run they captured.
#[derive(Debug, Clone)]
pub struct PermIndex {
    perm: Perm,
    run: Arc<Vec<EncodedTriple>>,
    delta: BTreeSet<EncodedTriple>,
    tombstones: BTreeSet<EncodedTriple>,
}

impl PermIndex {
    /// An empty index with the given ordering.
    pub fn new(perm: Perm) -> PermIndex {
        PermIndex {
            perm,
            run: Arc::new(Vec::new()),
            delta: BTreeSet::new(),
            tombstones: BTreeSet::new(),
        }
    }

    /// This index's ordering.
    pub fn perm(&self) -> Perm {
        self.perm
    }

    /// Insert an `(s,p,o)` triple. The caller (the [`GraphStore`]) is
    /// responsible for cross-structure duplicate checks.
    fn insert(&mut self, triple: EncodedTriple) {
        let key = self.perm.permute(triple);
        self.tombstones.remove(&key);
        if self.run.binary_search(&key).is_err() {
            self.delta.insert(key);
        }
        if self.delta.len() >= MERGE_MIN.max(self.run.len() / MERGE_RATIO) {
            self.merge();
        }
    }

    /// Remove an `(s,p,o)` triple: drop it from the delta, or tombstone it
    /// when it lives in the run.
    fn remove(&mut self, triple: &EncodedTriple) {
        let key = self.perm.permute(*triple);
        if !self.delta.remove(&key) && self.run.binary_search(&key).is_ok() {
            self.tombstones.insert(key);
        }
    }

    /// Membership test for an `(s,p,o)` triple.
    fn contains(&self, triple: &EncodedTriple) -> bool {
        let key = self.perm.permute(*triple);
        if self.tombstones.contains(&key) {
            return false;
        }
        self.delta.contains(&key) || self.run.binary_search(&key).is_ok()
    }

    /// Fold the delta into the run and drop tombstoned entries
    /// (single merge pass, preserves order).
    pub fn merge(&mut self) {
        if self.delta.is_empty() && self.tombstones.is_empty() {
            return;
        }
        let delta = std::mem::take(&mut self.delta);
        let tombstones = std::mem::take(&mut self.tombstones);
        let mut merged = Vec::with_capacity(self.run.len() + delta.len());
        // Pinned snapshots may share the run: merge reads it by reference
        // and installs a fresh `Arc`, leaving theirs untouched.
        let mut run_iter = self.run.iter().copied().peekable();
        let mut delta_iter = delta.into_iter().peekable();
        loop {
            let next = match (run_iter.peek(), delta_iter.peek()) {
                (Some(a), Some(b)) => {
                    if a <= b {
                        run_iter.next().expect("peeked")
                    } else {
                        delta_iter.next().expect("peeked")
                    }
                }
                (Some(_), None) => run_iter.next().expect("peeked"),
                (None, Some(_)) => delta_iter.next().expect("peeked"),
                (None, None) => break,
            };
            if !tombstones.contains(&next) {
                merged.push(next);
            }
        }
        self.run = Arc::new(merged);
    }

    /// Bulk-build from already-deduplicated triples (generator fast path).
    fn bulk_load(&mut self, triples: &[EncodedTriple]) {
        let mut keys: Vec<EncodedTriple> = triples.iter().map(|t| self.perm.permute(*t)).collect();
        keys.sort_unstable();
        self.run = Arc::new(keys);
        self.delta.clear();
        self.tombstones.clear();
    }

    /// The `(low, high)` key bounds matching a prefix of bound values.
    fn prefix_bounds(prefix: &[TermId]) -> (EncodedTriple, EncodedTriple) {
        let mut low = [TermId(0); 3];
        let mut high = [TermId(u32::MAX); 3];
        for (i, &v) in prefix.iter().enumerate() {
            low[i] = v;
            high[i] = v;
        }
        (low, high)
    }

    /// Scan all triples whose permuted key starts with `prefix`, yielding
    /// `(s,p,o)` triples in permuted-key order.
    pub fn scan_prefix(&self, prefix: &[TermId]) -> PrefixScan<'_> {
        debug_assert!(prefix.len() <= 3);
        let (low, high) = Self::prefix_bounds(prefix);
        let start = self.run.partition_point(|k| *k < low);
        let end = self.run.partition_point(|k| *k <= high);
        PrefixScan {
            perm: self.perm,
            run: &self.run[start..end],
            run_pos: 0,
            delta: self.delta.range(low..=high),
            delta_next: None,
            tombstones: &self.tombstones,
        }
    }

    /// Number of triples whose key starts with `prefix` (without yielding).
    pub fn count_prefix(&self, prefix: &[TermId]) -> usize {
        let (low, high) = Self::prefix_bounds(prefix);
        let start = self.run.partition_point(|k| *k < low);
        let end = self.run.partition_point(|k| *k <= high);
        (end - start) + self.delta.range(low..=high).count()
            - self.tombstones.range(low..=high).count()
    }

    /// Heap footprint estimate: 12 bytes per run entry, ~48 per delta /
    /// tombstone entry (B-tree node overhead).
    pub fn estimated_bytes(&self) -> usize {
        self.run.len() * 12 + (self.delta.len() + self.tombstones.len()) * 48
    }
}

/// Sorted merge of the run slice and the delta range for one prefix scan.
pub struct PrefixScan<'a> {
    perm: Perm,
    run: &'a [EncodedTriple],
    run_pos: usize,
    delta: std::collections::btree_set::Range<'a, EncodedTriple>,
    delta_next: Option<&'a EncodedTriple>,
    tombstones: &'a BTreeSet<EncodedTriple>,
}

impl<'a> Iterator for PrefixScan<'a> {
    type Item = EncodedTriple;

    fn next(&mut self) -> Option<EncodedTriple> {
        loop {
            if self.delta_next.is_none() {
                self.delta_next = self.delta.next();
            }
            let run_head = self.run.get(self.run_pos);
            let key = match (run_head, self.delta_next) {
                (Some(r), Some(d)) => {
                    if r <= d {
                        self.run_pos += 1;
                        *r
                    } else {
                        self.delta_next = None;
                        *d
                    }
                }
                (Some(r), None) => {
                    self.run_pos += 1;
                    *r
                }
                (None, Some(d)) => {
                    self.delta_next = None;
                    *d
                }
                (None, None) => return None,
            };
            if !self.tombstones.contains(&key) {
                return Some(self.perm.invert(key));
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let lower = self.run.len() - self.run_pos;
        (lower, None)
    }
}

/// One RDF graph: three permutation indexes, posting lists, and a triple
/// count.
#[derive(Debug, Clone)]
pub struct GraphStore {
    spo: PermIndex,
    pos: PermIndex,
    osp: PermIndex,
    /// Bitmap posting lists (per-predicate subjects, registered
    /// per-value subjects), maintained by every mutation below — see
    /// [`crate::posting`].
    posting: PostingLists,
    len: usize,
}

impl Default for GraphStore {
    fn default() -> Self {
        GraphStore::new()
    }
}

impl GraphStore {
    /// An empty graph store.
    pub fn new() -> GraphStore {
        GraphStore {
            spo: PermIndex::new(Perm::Spo),
            pos: PermIndex::new(Perm::Pos),
            osp: PermIndex::new(Perm::Osp),
            posting: PostingLists::default(),
            len: 0,
        }
    }

    /// Insert an encoded triple; returns `true` if it was new.
    pub fn insert(&mut self, triple: EncodedTriple) -> bool {
        if self.spo.contains(&triple) {
            return false;
        }
        self.spo.insert(triple);
        self.pos.insert(triple);
        self.osp.insert(triple);
        self.posting.note_insert(&triple);
        self.len += 1;
        true
    }

    /// Remove a triple; returns `true` if it was present.
    pub fn remove(&mut self, triple: &EncodedTriple) -> bool {
        if !self.spo.contains(triple) {
            return false;
        }
        self.spo.remove(triple);
        self.pos.remove(triple);
        self.osp.remove(triple);
        // The subject leaves the predicate's posting bitmap only when no
        // (s, p, *) triple survives — multi-valued predicates keep it.
        let last = self.spo.count_prefix(&triple[..2]) == 0;
        self.posting.note_remove(triple, last);
        self.len -= 1;
        true
    }

    /// Replace the contents from a batch (deduplicates; fastest load path).
    pub fn bulk_load(&mut self, mut triples: Vec<EncodedTriple>) {
        triples.sort_unstable();
        triples.dedup();
        self.len = triples.len();
        self.spo.bulk_load(&triples);
        self.pos.bulk_load(&triples);
        self.osp.bulk_load(&triples);
        self.posting.rebuild(&triples);
    }

    /// Membership test.
    pub fn contains(&self, triple: &EncodedTriple) -> bool {
        self.spo.contains(triple)
    }

    /// Number of triples (the paper's `|G_Vi|` for cost model #2).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Force-merge all deltas (called after bulk insert phases).
    pub fn optimize(&mut self) {
        self.spo.merge();
        self.pos.merge();
        self.osp.merge();
    }

    /// Scan triples matching an [`IdPattern`], dispatching to the index
    /// that turns the bound positions into a key prefix.
    pub fn scan(&self, pattern: IdPattern) -> PrefixScan<'_> {
        match (pattern.s, pattern.p, pattern.o) {
            (Some(s), Some(p), Some(o)) => self.spo.scan_prefix(&[s, p, o]),
            (Some(s), Some(p), None) => self.spo.scan_prefix(&[s, p]),
            (Some(s), None, Some(o)) => self.osp.scan_prefix(&[o, s]),
            (Some(s), None, None) => self.spo.scan_prefix(&[s]),
            (None, Some(p), Some(o)) => self.pos.scan_prefix(&[p, o]),
            (None, Some(p), None) => self.pos.scan_prefix(&[p]),
            (None, None, Some(o)) => self.osp.scan_prefix(&[o]),
            (None, None, None) => self.spo.scan_prefix(&[]),
        }
    }

    /// Exact number of matches for a pattern, computed from index ranges
    /// without materializing results. Pure-predicate shapes short-circuit
    /// through the posting lists: `(?, p, ?)` reads the maintained triple
    /// count and `(?, p, o)` on a registered predicate reads a bitmap
    /// cardinality — both O(1) after the hash lookup, no range scan.
    pub fn count(&self, pattern: IdPattern) -> usize {
        match (pattern.s, pattern.p, pattern.o) {
            (Some(s), Some(p), Some(o)) => self.spo.count_prefix(&[s, p, o]),
            (Some(s), Some(p), None) => self.spo.count_prefix(&[s, p]),
            (Some(s), None, Some(o)) => self.osp.count_prefix(&[o, s]),
            (Some(s), None, None) => self.spo.count_prefix(&[s]),
            (None, Some(p), Some(o)) => {
                if self.posting.is_registered(p) {
                    // (s, p, o) is unique, so the subjects-with-value
                    // bitmap's cardinality IS the triple count.
                    self.posting
                        .value_subjects(p, o)
                        .map_or(0, |bm| bm.cardinality() as usize)
                } else {
                    self.pos.count_prefix(&[p, o])
                }
            }
            (None, Some(p), None) => self.posting.triples_for(p) as usize,
            (None, None, Some(o)) => self.osp.count_prefix(&[o]),
            (None, None, None) => self.len,
        }
    }

    /// Iterate every triple in SPO order.
    pub fn iter(&self) -> PrefixScan<'_> {
        self.scan(IdPattern::ANY)
    }

    /// Heap footprint estimate across the three indexes plus the posting
    /// lists (index side of the storage-amplification accounting).
    pub fn estimated_bytes(&self) -> usize {
        self.spo.estimated_bytes()
            + self.pos.estimated_bytes()
            + self.osp.estimated_bytes()
            + self.posting.stats().bytes
    }

    // --- posting-list surface -------------------------------------------

    /// Register predicates for per-(predicate, value) posting lists,
    /// backfilling from existing triples. Idempotent; already-registered
    /// predicates cost one hash probe.
    pub fn register_value_preds(&mut self, preds: &[TermId]) {
        for pred in self.posting.register(preds) {
            let pairs: Vec<(TermId, TermId)> = self
                .pos
                .scan_prefix(&[pred])
                .map(|[s, _, o]| (s, o))
                .collect();
            self.posting.backfill(pred, pairs.into_iter());
        }
    }

    /// Whether `pred` is registered for per-value posting lists.
    pub fn has_value_pred(&self, pred: TermId) -> bool {
        self.posting.is_registered(pred)
    }

    /// Subjects with at least one triple under `pred` (always maintained).
    pub fn pred_subjects(&self, pred: TermId) -> Option<&Bitmap> {
        self.posting.subjects(pred)
    }

    /// Subjects holding object `value` under *registered* `pred` —
    /// `None` means no subject does (or the predicate is unregistered;
    /// check [`GraphStore::has_value_pred`] first).
    pub fn value_subjects(&self, pred: TermId, value: TermId) -> Option<&Bitmap> {
        self.posting.value_subjects(pred, value)
    }

    /// Posting-list observability figures for this graph.
    pub fn posting_stats(&self) -> PostingStats {
        self.posting.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> EncodedTriple {
        [TermId(s), TermId(p), TermId(o)]
    }

    #[test]
    fn permutations_invert() {
        let triple = t(1, 2, 3);
        for perm in [Perm::Spo, Perm::Pos, Perm::Osp] {
            assert_eq!(perm.invert(perm.permute(triple)), triple);
        }
        assert_eq!(Perm::Pos.permute(t(1, 2, 3)), t(2, 3, 1));
        assert_eq!(Perm::Osp.permute(t(1, 2, 3)), t(3, 1, 2));
    }

    #[test]
    fn insert_and_contains() {
        let mut g = GraphStore::new();
        assert!(g.insert(t(1, 2, 3)));
        assert!(!g.insert(t(1, 2, 3)), "duplicate rejected");
        assert!(g.contains(&t(1, 2, 3)));
        assert!(!g.contains(&t(1, 2, 4)));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn all_eight_pattern_shapes() {
        let mut g = GraphStore::new();
        for (s, p, o) in [
            (1, 10, 100),
            (1, 10, 101),
            (1, 11, 100),
            (2, 10, 100),
            (2, 11, 102),
        ] {
            g.insert(t(s, p, o));
        }
        let pat = |s: Option<u32>, p: Option<u32>, o: Option<u32>| IdPattern {
            s: s.map(TermId),
            p: p.map(TermId),
            o: o.map(TermId),
        };
        let collect = |p: IdPattern| -> Vec<EncodedTriple> { g.scan(p).collect() };

        assert_eq!(collect(pat(None, None, None)).len(), 5);
        assert_eq!(collect(pat(Some(1), None, None)).len(), 3);
        assert_eq!(collect(pat(None, Some(10), None)).len(), 3);
        assert_eq!(collect(pat(None, None, Some(100))).len(), 3);
        assert_eq!(collect(pat(Some(1), Some(10), None)).len(), 2);
        assert_eq!(collect(pat(Some(1), None, Some(100))).len(), 2);
        assert_eq!(collect(pat(None, Some(10), Some(100))).len(), 2);
        assert_eq!(collect(pat(Some(2), Some(11), Some(102))).len(), 1);
        assert_eq!(collect(pat(Some(9), None, None)).len(), 0);
    }

    #[test]
    fn counts_match_scans() {
        let mut g = GraphStore::new();
        for i in 0..100u32 {
            g.insert(t(i % 7, i % 3, i));
        }
        for s in [None, Some(1u32)] {
            for p in [None, Some(2u32)] {
                for o in [None, Some(9u32)] {
                    let pat = IdPattern {
                        s: s.map(TermId),
                        p: p.map(TermId),
                        o: o.map(TermId),
                    };
                    assert_eq!(g.count(pat), g.scan(pat).count(), "pattern {pat:?}");
                }
            }
        }
    }

    #[test]
    fn scan_yields_sorted_unique_triples() {
        let mut g = GraphStore::new();
        // Insert in reverse to exercise delta ordering.
        for i in (0..50u32).rev() {
            g.insert(t(i, 1, 2));
        }
        let all: Vec<EncodedTriple> = g.iter().collect();
        assert_eq!(all.len(), 50);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(all, sorted, "scan output is sorted and duplicate-free");
    }

    #[test]
    fn merge_preserves_content() {
        let mut idx = PermIndex::new(Perm::Spo);
        for i in 0..10 {
            idx.insert(t(i, 0, 0));
        }
        idx.merge();
        for i in 10..20 {
            idx.insert(t(i, 0, 0));
        }
        let seen: Vec<EncodedTriple> = idx.scan_prefix(&[]).collect();
        assert_eq!(seen.len(), 20);
        for i in 0..20 {
            assert!(idx.contains(&t(i, 0, 0)));
        }
    }

    #[test]
    fn bulk_load_deduplicates() {
        let mut g = GraphStore::new();
        g.bulk_load(vec![t(1, 2, 3), t(1, 2, 3), t(4, 5, 6)]);
        assert_eq!(g.len(), 2);
        assert!(g.contains(&t(1, 2, 3)));
        assert!(g.contains(&t(4, 5, 6)));
        // Inserts still work after a bulk load.
        assert!(g.insert(t(7, 8, 9)));
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn optimize_is_transparent() {
        let mut g = GraphStore::new();
        for i in 0..100u32 {
            g.insert(t(i, i % 5, i % 11));
        }
        let before: Vec<EncodedTriple> = g.iter().collect();
        g.optimize();
        let after: Vec<EncodedTriple> = g.iter().collect();
        assert_eq!(before, after);
    }

    #[test]
    fn remove_from_delta_and_run() {
        let mut g = GraphStore::new();
        // Goes to the delta.
        g.insert(t(1, 2, 3));
        assert!(g.remove(&t(1, 2, 3)));
        assert!(!g.contains(&t(1, 2, 3)));
        assert_eq!(g.len(), 0);
        assert!(!g.remove(&t(1, 2, 3)), "double remove is a no-op");

        // Goes to the run, then tombstoned.
        g.insert(t(4, 5, 6));
        g.optimize();
        assert!(g.remove(&t(4, 5, 6)));
        assert!(!g.contains(&t(4, 5, 6)));
        assert_eq!(g.scan(IdPattern::ANY).count(), 0);
        assert_eq!(g.count(IdPattern::ANY), 0);

        // Merge folds the tombstone away; reinsertion works.
        g.optimize();
        assert!(g.insert(t(4, 5, 6)));
        assert!(g.contains(&t(4, 5, 6)));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn reinsert_after_tombstone_without_merge() {
        let mut g = GraphStore::new();
        g.insert(t(1, 1, 1));
        g.optimize(); // into the run
        g.remove(&t(1, 1, 1)); // tombstone
        assert!(g.insert(t(1, 1, 1)), "reinsert clears the tombstone");
        assert!(g.contains(&t(1, 1, 1)));
        assert_eq!(g.scan(IdPattern::ANY).count(), 1);
        assert_eq!(g.count(IdPattern::ANY), 1);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn bytes_scale_with_size() {
        let mut g = GraphStore::new();
        let empty = g.estimated_bytes();
        for i in 0..1000u32 {
            g.insert(t(i, 0, 0));
        }
        assert!(g.estimated_bytes() > empty);
    }

    #[test]
    fn posting_lists_track_subjects_per_predicate() {
        let mut g = GraphStore::new();
        g.insert(t(1, 10, 100));
        g.insert(t(1, 10, 101)); // multi-valued leg
        g.insert(t(2, 10, 100));
        g.insert(t(3, 11, 100));

        let subjects = g.pred_subjects(TermId(10)).unwrap();
        assert_eq!(subjects.cardinality(), 2);
        assert!(subjects.contains(1) && subjects.contains(2));
        assert!(g.pred_subjects(TermId(12)).is_none());

        // Removing one of subject 1's two values keeps it listed; removing
        // the last drops it.
        g.remove(&t(1, 10, 100));
        assert!(g.pred_subjects(TermId(10)).unwrap().contains(1));
        g.remove(&t(1, 10, 101));
        assert!(!g.pred_subjects(TermId(10)).unwrap().contains(1));
    }

    #[test]
    fn value_pred_registration_backfills_and_tracks() {
        let mut g = GraphStore::new();
        g.insert(t(1, 10, 100));
        g.insert(t(2, 10, 100));
        assert!(!g.has_value_pred(TermId(10)));
        assert!(g.value_subjects(TermId(10), TermId(100)).is_none());

        g.register_value_preds(&[TermId(10)]);
        assert!(g.has_value_pred(TermId(10)));
        let bm = g.value_subjects(TermId(10), TermId(100)).unwrap();
        assert!(
            bm.contains(1) && bm.contains(2),
            "backfill covers old triples"
        );

        g.insert(t(3, 10, 100));
        g.remove(&t(1, 10, 100));
        let bm = g.value_subjects(TermId(10), TermId(100)).unwrap();
        assert!(!bm.contains(1) && bm.contains(3), "incremental upkeep");

        // The registered count fast path stays exact.
        let pat = IdPattern::new(None, Some(TermId(10)), Some(TermId(100)));
        assert_eq!(g.count(pat), g.scan(pat).count());
    }

    #[test]
    fn posting_bytes_are_included_in_estimate() {
        let mut g = GraphStore::new();
        for i in 0..100u32 {
            g.insert(t(i, 1, i % 5));
        }
        let without_values = g.estimated_bytes();
        g.register_value_preds(&[TermId(1)]);
        assert!(g.posting_stats().posting_lists > 1);
        assert!(
            g.estimated_bytes() > without_values,
            "value posting lists show up in the memory estimate"
        );
    }

    #[test]
    fn bulk_load_rebuilds_posting_lists() {
        let mut g = GraphStore::new();
        g.register_value_preds(&[TermId(10)]);
        g.insert(t(9, 9, 9));
        g.bulk_load(vec![t(1, 10, 100), t(2, 10, 101)]);
        assert!(g.pred_subjects(TermId(9)).is_none(), "old lists are gone");
        assert_eq!(g.pred_subjects(TermId(10)).unwrap().cardinality(), 2);
        assert!(
            g.value_subjects(TermId(10), TermId(101))
                .unwrap()
                .contains(2),
            "registration survives the bulk load"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_triple() -> impl Strategy<Value = EncodedTriple> {
        (0u32..20, 0u32..6, 0u32..20).prop_map(|(s, p, o)| [TermId(s), TermId(p), TermId(o)])
    }

    fn arb_pattern() -> impl Strategy<Value = IdPattern> {
        (
            proptest::option::of(0u32..20),
            proptest::option::of(0u32..6),
            proptest::option::of(0u32..20),
        )
            .prop_map(|(s, p, o)| IdPattern {
                s: s.map(TermId),
                p: p.map(TermId),
                o: o.map(TermId),
            })
    }

    proptest! {
        /// The golden store invariant: index-dispatched scans agree with a
        /// naive filter over the full triple set, for every pattern shape.
        #[test]
        fn scan_agrees_with_naive_filter(
            triples in proptest::collection::vec(arb_triple(), 0..200),
            pattern in arb_pattern(),
        ) {
            let mut g = GraphStore::new();
            let mut reference: Vec<EncodedTriple> = Vec::new();
            for tr in &triples {
                if g.insert(*tr) {
                    reference.push(*tr);
                }
            }
            reference.sort_unstable();
            let expected: Vec<EncodedTriple> =
                reference.iter().copied().filter(|t| pattern.matches(t)).collect();
            let mut actual: Vec<EncodedTriple> = g.scan(pattern).collect();
            actual.sort_unstable();
            prop_assert_eq!(actual, expected);
            prop_assert_eq!(g.count(pattern), g.scan(pattern).count());
        }

        /// Mixed inserts and removes: the store agrees with a reference
        /// set model on contains / scan / count, across merges.
        #[test]
        fn deletes_agree_with_set_model(
            ops in proptest::collection::vec(
                (proptest::bool::weighted(0.7), arb_triple(), proptest::bool::ANY),
                0..300,
            ),
            pattern in arb_pattern(),
        ) {
            let mut g = GraphStore::new();
            // Register every predicate the generator can mint so the
            // per-value posting lists (and their count fast path) are
            // exercised across the whole mutation sequence.
            let preds: Vec<TermId> = (0u32..6).map(TermId).collect();
            g.register_value_preds(&preds);
            let mut model: std::collections::BTreeSet<EncodedTriple> =
                std::collections::BTreeSet::new();
            for (is_insert, triple, merge_after) in ops {
                if is_insert {
                    prop_assert_eq!(g.insert(triple), model.insert(triple));
                } else {
                    prop_assert_eq!(g.remove(&triple), model.remove(&triple));
                }
                if merge_after {
                    g.optimize();
                }
            }
            prop_assert_eq!(g.len(), model.len());
            let expected: Vec<EncodedTriple> =
                model.iter().copied().filter(|t| pattern.matches(t)).collect();
            // Scans yield in the dispatched index's key order (SPO/POS/OSP
            // depending on the pattern shape), so compare as sorted sets.
            let mut actual: Vec<EncodedTriple> = g.scan(pattern).collect();
            actual.sort_unstable();
            prop_assert_eq!(&actual, &expected);
            prop_assert_eq!(g.count(pattern), expected.len());

            // The posting lists stayed consistent with the model: exact
            // per-predicate triple counts and subject bitmaps.
            for &p in &preds {
                let triples: Vec<&EncodedTriple> =
                    model.iter().filter(|t| t[1] == p).collect();
                prop_assert_eq!(g.count(IdPattern::new(None, Some(p), None)), triples.len());
                let subjects: std::collections::BTreeSet<u32> =
                    triples.iter().map(|t| t[0].0).collect();
                let bitmap: std::collections::BTreeSet<u32> = g
                    .pred_subjects(p)
                    .map(|bm| bm.iter().collect())
                    .unwrap_or_default();
                prop_assert_eq!(bitmap, subjects);
            }
        }

        /// Bulk load and incremental insert build identical stores.
        #[test]
        fn bulk_load_equals_incremental(
            triples in proptest::collection::vec(arb_triple(), 0..200),
        ) {
            let mut incremental = GraphStore::new();
            for tr in &triples {
                incremental.insert(*tr);
            }
            let mut bulk = GraphStore::new();
            bulk.bulk_load(triples);
            prop_assert_eq!(incremental.len(), bulk.len());
            let a: Vec<EncodedTriple> = incremental.iter().collect();
            let b: Vec<EncodedTriple> = bulk.iter().collect();
            prop_assert_eq!(a, b);
        }
    }
}
