//! RDFS forward-chaining inference (subclass / subproperty / domain / range).
//!
//! The paper singles out "the intricacies of the RDF model, e.g., complex
//! schema, entailment, and blank nodes" (§1) as what breaks relational
//! intuitions on KGs. This module provides the entailment half: a
//! forward-chaining materializer for the four core RDFS rules, so facets
//! can be defined over *inferred* types (e.g. a LUBM facet over `Professor`
//! answering for `FullProfessor` instances):
//!
//! * **rdfs9**  `(x type C1), (C1 subClassOf C2) ⇒ (x type C2)`
//! * **rdfs11** `(C1 subClassOf C2), (C2 subClassOf C3) ⇒ (C1 subClassOf C3)`
//! * **rdfs7**  `(x p y), (p subPropertyOf q) ⇒ (x q y)`
//! * **rdfs2/3** `(x p y), (p domain C) ⇒ (x type C)`;
//!   `(p range C) ⇒ (y type C)`
//!
//! Inference runs to fixpoint and inserts into the same graph (the closure
//! is itself a kind of materialized view — computed once offline, queried
//! many times — which is exactly SOFOS's trade-off story).

use crate::index::GraphStore;
use crate::pattern::IdPattern;
use sofos_rdf::vocab::rdf;
use sofos_rdf::{Dictionary, FxHashMap, FxHashSet, Term, TermId};

/// The RDFS schema vocabulary ids present in a dictionary (if interned).
struct SchemaIds {
    type_p: Option<TermId>,
    sub_class_of: Option<TermId>,
    sub_property_of: Option<TermId>,
    domain: Option<TermId>,
    range: Option<TermId>,
}

const SUB_PROPERTY_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
const DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";
const RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";

impl SchemaIds {
    fn resolve(dict: &Dictionary) -> SchemaIds {
        let get = |iri: &str| dict.get_id(&Term::iri(iri));
        SchemaIds {
            type_p: get(rdf::TYPE),
            sub_class_of: get(sofos_rdf::vocab::rdfs::SUB_CLASS_OF),
            sub_property_of: get(SUB_PROPERTY_OF),
            domain: get(DOMAIN),
            range: get(RANGE),
        }
    }
}

/// Statistics of one inference run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InferenceStats {
    /// Triples added by the closure.
    pub inferred: usize,
    /// Fixpoint iterations executed.
    pub iterations: usize,
}

/// Materialize the RDFS closure of `store` in place. The dictionary is only
/// read — the rules produce no new terms. Returns how much was added.
pub fn materialize_rdfs(store: &mut GraphStore, dict: &Dictionary) -> InferenceStats {
    let ids = SchemaIds::resolve(dict);
    let mut stats = InferenceStats::default();

    // Transitive-closure tables, rebuilt per iteration from the store.
    loop {
        stats.iterations += 1;
        let mut fresh: Vec<[TermId; 3]> = Vec::new();

        // rdfs11: subClassOf transitivity (and the same shape for
        // subPropertyOf, which rdfs5 defines).
        for rel in [ids.sub_class_of, ids.sub_property_of]
            .into_iter()
            .flatten()
        {
            let edges: Vec<(TermId, TermId)> = store
                .scan(IdPattern::new(None, Some(rel), None))
                .map(|[s, _, o]| (s, o))
                .collect();
            let mut successors: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
            for &(a, b) in &edges {
                successors.entry(a).or_default().push(b);
            }
            for &(a, b) in &edges {
                for &c in successors.get(&b).into_iter().flatten() {
                    if a != c {
                        fresh.push([a, rel, c]);
                    }
                }
            }
        }

        // rdfs9: type inheritance along subClassOf.
        if let (Some(type_p), Some(sub_class)) = (ids.type_p, ids.sub_class_of) {
            let superclasses: Vec<(TermId, TermId)> = store
                .scan(IdPattern::new(None, Some(sub_class), None))
                .map(|[s, _, o]| (s, o))
                .collect();
            for (class, superclass) in superclasses {
                let instances: Vec<TermId> = store
                    .scan(IdPattern::new(None, Some(type_p), Some(class)))
                    .map(|[s, _, _]| s)
                    .collect();
                for x in instances {
                    fresh.push([x, type_p, superclass]);
                }
            }
        }

        // rdfs7: property inheritance along subPropertyOf.
        if let Some(sub_prop) = ids.sub_property_of {
            let pairs: Vec<(TermId, TermId)> = store
                .scan(IdPattern::new(None, Some(sub_prop), None))
                .map(|[s, _, o]| (s, o))
                .collect();
            for (p, q) in pairs {
                let uses: Vec<[TermId; 3]> =
                    store.scan(IdPattern::new(None, Some(p), None)).collect();
                for [x, _, y] in uses {
                    fresh.push([x, q, y]);
                }
            }
        }

        // rdfs2/rdfs3: domain and range typing.
        if let Some(type_p) = ids.type_p {
            for (rel, position) in [(ids.domain, 0usize), (ids.range, 2usize)] {
                let Some(rel) = rel else { continue };
                let declarations: Vec<(TermId, TermId)> = store
                    .scan(IdPattern::new(None, Some(rel), None))
                    .map(|[p, _, c]| (p, c))
                    .collect();
                for (p, class) in declarations {
                    let uses: Vec<[TermId; 3]> =
                        store.scan(IdPattern::new(None, Some(p), None)).collect();
                    for t in uses {
                        let node = t[position];
                        // Literals cannot be typed subjects; the store layer
                        // does not know term kinds, so check the dictionary.
                        if position == 2 {
                            if let Term::Literal(_) = dict.term_unchecked(node) {
                                continue;
                            }
                        }
                        fresh.push([node, type_p, class]);
                    }
                }
            }
        }

        let mut added_this_round = 0usize;
        let mut seen: FxHashSet<[TermId; 3]> = FxHashSet::default();
        for t in fresh {
            if seen.insert(t) && store.insert(t) {
                added_this_round += 1;
            }
        }
        stats.inferred += added_this_round;
        if added_this_round == 0 {
            return stats;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://e/{s}"))
    }

    fn setup() -> Dataset {
        let mut ds = Dataset::new();
        let type_p = Term::iri(rdf::TYPE);
        let sub_class = Term::iri(sofos_rdf::vocab::rdfs::SUB_CLASS_OF);
        let sub_prop = Term::iri(SUB_PROPERTY_OF);
        let domain = Term::iri(DOMAIN);
        let range = Term::iri(RANGE);

        // Schema: FullProfessor ⊑ Professor ⊑ Faculty; headOf ⊑ worksFor;
        // worksFor domain Person, range Organization.
        ds.insert(None, &iri("FullProfessor"), &sub_class, &iri("Professor"));
        ds.insert(None, &iri("Professor"), &sub_class, &iri("Faculty"));
        ds.insert(None, &iri("headOf"), &sub_prop, &iri("worksFor"));
        ds.insert(None, &iri("worksFor"), &domain, &iri("Person"));
        ds.insert(None, &iri("worksFor"), &range, &iri("Organization"));

        // Data.
        ds.insert(None, &iri("ann"), &type_p, &iri("FullProfessor"));
        ds.insert(None, &iri("ann"), &iri("headOf"), &iri("cs"));
        ds
    }

    fn has(ds: &Dataset, s: &str, p: &str, o: &str) -> bool {
        let get = |t: &Term| ds.dict().get_id(t);
        let (Some(s), Some(p), Some(o)) = (
            get(&iri(s)),
            get(&if p == "type" {
                Term::iri(rdf::TYPE)
            } else {
                iri(p)
            }),
            get(&iri(o)),
        ) else {
            return false;
        };
        ds.default_graph().contains(&[s, p, o])
    }

    #[test]
    fn subclass_transitivity_and_type_inheritance() {
        let mut ds = setup();
        let stats = ds.materialize_rdfs();
        assert!(stats.inferred > 0);

        assert!(has(&ds, "ann", "type", "Professor"), "rdfs9 one level");
        assert!(
            has(&ds, "ann", "type", "Faculty"),
            "rdfs9 + rdfs11 two levels"
        );
        // Direct check of the closure edge.
        let sub_class = ds
            .dict()
            .get_id(&Term::iri(sofos_rdf::vocab::rdfs::SUB_CLASS_OF))
            .unwrap();
        let fp = ds.dict().get_id(&iri("FullProfessor")).unwrap();
        let fac = ds.dict().get_id(&iri("Faculty")).unwrap();
        assert!(ds.default_graph().contains(&[fp, sub_class, fac]), "rdfs11");
    }

    #[test]
    fn subproperty_and_domain_range() {
        let mut ds = setup();
        ds.materialize_rdfs();

        assert!(has(&ds, "ann", "worksFor", "cs"), "rdfs7");
        assert!(
            has(&ds, "ann", "type", "Person"),
            "rdfs2 (domain via inferred use)"
        );
        assert!(has(&ds, "cs", "type", "Organization"), "rdfs3 (range)");
    }

    #[test]
    fn closure_is_idempotent() {
        let mut ds = setup();
        let first = ds.materialize_rdfs();
        let len_after = ds.default_graph().len();
        let second = ds.materialize_rdfs();
        assert!(first.inferred > 0);
        assert_eq!(second.inferred, 0, "fixpoint reached");
        assert_eq!(ds.default_graph().len(), len_after);
    }

    #[test]
    fn range_never_types_literals() {
        let mut ds = Dataset::new();
        let range = Term::iri(RANGE);
        ds.insert(None, &iri("age"), &range, &iri("Number"));
        ds.insert(None, &iri("bob"), &iri("age"), &Term::literal_int(7));
        ds.materialize_rdfs();
        // The literal 7 must not receive a type triple.
        if let Some(type_p) = ds.dict().get_id(&Term::iri(rdf::TYPE)) {
            let seven = ds.dict().get_id(&Term::literal_int(7)).unwrap();
            assert_eq!(
                ds.default_graph()
                    .scan(IdPattern::new(Some(seven), Some(type_p), None))
                    .count(),
                0
            );
        }
    }

    #[test]
    fn graphs_without_schema_are_untouched() {
        let mut ds = Dataset::new();
        ds.insert(None, &iri("a"), &iri("p"), &iri("b"));
        let stats = ds.materialize_rdfs();
        assert_eq!(stats.inferred, 0);
        assert_eq!(ds.default_graph().len(), 1);
    }
}
