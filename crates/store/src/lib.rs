//! # sofos-store — dictionary-encoded indexed triple store
//!
//! The storage substrate SOFOS runs on (the paper assumes "any RDF triple
//! store with SPARQL query processing"; we build one). Architecture:
//!
//! * terms are interned to dense `u32` ids by `sofos_rdf::Dictionary`;
//! * a [`GraphStore`] holds one RDF graph as three *permutation indexes*
//!   ([`index::PermIndex`]) — SPO, POS and OSP orderings — each an LSM-lite
//!   pair of a sorted run plus a B-tree delta, merged when the delta grows.
//!   Together they answer all eight triple-pattern binding shapes with
//!   prefix range scans (see [`pattern`]);
//! * [`bitmap::Bitmap`] is a vendored roaring-style compressed bitmap;
//!   [`posting::PostingLists`] builds per-predicate and per-(predicate,
//!   value) subject bitmaps on it inside every [`GraphStore`], maintained
//!   incrementally by the store's own mutation paths and never persisted
//!   (derived state, rebuilt from triples on recovery);
//! * a [`Dataset`] is the paper's expanded graph `G+`: the base graph plus
//!   one named graph per materialized view, all sharing one dictionary;
//! * [`stats::GraphStats`] aggregates per-predicate cardinalities used by
//!   the cost models and the query planner's join ordering; on the write
//!   path they are kept live by [`stats::StatsTracker`] instead of being
//!   recomputed;
//! * [`delta::Delta`] / [`Dataset::apply`] are the transactional update
//!   path: batched inserts *and deletes* flow through the LSM-lite index
//!   deltas and come back out as a net [`delta::ChangeSet`] per graph —
//!   the input to `sofos-maintain`'s incremental view maintenance;
//! * [`epoch::EpochStore`] makes the dataset concurrent: readers pin
//!   immutable epoch [`epoch::Snapshot`]s while the single writer builds
//!   and atomically publishes the next epoch, with write/maintenance work
//!   partitioned across subject-hash [`shard::ShardRouter`] shards (see
//!   `crates/store/README.md` for the pin → publish → retire lifecycle).

pub mod bitmap;
pub mod dataset;
pub mod delta;
pub mod epoch;
pub mod graphmap;
pub mod index;
pub mod inference;
pub mod pattern;
pub mod persist;
pub mod posting;
pub mod shard;
pub mod stats;

pub use bitmap::Bitmap;
pub use dataset::{Dataset, GraphName};
pub use delta::{ChangeSet, Delta, DeltaOp, GraphChanges, OpKind};
pub use epoch::{BatchWriteTxn, EpochStore, PinnedSnapshot, PreparedTxn, Snapshot, WriteTxn};
pub use graphmap::GraphMap;
pub use index::{GraphStore, Perm};
pub use inference::{materialize_rdfs, InferenceStats};
pub use pattern::{EncodedTriple, IdPattern};
pub use persist::{DurabilityConfig, PersistError, PersistStats, Persister, Recovered};
pub use posting::{PostingLists, PostingStats};
pub use shard::ShardRouter;
pub use stats::{GraphStats, PredicateStats, StatsTracker};
