//! Encoded triples and id-level triple patterns.

use sofos_rdf::TermId;

/// A dictionary-encoded triple in `(s, p, o)` order.
pub type EncodedTriple = [TermId; 3];

/// A triple pattern at the id level: each position is either bound to a
/// term id or a wildcard. This is what reaches the store; variable names
/// live one layer up in `sofos-sparql`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IdPattern {
    /// Subject constraint.
    pub s: Option<TermId>,
    /// Predicate constraint.
    pub p: Option<TermId>,
    /// Object constraint.
    pub o: Option<TermId>,
}

impl IdPattern {
    /// The match-everything pattern.
    pub const ANY: IdPattern = IdPattern {
        s: None,
        p: None,
        o: None,
    };

    /// Construct from options.
    pub fn new(s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> IdPattern {
        IdPattern { s, p, o }
    }

    /// Number of bound positions (0–3); used as a crude selectivity proxy.
    pub fn bound_count(&self) -> u32 {
        self.s.is_some() as u32 + self.p.is_some() as u32 + self.o.is_some() as u32
    }

    /// Does a concrete triple match this pattern?
    #[inline]
    pub fn matches(&self, t: &EncodedTriple) -> bool {
        self.s.is_none_or(|s| s == t[0])
            && self.p.is_none_or(|p| p == t[1])
            && self.o.is_none_or(|o| o == t[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u32) -> TermId {
        TermId(v)
    }

    #[test]
    fn any_matches_everything() {
        assert!(IdPattern::ANY.matches(&[id(1), id(2), id(3)]));
        assert_eq!(IdPattern::ANY.bound_count(), 0);
    }

    #[test]
    fn bound_positions_filter() {
        let p = IdPattern::new(Some(id(1)), None, Some(id(3)));
        assert!(p.matches(&[id(1), id(9), id(3)]));
        assert!(!p.matches(&[id(2), id(9), id(3)]));
        assert!(!p.matches(&[id(1), id(9), id(4)]));
        assert_eq!(p.bound_count(), 2);
    }

    #[test]
    fn fully_bound_matches_exactly_one_shape() {
        let p = IdPattern::new(Some(id(1)), Some(id(2)), Some(id(3)));
        assert!(p.matches(&[id(1), id(2), id(3)]));
        assert!(!p.matches(&[id(1), id(2), id(4)]));
        assert_eq!(p.bound_count(), 3);
    }
}
