//! The compact binary encoding shared by the epoch log and snapshots.
//!
//! Everything on disk is built from three primitives — LEB128 varints,
//! length-prefixed UTF-8 strings, and tagged [`Term`]s — so the whole
//! format is self-describing given this module. Decoding is total: every
//! reader returns a [`DecodeError`] on malformed input and **never
//! panics**, because recovery feeds it torn and corrupted bytes on
//! purpose (see [`crate::persist::log`]).
//!
//! Term tags (one byte):
//!
//! | tag | kind | payload |
//! |-----|------|---------|
//! | 0 | IRI | string |
//! | 1 | blank node | label string |
//! | 2 | plain literal | lexical string |
//! | 3 | language-tagged literal | lexical string + tag string |
//! | 4 | typed literal | lexical string + datatype IRI string |
//!
//! Triples are three dictionary-id varints — the encoding is id-level,
//! like every in-memory index; term text lives only in the dictionary
//! section of a record or snapshot.

use crate::pattern::EncodedTriple;
use sofos_rdf::{Iri, Literal, LiteralKind, Term, TermId};

/// Why a decode failed. Recovery treats any of these at a log tail as a
/// torn record (truncate and stop); anywhere else they surface as
/// corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended inside a value.
    UnexpectedEof,
    /// A varint ran past 10 bytes (not a canonical u64).
    VarintOverflow,
    /// A string payload was not UTF-8.
    BadUtf8,
    /// An unknown term tag byte.
    BadTag(u8),
    /// A record checksum did not match its payload.
    Checksum,
    /// A snapshot file did not start with the expected magic/version.
    BadMagic,
    /// A replayed record's dictionary tail does not continue the
    /// dataset's dictionary (mixed lineages; see the module docs of
    /// [`crate::persist`]).
    DictMismatch {
        /// The id the record expects to assign next.
        expected: u64,
        /// The dictionary length actually found.
        found: u64,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof => f.write_str("unexpected end of input"),
            DecodeError::VarintOverflow => f.write_str("varint overflows u64"),
            DecodeError::BadUtf8 => f.write_str("string is not UTF-8"),
            DecodeError::BadTag(tag) => write!(f, "unknown term tag {tag}"),
            DecodeError::Checksum => f.write_str("checksum mismatch"),
            DecodeError::BadMagic => f.write_str("bad magic or version"),
            DecodeError::DictMismatch { expected, found } => write!(
                f,
                "dictionary tail expects next id {expected}, dataset has {found} terms"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — hand-rolled; the workspace is
// registry-free by policy.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes` — the per-record and per-snapshot checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Writer primitives
// ---------------------------------------------------------------------------

/// Append a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Append one tagged term (see the module table).
pub fn put_term(out: &mut Vec<u8>, term: &Term) {
    match term {
        Term::Iri(iri) => {
            out.push(0);
            put_str(out, iri.as_str());
        }
        Term::Blank(blank) => {
            out.push(1);
            put_str(out, blank.as_str());
        }
        Term::Literal(lit) => match lit.kind() {
            LiteralKind::Plain => {
                out.push(2);
                put_str(out, lit.lexical());
            }
            LiteralKind::Lang(lang) => {
                out.push(3);
                put_str(out, lit.lexical());
                put_str(out, lang);
            }
            LiteralKind::Typed(datatype) => {
                out.push(4);
                put_str(out, lit.lexical());
                put_str(out, datatype.as_str());
            }
        },
    }
}

/// Append one id-level triple (three varints).
pub fn put_triple(out: &mut Vec<u8>, triple: &EncodedTriple) {
    for id in triple {
        put_varint(out, id.0 as u64);
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over encoded bytes.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// One byte.
    pub fn byte(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// A LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.byte()?;
            value |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(DecodeError::VarintOverflow)
    }

    /// A varint that must fit a `usize` count (alias for clarity).
    pub fn count(&mut self) -> Result<usize, DecodeError> {
        // Counts beyond usize::MAX cannot describe in-memory data anyway;
        // an out-of-range value is corruption, not a platform concern.
        usize::try_from(self.varint()?).map_err(|_| DecodeError::VarintOverflow)
    }

    /// A length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<&'a str, DecodeError> {
        let len = self.count()?;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| DecodeError::BadUtf8)
    }

    /// One tagged term.
    pub fn term(&mut self) -> Result<Term, DecodeError> {
        match self.byte()? {
            0 => Ok(Term::iri(self.string()?)),
            1 => Ok(Term::blank(self.string()?)),
            2 => Ok(Term::literal_str(self.string()?)),
            3 => {
                let lexical = self.string()?;
                let lang = self.string()?;
                Ok(Term::Literal(Literal::lang_string(lexical, lang)))
            }
            4 => {
                let lexical = self.string()?;
                let datatype = self.string()?;
                Ok(Term::Literal(Literal::typed(
                    lexical,
                    Iri::new_unchecked(datatype),
                )))
            }
            tag => Err(DecodeError::BadTag(tag)),
        }
    }

    /// One id-level triple.
    pub fn triple(&mut self) -> Result<EncodedTriple, DecodeError> {
        let mut ids = [TermId(0); 3];
        for slot in &mut ids {
            let raw = self.varint()?;
            *slot = TermId(u32::try_from(raw).map_err(|_| DecodeError::VarintOverflow)?);
        }
        Ok(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for value in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, value);
            let mut reader = Reader::new(&out);
            assert_eq!(reader.varint().unwrap(), value);
            assert!(reader.is_empty());
        }
    }

    #[test]
    fn term_round_trips_every_kind() {
        let terms = [
            Term::iri("http://example.org/thing"),
            Term::blank("b42"),
            Term::literal_str("plain"),
            Term::Literal(Literal::lang_string("hello", "en-GB")),
            Term::Literal(Literal::typed(
                "13",
                Iri::new_unchecked("http://www.w3.org/2001/XMLSchema#integer"),
            )),
            Term::literal_int(-7),
        ];
        for term in terms {
            let mut out = Vec::new();
            put_term(&mut out, &term);
            let decoded = Reader::new(&out).term().unwrap();
            assert_eq!(decoded, term);
        }
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut out = Vec::new();
        put_term(&mut out, &Term::iri("http://example.org/long-enough"));
        for cut in 0..out.len() {
            let result = Reader::new(&out[..cut]).term();
            assert!(result.is_err(), "cut at {cut} must fail, got {result:?}");
        }
    }

    #[test]
    fn bad_tag_and_bad_utf8_error() {
        assert_eq!(Reader::new(&[9, 0]).term(), Err(DecodeError::BadTag(9)));
        // tag 0 (IRI) + length 2 + invalid UTF-8 bytes.
        assert_eq!(
            Reader::new(&[0, 2, 0xFF, 0xFE]).term(),
            Err(DecodeError::BadUtf8)
        );
    }

    #[test]
    fn varint_overflow_is_rejected() {
        let eleven = [0x80u8; 11];
        assert_eq!(
            Reader::new(&eleven).varint(),
            Err(DecodeError::VarintOverflow)
        );
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
