//! The append-only epoch log: one framed record per published batch.
//!
//! Framing is `[payload_len: u32 LE][crc32(payload): u32 LE][payload]`.
//! A record is only as durable as its frame: recovery scans frames from
//! the front and stops at the first one that is short, fails its
//! checksum, or does not decode — everything before that point is the
//! valid prefix, everything after is a torn tail to truncate. Because
//! the writer appends a whole frame and fsyncs before the epoch pointer
//! swap, the valid prefix always covers every *acknowledged* publish
//! (it may additionally contain the one final logged-but-unacknowledged
//! batch; see the [`crate::persist`] module docs for why that is sound).
//!
//! Record payload layout (all varints unless noted):
//!
//! ```text
//! epoch
//! dict_start                  # dataset dictionary length before this batch
//! dict_tail_len, term...      # terms interned by this batch, in id order
//! catalog_flag: u8            # 0 = unchanged from previous record
//!                             # 1 = explicit: len, (mask, rows)...
//! graph_count
//! per graph:
//!   tag: u8                   # 0 = default graph, 1 = named (+ name id)
//!   inserted_len, triple...   # triples are 3 dictionary-id varints
//!   removed_len, triple...
//! ```

use super::encode::{crc32, put_term, put_triple, put_varint, DecodeError, Reader};
use crate::dataset::GraphName;
use crate::delta::ChangeSet;
use crate::pattern::EncodedTriple;
use sofos_rdf::{Dictionary, Term, TermId};

/// Net changes to one graph, already coalesced.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GraphOps {
    /// `None` = default graph, `Some(id)` = named graph.
    pub graph: GraphName,
    /// Triples this batch added.
    pub inserted: Vec<EncodedTriple>,
    /// Triples this batch removed.
    pub removed: Vec<EncodedTriple>,
}

/// One epoch-log record: everything needed to replay one published batch
/// onto a dataset whose dictionary has exactly `dict_start` terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The epoch this batch published.
    pub epoch: u64,
    /// Dictionary length before this batch's terms were interned.
    pub dict_start: u64,
    /// Terms interned by this batch, in id order (`dict_start`,
    /// `dict_start + 1`, ...). Replay re-interns them in order, which
    /// reproduces identical ids because the dictionary is append-only.
    pub dict_tail: Vec<Term>,
    /// `Some` when this batch changed the view catalog; `None` carries
    /// the previous record's catalog forward.
    pub catalog: Option<Vec<(u64, u64)>>,
    /// Per-graph net changes.
    pub graphs: Vec<GraphOps>,
}

impl Record {
    /// Build a record from a coalesced [`ChangeSet`] plus the dictionary
    /// tail it interned. `persisted_terms` is the dictionary length the
    /// log already covers; every term with id at or past it rides along.
    pub fn from_changes(
        epoch: u64,
        dict: &Dictionary,
        persisted_terms: usize,
        changes: &ChangeSet,
        catalog: Option<Vec<(u64, u64)>>,
    ) -> Record {
        let dict_tail = (persisted_terms..dict.len())
            .map(|i| dict.term_unchecked(TermId(i as u32)).clone())
            .collect();
        let mut graphs = Vec::new();
        if !changes.default_graph.is_empty() {
            graphs.push(GraphOps {
                graph: None,
                inserted: changes.default_graph.inserted.clone(),
                removed: changes.default_graph.removed.clone(),
            });
        }
        // Named graphs in id order so identical batches encode identically.
        let mut names: Vec<TermId> = changes.named.keys().copied().collect();
        names.sort_unstable_by_key(|id| id.0);
        for name in names {
            let ops = &changes.named[&name];
            if ops.is_empty() {
                continue;
            }
            graphs.push(GraphOps {
                graph: Some(name),
                inserted: ops.inserted.clone(),
                removed: ops.removed.clone(),
            });
        }
        Record {
            epoch,
            dict_start: persisted_terms as u64,
            dict_tail,
            catalog,
            graphs,
        }
    }

    /// Encode the (unframed) payload.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.graphs.len() * 16);
        put_varint(&mut out, self.epoch);
        put_varint(&mut out, self.dict_start);
        put_varint(&mut out, self.dict_tail.len() as u64);
        for term in &self.dict_tail {
            put_term(&mut out, term);
        }
        match &self.catalog {
            None => out.push(0),
            Some(entries) => {
                out.push(1);
                put_varint(&mut out, entries.len() as u64);
                for &(mask, rows) in entries {
                    put_varint(&mut out, mask);
                    put_varint(&mut out, rows);
                }
            }
        }
        put_varint(&mut out, self.graphs.len() as u64);
        for ops in &self.graphs {
            match ops.graph {
                None => out.push(0),
                Some(id) => {
                    out.push(1);
                    put_varint(&mut out, id.0 as u64);
                }
            }
            put_varint(&mut out, ops.inserted.len() as u64);
            for triple in &ops.inserted {
                put_triple(&mut out, triple);
            }
            put_varint(&mut out, ops.removed.len() as u64);
            for triple in &ops.removed {
                put_triple(&mut out, triple);
            }
        }
        out
    }

    /// Decode one payload. Never panics on malformed input.
    pub fn decode_payload(bytes: &[u8]) -> Result<Record, DecodeError> {
        let mut r = Reader::new(bytes);
        let epoch = r.varint()?;
        let dict_start = r.varint()?;
        let tail_len = r.count()?;
        let mut dict_tail = Vec::with_capacity(tail_len.min(1024));
        for _ in 0..tail_len {
            dict_tail.push(r.term()?);
        }
        let catalog = match r.byte()? {
            0 => None,
            1 => {
                let len = r.count()?;
                let mut entries = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    let mask = r.varint()?;
                    let rows = r.varint()?;
                    entries.push((mask, rows));
                }
                Some(entries)
            }
            tag => return Err(DecodeError::BadTag(tag)),
        };
        let graph_count = r.count()?;
        let mut graphs = Vec::with_capacity(graph_count.min(1024));
        for _ in 0..graph_count {
            let graph = match r.byte()? {
                0 => None,
                1 => {
                    let raw = r.varint()?;
                    Some(TermId(
                        u32::try_from(raw).map_err(|_| DecodeError::VarintOverflow)?,
                    ))
                }
                tag => return Err(DecodeError::BadTag(tag)),
            };
            let inserted_len = r.count()?;
            let mut inserted = Vec::with_capacity(inserted_len.min(4096));
            for _ in 0..inserted_len {
                inserted.push(r.triple()?);
            }
            let removed_len = r.count()?;
            let mut removed = Vec::with_capacity(removed_len.min(4096));
            for _ in 0..removed_len {
                removed.push(r.triple()?);
            }
            graphs.push(GraphOps {
                graph,
                inserted,
                removed,
            });
        }
        if !r.is_empty() {
            // Trailing garbage inside a checksummed frame is corruption,
            // not a torn write — but either way the record is unusable.
            return Err(DecodeError::Checksum);
        }
        Ok(Record {
            epoch,
            dict_start,
            dict_tail,
            catalog,
            graphs,
        })
    }
}

/// Wrap a payload in the on-disk frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The result of scanning a log's bytes.
#[derive(Debug)]
pub struct Scan {
    /// Every record in the valid prefix, in append order.
    pub records: Vec<Record>,
    /// Length of the valid prefix in bytes; anything past it is torn.
    pub valid_len: u64,
}

/// Scan log bytes from the front, stopping at the first short, corrupt,
/// or undecodable frame. Infallible by design: a damaged tail shrinks
/// the valid prefix rather than failing recovery.
pub fn scan(bytes: &[u8]) -> Scan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while let Some(header) = bytes.get(pos..pos + 8) {
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        let Ok(record) = Record::decode_payload(payload) else {
            break;
        };
        records.push(record);
        pos += 8 + len;
    }
    Scan {
        records,
        valid_len: pos as u64,
    }
}

/// Also used by snapshots: encode a full dictionary (all terms in id
/// order) so a decoder can rebuild it by interning in sequence.
pub(super) fn put_dictionary(out: &mut Vec<u8>, dict: &Dictionary) {
    put_varint(out, dict.len() as u64);
    for (_, term) in dict.iter() {
        put_term(out, term);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofos_rdf::Term;

    fn sample_record() -> Record {
        Record {
            epoch: 7,
            dict_start: 3,
            dict_tail: vec![Term::iri("http://example.org/p"), Term::literal_int(9)],
            catalog: Some(vec![(0b101, 42), (0b11, 7)]),
            graphs: vec![
                GraphOps {
                    graph: None,
                    inserted: vec![[TermId(0), TermId(3), TermId(4)]],
                    removed: vec![],
                },
                GraphOps {
                    graph: Some(TermId(2)),
                    inserted: vec![],
                    removed: vec![[TermId(1), TermId(3), TermId(0)]],
                },
            ],
        }
    }

    #[test]
    fn record_round_trips() {
        let record = sample_record();
        let payload = record.encode_payload();
        assert_eq!(Record::decode_payload(&payload).unwrap(), record);
    }

    #[test]
    fn scan_reads_sequential_frames() {
        let mut record = sample_record();
        let mut bytes = frame(&record.encode_payload());
        record.epoch = 8;
        record.catalog = None;
        bytes.extend_from_slice(&frame(&record.encode_payload()));
        let scan = scan(&bytes);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert_eq!(scan.records[1].epoch, 8);
        assert_eq!(scan.records[1].catalog, None);
    }

    #[test]
    fn scan_truncates_torn_tail_at_every_cut() {
        let record = sample_record();
        let first = frame(&record.encode_payload());
        let second = frame(&record.encode_payload());
        let mut bytes = first.clone();
        bytes.extend_from_slice(&second);
        // Any cut inside the second frame leaves exactly the first record.
        for cut in first.len()..bytes.len() {
            let scan = scan(&bytes[..cut]);
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_len, first.len() as u64, "cut at {cut}");
        }
    }

    #[test]
    fn scan_stops_at_corrupt_frame() {
        let record = sample_record();
        let first = frame(&record.encode_payload());
        let mut bytes = first.clone();
        let mut second = frame(&record.encode_payload());
        let flip = second.len() - 3;
        second[flip] ^= 0xFF; // corrupt the payload; CRC now mismatches
        bytes.extend_from_slice(&second);
        let scan = scan(&bytes);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, first.len() as u64);
    }
}
