//! Durable epochs: an append-only epoch log plus periodic snapshots.
//!
//! The epoch store's publish protocol is "log, fsync, *then* swap the
//! epoch pointer" — so the on-disk log always covers every state a
//! reader could ever have observed. Recovery is the inverse: load the
//! newest snapshot that decodes, replay the log records with a higher
//! epoch, and truncate any torn tail left by a crash mid-append.
//!
//! ## The write-ahead superset guarantee
//!
//! Because the log record is durable *before* `publish()` swaps the
//! pointer, a crash between the two can leave one final batch that was
//! logged but never acknowledged. Recovery replays it anyway: the
//! recovered state is always *some prefix of the logged batches* that is
//! a **superset of every acknowledged publish**. That is the standard
//! WAL contract — an unacknowledged write may or may not survive, an
//! acknowledged one always does — and it is why the crash-point property
//! tests assert "recovery lands on exactly a published epoch" where
//! *published* means "covered by a complete log record".
//!
//! ## Dictionary lineage
//!
//! The dictionary is append-only and dense: ids are assigned in
//! first-seen order. Each log record carries the "dictionary tail" — the
//! terms this batch interned — and `dict_start`, the dictionary length
//! the record expects. Replaying tails in order reproduces identical
//! ids, which is what lets triples live on disk as bare id triples.
//! This also creates the one subtle recovery invariant: anything that
//! interns terms *outside* the logged write path (above all view
//! re-materialization after recovery) must be followed by a fresh
//! baseline snapshot before serving, or the next recovery would find a
//! gap between the snapshot's dictionary and the first log record's
//! `dict_start`. [`Persister::baseline`] exists for exactly that; a
//! [`DecodeError::DictMismatch`] during replay means that invariant was
//! violated externally, and replay stops at the last consistent record
//! rather than guessing.
//!
//! ## What is (and is not) persisted
//!
//! Log records capture *base* mutations — the coalesced [`ChangeSet`] of
//! each published batch — plus the view catalog as `(mask, rows)` pairs.
//! View *contents* are not logged per batch (view maintenance writes to
//! view graphs directly, outside the change-set path); snapshots capture
//! them in full, and after replaying any log tail the engine layer
//! re-materializes the catalog's views from the recovered base, which is
//! bit-equal to maintained state by the maintenance engine's own
//! correctness contract.

pub mod encode;
pub mod log;
pub mod snapshot;

pub use encode::DecodeError;
pub use log::{GraphOps, Record};
pub use snapshot::SnapshotData;

use crate::dataset::Dataset;
use crate::delta::ChangeSet;
use sofos_rdf::Dictionary;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Name of the append-only epoch log inside the data directory.
pub const LOG_FILE: &str = "epoch.log";

/// How many snapshots [`Persister`] keeps on disk (newest first). Two,
/// so a damaged newest snapshot still leaves a recovery point.
pub const SNAPSHOTS_KEPT: usize = 2;

/// Where and how to persist. Passed to `EngineBuilder::durability`.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Data directory; created if missing.
    pub dir: PathBuf,
    /// Write a full snapshot every this many published batches.
    pub snapshot_every: u64,
    /// Fsync the log on every publish (and snapshots on write). Turning
    /// this off trades crash durability for throughput — the log is
    /// still written, but a power loss may lose recent acknowledged
    /// batches. Tests and benches use it to isolate encoding cost.
    pub fsync: bool,
}

impl DurabilityConfig {
    /// Durable-by-default config: fsync on, snapshot every 64 publishes.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.into(),
            snapshot_every: 64,
            fsync: true,
        }
    }

    /// Override the snapshot cadence.
    pub fn snapshot_every(mut self, publishes: u64) -> DurabilityConfig {
        self.snapshot_every = publishes.max(1);
        self
    }

    /// Override fsync behavior.
    pub fn fsync(mut self, on: bool) -> DurabilityConfig {
        self.fsync = on;
        self
    }
}

/// Why persistence could not be opened or written.
#[derive(Debug)]
pub enum PersistError {
    /// An I/O operation failed; the context names it.
    Io {
        /// What was being attempted.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for PersistError {}

fn io_err(context: impl Into<String>) -> impl FnOnce(io::Error) -> PersistError {
    let context = context.into();
    move |source| PersistError::Io { context, source }
}

/// What recovery found in a data directory.
#[derive(Debug)]
pub struct Recovered {
    /// The rebuilt dataset (base + named graphs as captured/replayed).
    pub dataset: Dataset,
    /// The epoch the recovered state corresponds to.
    pub epoch: u64,
    /// The view catalog at that epoch, as `(mask_bits, rows)`.
    pub catalog: Vec<(u64, u64)>,
    /// Epoch of the snapshot recovery started from.
    pub snapshot_epoch: u64,
    /// Log records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Torn-tail bytes truncated from the log.
    pub truncated_bytes: u64,
}

/// Counters exposed through `/metrics` (and the E12 bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Highest epoch with a durable log record.
    pub persisted_epoch: u64,
    /// Current size of the epoch log in bytes.
    pub log_bytes: u64,
    /// Fsync calls issued (log + snapshots).
    pub fsyncs: u64,
    /// Snapshots written this run.
    pub snapshots: u64,
    /// Records replayed at open (0 for a fresh directory).
    pub replayed_records: u64,
    /// Torn bytes truncated at open.
    pub truncated_bytes: u64,
}

/// True when `dir` holds prior state (a log or any complete snapshot) —
/// the server uses this to decide between "resume" and "fresh boot".
pub fn has_state(dir: &Path) -> bool {
    if dir.join(LOG_FILE).is_file() {
        return true;
    }
    snapshot::list_snapshots(dir)
        .map(|s| !s.is_empty())
        .unwrap_or(false)
}

struct Inner {
    log: fs::File,
    /// Dictionary length the log covers; the next record's `dict_start`.
    persisted_terms: usize,
    /// Last catalog written (explicitly or carried); snapshots reuse it.
    last_catalog: Vec<(u64, u64)>,
    publishes_since_snapshot: u64,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("persisted_terms", &self.persisted_terms)
            .field("publishes_since_snapshot", &self.publishes_since_snapshot)
            .finish_non_exhaustive()
    }
}

/// The durable side of the epoch store: owns the open log file and the
/// snapshot cadence. One per data directory; shared via `Arc` between
/// the epoch store (publish path) and the engine (stats, baseline).
#[derive(Debug)]
pub struct Persister {
    config: DurabilityConfig,
    inner: Mutex<Inner>,
    // Lock-free mirrors so `/metrics` never contends with the writer.
    persisted_epoch: AtomicU64,
    log_bytes: AtomicU64,
    fsyncs: AtomicU64,
    snapshots: AtomicU64,
    replayed_records: u64,
    truncated_bytes: u64,
}

impl Persister {
    /// Open a data directory: recover whatever is there, truncate any
    /// torn log tail, and leave the log open for append.
    ///
    /// Returns `None` for the recovery half when the directory held no
    /// prior state (fresh boot) — the caller must then seed durability
    /// with [`Persister::baseline`] before the first publish, so the
    /// first log record's `dict_start` has a snapshot to stand on.
    pub fn open(config: DurabilityConfig) -> Result<(Persister, Option<Recovered>), PersistError> {
        fs::create_dir_all(&config.dir)
            .map_err(io_err(format!("create data dir {}", config.dir.display())))?;

        let had_state = has_state(&config.dir);
        let snapshot_data = snapshot::load_newest(&config.dir).map_err(io_err("list snapshots"))?;

        let log_path = config.dir.join(LOG_FILE);
        let log_bytes_on_disk = match fs::read(&log_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err(format!("read {}", log_path.display()))(e)),
        };
        let scan = log::scan(&log_bytes_on_disk);
        let truncated_bytes = log_bytes_on_disk.len() as u64 - scan.valid_len;

        // Rebuild state: snapshot first, then the log tail past it.
        let (mut dataset, mut epoch, mut catalog, snapshot_epoch) = match snapshot_data {
            Some(data) => {
                let epoch = data.epoch;
                let catalog = data.catalog.clone();
                (data.into_dataset(), epoch, catalog, epoch)
            }
            None => (Dataset::new(), 0, Vec::new(), 0),
        };
        let mut replayed_records = 0u64;
        for record in &scan.records {
            if record.epoch <= snapshot_epoch {
                continue;
            }
            if record.dict_start != dataset.dict().len() as u64 {
                // Mixed lineage (see module docs): stop at the last
                // consistent record instead of applying wrong ids.
                break;
            }
            apply_record(&mut dataset, record);
            epoch = record.epoch;
            if let Some(entries) = &record.catalog {
                catalog = entries.clone();
            }
            replayed_records += 1;
        }

        // Physically truncate the torn tail, then open for append.
        let log = fs::OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&log_path)
            .map_err(io_err(format!("open {}", log_path.display())))?;
        if truncated_bytes > 0 {
            log.set_len(scan.valid_len)
                .map_err(io_err("truncate torn log tail"))?;
        }

        let persister = Persister {
            inner: Mutex::new(Inner {
                log,
                persisted_terms: dataset.dict().len(),
                last_catalog: catalog.clone(),
                publishes_since_snapshot: 0,
            }),
            persisted_epoch: AtomicU64::new(epoch),
            log_bytes: AtomicU64::new(scan.valid_len),
            fsyncs: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            replayed_records,
            truncated_bytes,
            config,
        };
        let recovered = had_state.then_some(Recovered {
            dataset,
            epoch,
            catalog,
            snapshot_epoch,
            replayed_records,
            truncated_bytes,
        });
        Ok((persister, recovered))
    }

    /// The configuration this persister was opened with.
    pub fn config(&self) -> &DurabilityConfig {
        &self.config
    }

    /// Durably log one published batch: build the record (dictionary
    /// tail + coalesced changes + optional explicit catalog), append its
    /// frame, and fsync — all before the caller may swap the epoch
    /// pointer. Returns `true` when the snapshot cadence says the caller
    /// should follow up with [`Persister::snapshot`].
    pub fn log_publish(
        &self,
        epoch: u64,
        dict: &Dictionary,
        changes: &ChangeSet,
        catalog: Option<&[(u64, u64)]>,
    ) -> Result<bool, PersistError> {
        let mut inner = self.inner.lock().unwrap();
        let record = Record::from_changes(
            epoch,
            dict,
            inner.persisted_terms,
            changes,
            catalog.map(|c| c.to_vec()),
        );
        let bytes = log::frame(&record.encode_payload());
        inner
            .log
            .write_all(&bytes)
            .map_err(io_err("append epoch log record"))?;
        if self.config.fsync {
            inner.log.sync_data().map_err(io_err("fsync epoch log"))?;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        inner.persisted_terms = dict.len();
        if let Some(entries) = catalog {
            inner.last_catalog = entries.to_vec();
        }
        inner.publishes_since_snapshot += 1;
        let snapshot_due = inner.publishes_since_snapshot >= self.config.snapshot_every;
        self.persisted_epoch.store(epoch, Ordering::Release);
        self.log_bytes
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(snapshot_due)
    }

    /// Write a cadence snapshot of `dataset` at `epoch` (the catalog is
    /// the last one logged). Crash-atomic; old snapshots beyond
    /// [`SNAPSHOTS_KEPT`] are pruned.
    pub fn snapshot(&self, dataset: &Dataset, epoch: u64) -> Result<(), PersistError> {
        let mut inner = self.inner.lock().unwrap();
        let catalog = inner.last_catalog.clone();
        self.write_snapshot_locked(&mut inner, dataset, epoch, &catalog)
    }

    /// Write a *baseline* snapshot: a full capture that also re-anchors
    /// the log's dictionary coverage at `dataset`'s current dictionary.
    /// Required after any out-of-band interning — fresh boot (terms from
    /// initial load + offline materialization) and post-recovery view
    /// re-materialization — before the next publish.
    pub fn baseline(
        &self,
        dataset: &Dataset,
        epoch: u64,
        catalog: &[(u64, u64)],
    ) -> Result<(), PersistError> {
        let mut inner = self.inner.lock().unwrap();
        inner.persisted_terms = dataset.dict().len();
        inner.last_catalog = catalog.to_vec();
        self.write_snapshot_locked(&mut inner, dataset, epoch, catalog)
    }

    fn write_snapshot_locked(
        &self,
        inner: &mut Inner,
        dataset: &Dataset,
        epoch: u64,
        catalog: &[(u64, u64)],
    ) -> Result<(), PersistError> {
        snapshot::write_snapshot(&self.config.dir, dataset, epoch, catalog, self.config.fsync)
            .map_err(io_err("write snapshot"))?;
        snapshot::retain_newest(&self.config.dir, SNAPSHOTS_KEPT)
            .map_err(io_err("prune old snapshots"))?;
        inner.publishes_since_snapshot = 0;
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        if self.config.fsync {
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Lock-free stats for `/metrics` and the E12 bench.
    pub fn stats(&self) -> PersistStats {
        PersistStats {
            persisted_epoch: self.persisted_epoch.load(Ordering::Acquire),
            log_bytes: self.log_bytes.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            replayed_records: self.replayed_records,
            truncated_bytes: self.truncated_bytes,
        }
    }
}

/// Replay one record's mutations onto a dataset whose dictionary length
/// equals the record's `dict_start` (the caller checks).
fn apply_record(dataset: &mut Dataset, record: &Record) {
    for term in &record.dict_tail {
        dataset.intern(term);
    }
    for ops in &record.graphs {
        for triple in &ops.inserted {
            dataset.insert_encoded(ops.graph, *triple);
        }
        for triple in &ops.removed {
            dataset.remove_encoded(ops.graph, triple);
        }
    }
}
