//! Full-state snapshot files: recovery's starting point.
//!
//! A snapshot is one framed record (same `[len][crc][payload]` frame as
//! the epoch log) whose payload captures the complete dataset — the
//! whole dictionary in id order, the view catalog, and every graph's
//! triples — at one published epoch. Recovery loads the newest snapshot
//! that decodes, then replays epoch-log records with a higher epoch.
//!
//! Writes are crash-atomic: the bytes go to `snapshot-<epoch>.bin.tmp`,
//! which is fsync'd and then renamed into place (`snapshot-<epoch>.bin`),
//! with a best-effort directory fsync after the rename. A crash at any
//! point mid-snapshot leaves either a `.tmp` leftover (ignored by
//! recovery) or a complete file — never a half-written `snapshot-*.bin`
//! that recovery might trust. If the newest file is damaged anyway (disk
//! corruption), recovery falls back to the next-newest and replays a
//! longer log tail.
//!
//! Snapshot payload layout (after the `SFSN` magic + version byte):
//!
//! ```text
//! epoch
//! dict_len, term...             # the full dictionary, id order
//! catalog_len, (mask, rows)...
//! default_len, triple...
//! named_count
//! per named graph: name_id, len, triple...
//! ```

use super::encode::{put_varint, DecodeError, Reader};
use super::log::{frame, put_dictionary};
use crate::dataset::Dataset;
use crate::pattern::EncodedTriple;
use sofos_rdf::{Term, TermId};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"SFSN";
const VERSION: u8 = 1;

/// A decoded snapshot: the raw material [`super::Recovered`] is built from.
#[derive(Debug)]
pub struct SnapshotData {
    /// The epoch the dataset was captured at.
    pub epoch: u64,
    /// Every dictionary term, in id order.
    pub dict: Vec<Term>,
    /// The view catalog at capture time, as `(mask_bits, rows)`.
    pub catalog: Vec<(u64, u64)>,
    /// Default-graph triples.
    pub default_graph: Vec<EncodedTriple>,
    /// Named graphs: `(name id, triples)`, in name-id order.
    pub named: Vec<(TermId, Vec<EncodedTriple>)>,
}

impl SnapshotData {
    /// Rebuild a [`Dataset`] — re-interning the dictionary in id order
    /// reproduces the exact ids the triples were encoded under.
    pub fn into_dataset(self) -> Dataset {
        let mut dataset = Dataset::new();
        for term in &self.dict {
            dataset.intern(term);
        }
        dataset.load_encoded(None, self.default_graph);
        for (name, triples) in self.named {
            dataset.load_encoded(Some(name), triples);
        }
        dataset
    }
}

/// Encode the full dataset state as an (unframed) snapshot payload.
pub fn encode_snapshot(dataset: &Dataset, epoch: u64, catalog: &[(u64, u64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    put_varint(&mut out, epoch);
    put_dictionary(&mut out, dataset.dict());
    put_varint(&mut out, catalog.len() as u64);
    for &(mask, rows) in catalog {
        put_varint(&mut out, mask);
        put_varint(&mut out, rows);
    }
    let default: Vec<EncodedTriple> = dataset.default_graph().iter().collect();
    put_varint(&mut out, default.len() as u64);
    for triple in &default {
        super::encode::put_triple(&mut out, triple);
    }
    let names = dataset.graph_names();
    put_varint(&mut out, names.len() as u64);
    for name in names {
        put_varint(&mut out, name.0 as u64);
        let triples: Vec<EncodedTriple> = dataset
            .graph(Some(name))
            .map(|g| g.iter().collect())
            .unwrap_or_default();
        put_varint(&mut out, triples.len() as u64);
        for triple in &triples {
            super::encode::put_triple(&mut out, triple);
        }
    }
    out
}

/// Decode a snapshot payload. Never panics on malformed input.
pub fn decode_snapshot(payload: &[u8]) -> Result<SnapshotData, DecodeError> {
    let mut r = Reader::new(payload);
    let mut magic = [0u8; 4];
    for byte in &mut magic {
        *byte = r.byte()?;
    }
    if &magic != MAGIC || r.byte()? != VERSION {
        return Err(DecodeError::BadMagic);
    }
    let epoch = r.varint()?;
    let dict_len = r.count()?;
    let mut dict = Vec::with_capacity(dict_len.min(1 << 20));
    for _ in 0..dict_len {
        dict.push(r.term()?);
    }
    let catalog_len = r.count()?;
    let mut catalog = Vec::with_capacity(catalog_len.min(1024));
    for _ in 0..catalog_len {
        let mask = r.varint()?;
        let rows = r.varint()?;
        catalog.push((mask, rows));
    }
    let default_len = r.count()?;
    let mut default_graph = Vec::with_capacity(default_len.min(1 << 20));
    for _ in 0..default_len {
        default_graph.push(r.triple()?);
    }
    let named_count = r.count()?;
    let mut named = Vec::with_capacity(named_count.min(1024));
    for _ in 0..named_count {
        let raw = r.varint()?;
        let name = TermId(u32::try_from(raw).map_err(|_| DecodeError::VarintOverflow)?);
        let len = r.count()?;
        let mut triples = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            triples.push(r.triple()?);
        }
        named.push((name, triples));
    }
    if !r.is_empty() {
        return Err(DecodeError::Checksum);
    }
    Ok(SnapshotData {
        epoch,
        dict,
        catalog,
        default_graph,
        named,
    })
}

fn snapshot_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("snapshot-{epoch}.bin"))
}

/// Parse `snapshot-<epoch>.bin` back to its epoch; `None` for anything
/// else (including `.tmp` leftovers, which recovery must ignore).
fn snapshot_epoch(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot-")?
        .strip_suffix(".bin")?
        .parse()
        .ok()
}

/// Write a snapshot crash-atomically. Returns its size in bytes.
pub fn write_snapshot(
    dir: &Path,
    dataset: &Dataset,
    epoch: u64,
    catalog: &[(u64, u64)],
    fsync: bool,
) -> io::Result<u64> {
    let bytes = frame(&encode_snapshot(dataset, epoch, catalog));
    let path = snapshot_path(dir, epoch);
    let tmp = path.with_extension("bin.tmp");
    let mut file = fs::File::create(&tmp)?;
    file.write_all(&bytes)?;
    if fsync {
        file.sync_all()?;
    }
    drop(file);
    fs::rename(&tmp, &path)?;
    if fsync {
        // Make the rename itself durable; failure here degrades to "the
        // snapshot may vanish on power loss", which recovery tolerates
        // by replaying a longer log tail — so best-effort only.
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(bytes.len() as u64)
}

/// Epochs of all complete snapshot files in `dir`, descending.
pub fn list_snapshots(dir: &Path) -> io::Result<Vec<u64>> {
    let mut epochs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(epoch) = entry.file_name().to_str().and_then(snapshot_epoch) {
            epochs.push(epoch);
        }
    }
    epochs.sort_unstable_by(|a, b| b.cmp(a));
    Ok(epochs)
}

/// Load the newest snapshot that decodes, skipping damaged ones.
pub fn load_newest(dir: &Path) -> io::Result<Option<SnapshotData>> {
    for epoch in list_snapshots(dir)? {
        let bytes = fs::read(snapshot_path(dir, epoch))?;
        // A snapshot is a single frame; reuse the log scanner for the
        // length/checksum handshake, then decode the payload.
        if bytes.len() < 8 {
            continue;
        }
        let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let Some(payload) = bytes.get(8..8 + len) else {
            continue;
        };
        if super::encode::crc32(payload) != crc {
            continue;
        }
        if let Ok(data) = decode_snapshot(payload) {
            return Ok(Some(data));
        }
    }
    Ok(None)
}

/// Delete all but the `keep` newest snapshots (and any stale `.tmp`s).
pub fn retain_newest(dir: &Path, keep: usize) -> io::Result<()> {
    for epoch in list_snapshots(dir)?.into_iter().skip(keep) {
        let _ = fs::remove_file(snapshot_path(dir, epoch));
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if entry
            .file_name()
            .to_str()
            .is_some_and(|n| n.starts_with("snapshot-") && n.ends_with(".bin.tmp"))
        {
            let _ = fs::remove_file(entry.path());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        let mut ds = Dataset::new();
        ds.insert(
            None,
            &Term::iri("http://e/s"),
            &Term::iri("http://e/p"),
            &Term::literal_int(41),
        );
        let g = ds.intern_iri("http://e/view");
        let s = ds.intern(&Term::iri("http://e/s"));
        let p = ds.intern(&Term::iri("http://e/p"));
        ds.insert_encoded(Some(g), [s, p, s]);
        ds
    }

    fn fingerprint(ds: &Dataset) -> (Vec<EncodedTriple>, Vec<(TermId, Vec<EncodedTriple>)>) {
        (
            ds.default_graph().iter().collect(),
            ds.graph_names()
                .into_iter()
                .map(|n| (n, ds.graph(Some(n)).unwrap().iter().collect()))
                .collect(),
        )
    }

    #[test]
    fn snapshot_round_trips_dataset_bit_for_bit() {
        let ds = sample_dataset();
        let payload = encode_snapshot(&ds, 9, &[(5, 100)]);
        let data = decode_snapshot(&payload).unwrap();
        assert_eq!(data.epoch, 9);
        assert_eq!(data.catalog, vec![(5, 100)]);
        assert_eq!(data.dict.len(), ds.dict().len());
        let rebuilt = data.into_dataset();
        assert_eq!(fingerprint(&rebuilt), fingerprint(&ds));
        assert_eq!(rebuilt.dict().len(), ds.dict().len());
    }

    #[test]
    fn truncated_snapshot_errors_instead_of_panicking() {
        let ds = sample_dataset();
        let payload = encode_snapshot(&ds, 3, &[]);
        for cut in [0, 1, 4, 5, 6, payload.len() / 2, payload.len() - 1] {
            assert!(decode_snapshot(&payload[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut payload = encode_snapshot(&sample_dataset(), 1, &[]);
        payload[0] ^= 0xFF;
        assert!(matches!(
            decode_snapshot(&payload),
            Err(DecodeError::BadMagic)
        ));
    }
}
