//! Posting lists: per-predicate (and per-(predicate, value)) bitmaps of
//! subject ids, kept inside every [`crate::index::GraphStore`].
//!
//! Two tiers, both maintained *incrementally* by the store's own mutation
//! methods — every write path (`insert`, `remove`, `bulk_load`,
//! [`crate::dataset::Dataset::apply`], epoch publishes) flows through
//! those, so the lists are never stale and snapshot clones carry a
//! consistent index for free:
//!
//! * **Per-predicate** (always on): for each predicate, a [`Bitmap`] of
//!   the subjects carrying at least one triple with it, plus the exact
//!   triple count. Feeds `GraphStore::count`'s pure-predicate fast path
//!   and the maintenance planner's star-leg candidate filter.
//! * **Per-(predicate, value)** (opt-in via registration): for
//!   *registered* predicates, one bitmap of subjects per distinct object
//!   value. This is the group-location index — intersecting the bitmaps
//!   of a view's dimension values finds its group observation sub-linearly
//!   in view size. Registration is cheap and idempotent
//!   ([`crate::index::GraphStore::register_value_preds`]); the maintenance
//!   engine registers each view graph's dimension + type predicates on
//!   first contact.
//!
//! Maintenance invariants (subjects may carry several values per
//! predicate, e.g. multi-valued legs):
//!
//! * insert `(s,p,o)` → `preds[p].triples += 1`, `subjects.insert(s)`;
//!   registered: `values[(p,o)].insert(s)`.
//! * remove `(s,p,o)` → `preds[p].triples -= 1`; `subjects.remove(s)`
//!   only when no `(s,p,*)` triple remains (the store passes that fact
//!   in); registered: `values[(p,o)].remove(s)` unconditionally — the
//!   triple itself is unique.
//! * Empty bitmaps and zero-count predicates are dropped, so two stores
//!   with equal content have equal posting lists.
//!
//! Nothing here is persisted: the index is derived state, rebuilt from
//! triples on recovery (bulk loads rebuild in one pass; registrations are
//! re-applied by the maintenance engine on first use). That keeps the
//! epoch-log format untouched and recovery unable to observe a
//! triples/index divergence.

use crate::bitmap::Bitmap;
use crate::pattern::EncodedTriple;
use sofos_rdf::{FxHashMap, FxHashSet, TermId};

/// Always-on per-predicate posting entry.
#[derive(Debug, Clone, Default)]
pub struct PredPosting {
    /// Subjects with at least one triple under this predicate.
    pub subjects: Bitmap,
    /// Exact number of triples under this predicate.
    pub triples: u64,
}

/// Aggregated posting-list figures for observability
/// (`sofos_index_*` gauges) and memory accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PostingStats {
    /// Number of posting lists (per-predicate + per-value bitmaps).
    pub posting_lists: usize,
    /// Estimated heap bytes held by the lists.
    pub bytes: usize,
    /// Monotonic count of index mutations on this store.
    pub updates: u64,
}

impl PostingStats {
    /// Combine stats across stores.
    pub fn merge(&mut self, other: PostingStats) {
        self.posting_lists += other.posting_lists;
        self.bytes += other.bytes;
        self.updates += other.updates;
    }
}

/// The posting lists of one graph (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct PostingLists {
    preds: FxHashMap<TermId, PredPosting>,
    /// Predicates registered for per-value tracking.
    value_preds: FxHashSet<TermId>,
    /// `(registered predicate, object)` → subjects holding that value.
    values: FxHashMap<(TermId, TermId), Bitmap>,
    updates: u64,
}

impl PostingLists {
    /// Record an inserted triple (the store already deduplicated).
    pub fn note_insert(&mut self, triple: &EncodedTriple) {
        let [s, p, o] = *triple;
        self.updates += 1;
        let entry = self.preds.entry(p).or_default();
        entry.triples += 1;
        entry.subjects.insert(s.0);
        if self.value_preds.contains(&p) {
            self.values.entry((p, o)).or_default().insert(s.0);
        }
    }

    /// Record a removed triple. `last_for_subject_pred` says whether the
    /// subject has no `(s,p,*)` triple left *after* the removal — only
    /// then does it leave the predicate's subject bitmap.
    pub fn note_remove(&mut self, triple: &EncodedTriple, last_for_subject_pred: bool) {
        let [s, p, o] = *triple;
        self.updates += 1;
        if let Some(entry) = self.preds.get_mut(&p) {
            entry.triples -= 1;
            if last_for_subject_pred {
                entry.subjects.remove(s.0);
            }
            if entry.triples == 0 {
                self.preds.remove(&p);
            }
        }
        if self.value_preds.contains(&p) {
            if let Some(bm) = self.values.get_mut(&(p, o)) {
                bm.remove(s.0);
                if bm.is_empty() {
                    self.values.remove(&(p, o));
                }
            }
        }
    }

    /// Drop all lists (registrations survive) and re-note `triples` —
    /// the bulk-load / recovery rebuild path.
    pub fn rebuild(&mut self, triples: &[EncodedTriple]) {
        self.preds.clear();
        self.values.clear();
        self.updates += 1;
        for t in triples {
            let [s, p, o] = *t;
            let entry = self.preds.entry(p).or_default();
            entry.triples += 1;
            entry.subjects.insert(s.0);
            if self.value_preds.contains(&p) {
                self.values.entry((p, o)).or_default().insert(s.0);
            }
        }
    }

    /// Mark predicates for per-value tracking; returns the ones that were
    /// not registered before (the caller backfills those from its index).
    pub fn register(&mut self, preds: &[TermId]) -> Vec<TermId> {
        preds
            .iter()
            .copied()
            .filter(|p| self.value_preds.insert(*p))
            .collect()
    }

    /// Backfill one registered predicate from existing triples
    /// (`(s, o)` pairs under that predicate).
    pub fn backfill(&mut self, pred: TermId, pairs: impl Iterator<Item = (TermId, TermId)>) {
        self.updates += 1;
        for (s, o) in pairs {
            self.values.entry((pred, o)).or_default().insert(s.0);
        }
    }

    /// Whether a predicate is registered for per-value tracking.
    pub fn is_registered(&self, pred: TermId) -> bool {
        self.value_preds.contains(&pred)
    }

    /// Subjects with at least one triple under `pred`.
    pub fn subjects(&self, pred: TermId) -> Option<&Bitmap> {
        self.preds.get(&pred).map(|e| &e.subjects)
    }

    /// Exact triple count under `pred`.
    pub fn triples_for(&self, pred: TermId) -> u64 {
        self.preds.get(&pred).map_or(0, |e| e.triples)
    }

    /// Subjects holding object `value` under registered `pred` (`None`
    /// when no subject does — or the predicate is unregistered, which the
    /// caller distinguishes via [`PostingLists::is_registered`]).
    pub fn value_subjects(&self, pred: TermId, value: TermId) -> Option<&Bitmap> {
        self.values.get(&(pred, value))
    }

    /// Aggregated figures for observability and memory accounting.
    pub fn stats(&self) -> PostingStats {
        let pred_bytes: usize = self
            .preds
            .values()
            .map(|e| 16 + e.subjects.estimated_bytes())
            .sum();
        let value_bytes: usize = self
            .values
            .values()
            .map(|bm| 16 + bm.estimated_bytes())
            .sum();
        PostingStats {
            posting_lists: self.preds.len() + self.values.len(),
            bytes: pred_bytes + value_bytes,
            updates: self.updates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> EncodedTriple {
        [TermId(s), TermId(p), TermId(o)]
    }

    #[test]
    fn pred_tier_tracks_subjects_and_counts() {
        let mut pl = PostingLists::default();
        pl.note_insert(&t(1, 10, 100));
        pl.note_insert(&t(1, 10, 101)); // multi-valued: same subject twice
        pl.note_insert(&t(2, 10, 100));
        assert_eq!(pl.triples_for(TermId(10)), 3);
        let subjects = pl.subjects(TermId(10)).unwrap();
        assert_eq!(subjects.cardinality(), 2);

        // Removing one of the subject's two values keeps it listed.
        pl.note_remove(&t(1, 10, 100), false);
        assert!(pl.subjects(TermId(10)).unwrap().contains(1));
        assert_eq!(pl.triples_for(TermId(10)), 2);
        // Removing the last one drops it.
        pl.note_remove(&t(1, 10, 101), true);
        assert!(!pl.subjects(TermId(10)).unwrap().contains(1));

        // Last triple under the predicate drops the entry entirely.
        pl.note_remove(&t(2, 10, 100), true);
        assert!(pl.subjects(TermId(10)).is_none());
        assert_eq!(pl.triples_for(TermId(10)), 0);
    }

    #[test]
    fn value_tier_only_tracks_registered_preds() {
        let mut pl = PostingLists::default();
        pl.note_insert(&t(1, 10, 100));
        assert!(pl.value_subjects(TermId(10), TermId(100)).is_none());

        assert_eq!(pl.register(&[TermId(10)]), vec![TermId(10)]);
        assert!(pl.register(&[TermId(10)]).is_empty(), "idempotent");
        pl.backfill(TermId(10), [(TermId(1), TermId(100))].into_iter());
        pl.note_insert(&t(2, 10, 100));
        let bm = pl.value_subjects(TermId(10), TermId(100)).unwrap();
        assert!(bm.contains(1) && bm.contains(2));

        pl.note_remove(&t(1, 10, 100), true);
        pl.note_remove(&t(2, 10, 100), true);
        assert!(
            pl.value_subjects(TermId(10), TermId(100)).is_none(),
            "empty value bitmaps are dropped"
        );
    }

    #[test]
    fn rebuild_replays_triples_and_keeps_registrations() {
        let mut pl = PostingLists::default();
        pl.register(&[TermId(10)]);
        pl.note_insert(&t(9, 9, 9));
        pl.rebuild(&[t(1, 10, 100), t(2, 10, 101)]);
        assert_eq!(pl.triples_for(TermId(9)), 0, "rebuild starts clean");
        assert_eq!(pl.triples_for(TermId(10)), 2);
        assert!(pl
            .value_subjects(TermId(10), TermId(100))
            .unwrap()
            .contains(1));
        assert!(pl.stats().updates > 0);
    }

    #[test]
    fn stats_count_lists_and_bytes() {
        let mut pl = PostingLists::default();
        assert_eq!(pl.stats(), PostingStats::default());
        pl.register(&[TermId(10)]);
        pl.note_insert(&t(1, 10, 100));
        pl.note_insert(&t(1, 11, 100));
        let stats = pl.stats();
        assert_eq!(stats.posting_lists, 3, "two pred lists + one value list");
        assert!(stats.bytes > 0);
        assert_eq!(stats.updates, 2);

        let mut total = PostingStats::default();
        total.merge(stats);
        total.merge(stats);
        assert_eq!(total.posting_lists, 6);
    }
}
