//! Subject-hash sharding: partitioning write responsibility over a graph.
//!
//! A [`ShardRouter`] deterministically assigns every subject id to one of
//! `N` shards by Fx-hashing the id. Sharding does **not** split the
//! permutation indexes — POS/OSP orderings interleave subjects, so the
//! read path always sees one logical graph — it partitions the *write and
//! maintenance* work: a batch's affected subjects split into disjoint
//! per-shard buckets ([`ShardRouter::split_subjects`]), so the
//! view-maintenance engine can compute per-shard binding deltas on a
//! thread pool and merge them (row deltas are additive). The epoch store
//! ([`crate::epoch::EpochStore`]) uses the same routing to keep per-shard
//! epoch counters, so a lazily-maintained view can tell exactly which
//! shards changed in the epochs it missed.
//!
//! Hashing (rather than range-partitioning) the subject id keeps shards
//! balanced under the dense first-seen id assignment of the dictionary:
//! consecutive ids — which correlate strongly with insertion batches —
//! scatter uniformly.

use crate::delta::ChangeSet;
use crate::pattern::EncodedTriple;
use sofos_rdf::hash::FxHasher;
use sofos_rdf::TermId;
use std::hash::Hasher;

/// Deterministic subject → shard assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` shards (at least 1).
    pub fn new(shards: usize) -> ShardRouter {
        assert!(shards >= 1, "a store needs at least one shard");
        ShardRouter { shards }
    }

    /// The single-shard router: everything routes to shard 0 (the
    /// serialized baseline configuration).
    pub fn single() -> ShardRouter {
        ShardRouter::new(1)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning a subject.
    #[inline]
    pub fn shard_of(&self, subject: TermId) -> usize {
        if self.shards == 1 {
            return 0;
        }
        let mut hasher = FxHasher::default();
        hasher.write_u32(subject.0);
        (hasher.finish() % self.shards as u64) as usize
    }

    /// Partition subjects into per-shard buckets (bucket `i` holds the
    /// subjects of shard `i`; relative order within a bucket preserved).
    pub fn split_subjects(&self, subjects: impl IntoIterator<Item = TermId>) -> Vec<Vec<TermId>> {
        let mut buckets: Vec<Vec<TermId>> = vec![Vec::new(); self.shards];
        for s in subjects {
            buckets[self.shard_of(s)].push(s);
        }
        buckets
    }

    /// Which shards a net [`ChangeSet`] touched (across the default and
    /// all named graphs — view-graph rows live on their observation
    /// node's shard). `touched[i]` is true when shard `i` changed.
    pub fn touched_shards(&self, changes: &ChangeSet) -> Vec<bool> {
        let mut touched = vec![false; self.shards];
        let mut mark = |triples: &[EncodedTriple]| {
            for t in triples {
                touched[self.shard_of(t[0])] = true;
            }
        };
        mark(&changes.default_graph.inserted);
        mark(&changes.default_graph.removed);
        for graph in changes.named.values() {
            mark(&graph.inserted);
            mark(&graph.removed);
        }
        touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofos_rdf::Term;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let router = ShardRouter::new(4);
        for i in 0..1000u32 {
            let s = router.shard_of(TermId(i));
            assert!(s < 4);
            assert_eq!(s, router.shard_of(TermId(i)), "stable per id");
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let router = ShardRouter::single();
        assert_eq!(router.shards(), 1);
        for i in 0..100u32 {
            assert_eq!(router.shard_of(TermId(i)), 0);
        }
    }

    #[test]
    fn dense_ids_balance_across_shards() {
        // The dictionary hands out dense sequential ids; hashing must not
        // leave any shard starved (a range partition would put the whole
        // latest batch on one shard).
        let router = ShardRouter::new(4);
        let mut counts = [0usize; 4];
        for i in 0..4000u32 {
            counts[router.shard_of(TermId(i))] += 1;
        }
        for &c in &counts {
            assert!(
                (500..=1500).contains(&c),
                "shard sizes badly skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn split_subjects_partitions_exactly() {
        let router = ShardRouter::new(3);
        let subjects: Vec<TermId> = (0..60).map(TermId).collect();
        let buckets = router.split_subjects(subjects.iter().copied());
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 60);
        for (i, bucket) in buckets.iter().enumerate() {
            for s in bucket {
                assert_eq!(router.shard_of(*s), i);
            }
        }
    }

    #[test]
    fn touched_shards_reflect_changeset_subjects() {
        use crate::delta::Delta;
        use crate::Dataset;
        let mut ds = Dataset::new();
        let router = ShardRouter::new(4);
        let mut delta = Delta::new();
        delta.insert(
            Term::iri("http://e/s1"),
            Term::iri("http://e/p"),
            Term::iri("http://e/o"),
        );
        let changes = ds.apply(delta);
        let touched = router.touched_shards(&changes);
        let s1 = ds.dict().get_id(&Term::iri("http://e/s1")).unwrap();
        assert_eq!(touched.iter().filter(|&&t| t).count(), 1);
        assert!(touched[router.shard_of(s1)]);
    }
}
