//! Graph statistics: cardinalities feeding the cost models and the planner.
//!
//! Three of the paper's cost models are direct statistics of a (view) graph:
//! `#triples` (`|G_Vi|`), `#nodes` (`|I_i ∪ B_i ∪ L_i|`), and
//! `#aggregated values` (result count, computed by the evaluator). The
//! learned cost model additionally consumes per-predicate frequencies
//! ("statistics about the relationship frequency and the attribute
//! frequency", §3.1), which [`GraphStats`] provides. The SPARQL planner uses
//! [`GraphStats::estimate_pattern`] for join ordering.

use crate::index::GraphStore;
use crate::pattern::IdPattern;
use sofos_rdf::{FxHashMap, FxHashSet, TermId};

/// Per-predicate cardinalities.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PredicateStats {
    /// Number of triples with this predicate.
    pub count: usize,
    /// Distinct subjects appearing with this predicate.
    pub distinct_subjects: usize,
    /// Distinct objects appearing with this predicate.
    pub distinct_objects: usize,
}

/// Whole-graph statistics snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Total triples.
    pub triples: usize,
    /// Distinct subject terms.
    pub distinct_subjects: usize,
    /// Distinct object terms.
    pub distinct_objects: usize,
    /// Distinct *node* terms (subjects ∪ objects) — the paper's
    /// `|I ∪ B ∪ L|`; predicates are edge labels and not counted.
    pub distinct_nodes: usize,
    /// Distinct predicates.
    pub distinct_predicates: usize,
    /// Per-predicate breakdown.
    pub predicates: FxHashMap<TermId, PredicateStats>,
}

impl GraphStats {
    /// Compute statistics with one pass over the graph.
    pub fn compute(store: &GraphStore) -> GraphStats {
        let mut subjects: FxHashSet<TermId> = FxHashSet::default();
        let mut objects: FxHashSet<TermId> = FxHashSet::default();
        let mut per_pred: FxHashMap<TermId, (usize, FxHashSet<TermId>, FxHashSet<TermId>)> =
            FxHashMap::default();

        for [s, p, o] in store.iter() {
            subjects.insert(s);
            objects.insert(o);
            let entry = per_pred.entry(p).or_default();
            entry.0 += 1;
            entry.1.insert(s);
            entry.2.insert(o);
        }

        let distinct_nodes = subjects.union(&objects).count();
        let predicates = per_pred
            .into_iter()
            .map(|(p, (count, subj, obj))| {
                (
                    p,
                    PredicateStats {
                        count,
                        distinct_subjects: subj.len(),
                        distinct_objects: obj.len(),
                    },
                )
            })
            .collect::<FxHashMap<_, _>>();

        GraphStats {
            triples: store.len(),
            distinct_subjects: subjects.len(),
            distinct_objects: objects.len(),
            distinct_nodes,
            distinct_predicates: predicates.len(),
            predicates,
        }
    }

    /// Frequency of a predicate (0 when absent) — a learned-model feature.
    pub fn predicate_count(&self, p: TermId) -> usize {
        self.predicates.get(&p).map_or(0, |s| s.count)
    }

    /// Estimated result cardinality of a triple pattern, for join ordering.
    ///
    /// Uses the classic independence heuristics: a bound predicate narrows
    /// to its frequency; bound subject/object divide by the corresponding
    /// distinct counts (uniformity assumption).
    pub fn estimate_pattern(&self, pattern: IdPattern) -> f64 {
        if self.triples == 0 {
            return 0.0;
        }
        let mut estimate = match pattern.p {
            Some(p) => self.predicate_count(p) as f64,
            None => self.triples as f64,
        };
        if pattern.s.is_some() {
            let denom = match pattern.p {
                Some(p) => self
                    .predicates
                    .get(&p)
                    .map_or(1, |st| st.distinct_subjects.max(1)),
                None => self.distinct_subjects.max(1),
            };
            estimate /= denom as f64;
        }
        if pattern.o.is_some() {
            let denom = match pattern.p {
                Some(p) => self
                    .predicates
                    .get(&p)
                    .map_or(1, |st| st.distinct_objects.max(1)),
                None => self.distinct_objects.max(1),
            };
            estimate /= denom as f64;
        }
        estimate
    }
}

/// Reference-counted live statistics, updated per insert/remove instead of
/// recomputed with a full pass — the statistics half of the update path
/// (`Dataset::apply`). Distinct counts are maintained exactly (not
/// sketched) by keeping per-term occurrence counts; a term leaves a
/// distinct set when its last occurrence is removed.
#[derive(Debug, Clone, Default)]
pub struct StatsTracker {
    triples: usize,
    subjects: FxHashMap<TermId, usize>,
    objects: FxHashMap<TermId, usize>,
    /// Occurrences as subject *or* object (each triple contributes two).
    nodes: FxHashMap<TermId, usize>,
    predicates: FxHashMap<TermId, PredTracker>,
}

#[derive(Debug, Clone, Default)]
struct PredTracker {
    count: usize,
    subjects: FxHashMap<TermId, usize>,
    objects: FxHashMap<TermId, usize>,
}

fn ref_inc(map: &mut FxHashMap<TermId, usize>, key: TermId) {
    *map.entry(key).or_insert(0) += 1;
}

fn ref_dec(map: &mut FxHashMap<TermId, usize>, key: TermId) {
    match map.get_mut(&key) {
        Some(n) if *n > 1 => *n -= 1,
        Some(_) => {
            map.remove(&key);
        }
        None => debug_assert!(false, "refcount underflow for {key:?}"),
    }
}

impl StatsTracker {
    /// Build a tracker from an existing store (one pass).
    pub fn from_store(store: &GraphStore) -> StatsTracker {
        let mut tracker = StatsTracker::default();
        for triple in store.iter() {
            tracker.record_insert(&triple);
        }
        tracker
    }

    /// Account for a triple that was actually inserted (caller must have
    /// established it was new).
    pub fn record_insert(&mut self, &[s, p, o]: &[TermId; 3]) {
        self.triples += 1;
        ref_inc(&mut self.subjects, s);
        ref_inc(&mut self.objects, o);
        ref_inc(&mut self.nodes, s);
        ref_inc(&mut self.nodes, o);
        let pred = self.predicates.entry(p).or_default();
        pred.count += 1;
        ref_inc(&mut pred.subjects, s);
        ref_inc(&mut pred.objects, o);
    }

    /// Account for a triple that was actually removed (caller must have
    /// established it was present).
    pub fn record_remove(&mut self, &[s, p, o]: &[TermId; 3]) {
        debug_assert!(self.triples > 0, "remove on empty tracker");
        self.triples = self.triples.saturating_sub(1);
        ref_dec(&mut self.subjects, s);
        ref_dec(&mut self.objects, o);
        ref_dec(&mut self.nodes, s);
        ref_dec(&mut self.nodes, o);
        if let Some(pred) = self.predicates.get_mut(&p) {
            pred.count -= 1;
            ref_dec(&mut pred.subjects, s);
            ref_dec(&mut pred.objects, o);
            if pred.count == 0 {
                self.predicates.remove(&p);
            }
        } else {
            debug_assert!(false, "remove for untracked predicate {p:?}");
        }
    }

    /// Current triple count.
    pub fn triples(&self) -> usize {
        self.triples
    }

    /// Materialize the current counters as a [`GraphStats`] snapshot
    /// (cost: one pass over the *predicate* map, not the graph).
    pub fn snapshot(&self) -> GraphStats {
        GraphStats {
            triples: self.triples,
            distinct_subjects: self.subjects.len(),
            distinct_objects: self.objects.len(),
            distinct_nodes: self.nodes.len(),
            distinct_predicates: self.predicates.len(),
            predicates: self
                .predicates
                .iter()
                .map(|(&p, t)| {
                    (
                        p,
                        PredicateStats {
                            count: t.count,
                            distinct_subjects: t.subjects.len(),
                            distinct_objects: t.objects.len(),
                        },
                    )
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> [TermId; 3] {
        [TermId(s), TermId(p), TermId(o)]
    }

    fn sample_store() -> GraphStore {
        let mut g = GraphStore::new();
        // Predicate 10: star around subjects 1,2 (4 triples).
        g.insert(t(1, 10, 100));
        g.insert(t(1, 10, 101));
        g.insert(t(2, 10, 100));
        g.insert(t(2, 10, 102));
        // Predicate 11: single triple.
        g.insert(t(3, 11, 100));
        g
    }

    #[test]
    fn totals() {
        let stats = GraphStats::compute(&sample_store());
        assert_eq!(stats.triples, 5);
        assert_eq!(stats.distinct_subjects, 3); // 1,2,3
        assert_eq!(stats.distinct_objects, 3); // 100,101,102
        assert_eq!(stats.distinct_predicates, 2);
        // Nodes: {1,2,3} ∪ {100,101,102} = 6 (disjoint here).
        assert_eq!(stats.distinct_nodes, 6);
    }

    #[test]
    fn per_predicate_breakdown() {
        let stats = GraphStats::compute(&sample_store());
        let p10 = &stats.predicates[&TermId(10)];
        assert_eq!(p10.count, 4);
        assert_eq!(p10.distinct_subjects, 2);
        assert_eq!(p10.distinct_objects, 3);
        let p11 = &stats.predicates[&TermId(11)];
        assert_eq!(p11.count, 1);
        assert_eq!(stats.predicate_count(TermId(99)), 0);
    }

    #[test]
    fn nodes_count_shared_terms_once() {
        let mut g = GraphStore::new();
        // 1 appears both as subject and object.
        g.insert(t(1, 10, 2));
        g.insert(t(2, 10, 1));
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.distinct_nodes, 2);
    }

    #[test]
    fn estimates_shrink_with_bound_positions() {
        let stats = GraphStats::compute(&sample_store());
        let all = stats.estimate_pattern(IdPattern::ANY);
        let by_p = stats.estimate_pattern(IdPattern::new(None, Some(TermId(10)), None));
        let by_ps = stats.estimate_pattern(IdPattern::new(Some(TermId(1)), Some(TermId(10)), None));
        assert_eq!(all, 5.0);
        assert_eq!(by_p, 4.0);
        assert!(by_ps < by_p);
        assert!(by_ps > 0.0);
    }

    #[test]
    fn empty_graph_estimates_zero() {
        let stats = GraphStats::compute(&GraphStore::new());
        assert_eq!(stats.estimate_pattern(IdPattern::ANY), 0.0);
        assert_eq!(stats.triples, 0);
        assert_eq!(stats.distinct_nodes, 0);
    }

    #[test]
    fn tracker_agrees_with_compute_under_churn() {
        let mut store = GraphStore::new();
        let mut tracker = StatsTracker::default();
        // Deterministic insert/remove mix, including re-inserts.
        let mut ops: Vec<(bool, [TermId; 3])> = Vec::new();
        for i in 0u32..200 {
            ops.push((true, t(i % 9, i % 4, i % 13)));
        }
        for i in 0u32..120 {
            ops.push((false, t((i * 3) % 9, i % 4, (i * 7) % 13)));
        }
        for i in 0u32..60 {
            ops.push((true, t((i * 5) % 9, (i + 1) % 4, i % 13)));
        }
        for (is_insert, triple) in ops {
            if is_insert {
                if store.insert(triple) {
                    tracker.record_insert(&triple);
                }
            } else if store.remove(&triple) {
                tracker.record_remove(&triple);
            }
        }
        assert_eq!(tracker.snapshot(), GraphStats::compute(&store));
        assert_eq!(tracker.triples(), store.len());
    }

    #[test]
    fn tracker_from_store_matches_compute() {
        let store = sample_store();
        let tracker = StatsTracker::from_store(&store);
        assert_eq!(tracker.snapshot(), GraphStats::compute(&store));
    }

    #[test]
    fn tracker_shared_node_refcounts() {
        let mut tracker = StatsTracker::default();
        // 1 appears as subject and object of different triples.
        tracker.record_insert(&t(1, 10, 2));
        tracker.record_insert(&t(2, 10, 1));
        assert_eq!(tracker.snapshot().distinct_nodes, 2);
        tracker.record_remove(&t(1, 10, 2));
        // 1 survives as an object, 2 as a subject.
        assert_eq!(tracker.snapshot().distinct_nodes, 2);
        tracker.record_remove(&t(2, 10, 1));
        assert_eq!(tracker.snapshot(), GraphStats::default());
    }
}
