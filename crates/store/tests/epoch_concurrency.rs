//! Property: concurrent readers of an [`EpochStore`] observe only
//! epoch-consistent states.
//!
//! K reader threads pin snapshots while a writer applies a batch stream;
//! every observed state must equal the state after some *serial prefix*
//! of the stream — readers can be stale, but they can never see a
//! half-applied batch or a state that no prefix produces. The check is
//! exact: epoch numbers count applied batches, so each pinned snapshot is
//! compared against the independently-computed state of *its own* prefix,
//! and per-reader epochs must be monotone (time never runs backwards for
//! a single reader).

use proptest::prelude::*;
use sofos_rdf::Term;
use sofos_store::{Dataset, Delta, EncodedTriple, EpochStore};

/// One generated operation: insert (true) or delete of `s --p--> o`.
type Op = (bool, u8, u8, u8);

fn op_delta(ops: &[Op]) -> Delta {
    let mut delta = Delta::new();
    for &(insert, s, p, o) in ops {
        let s = Term::iri(format!("http://e/s{s}"));
        let p = Term::iri(format!("http://e/p{p}"));
        let o = Term::iri(format!("http://e/o{o}"));
        if insert {
            delta.insert(s, p, o);
        } else {
            delta.delete(s, p, o);
        }
    }
    delta
}

/// The default graph's triples, sorted — the state fingerprint.
fn fingerprint(dataset: &Dataset) -> Vec<EncodedTriple> {
    dataset.default_graph().iter().collect()
}

/// Serial reference: the fingerprint after every prefix of the stream.
/// Dictionary ids are deterministic in apply order, so the reference and
/// the concurrent store assign identical encodings.
fn prefix_states(batches: &[Vec<Op>]) -> Vec<Vec<EncodedTriple>> {
    let mut dataset = Dataset::new();
    let mut states = vec![fingerprint(&dataset)];
    for batch in batches {
        dataset.apply(op_delta(batch));
        states.push(fingerprint(&dataset));
    }
    states
}

/// Run the concurrent schedule: one writer applying `batches`, `readers`
/// threads pinning and fingerprinting as fast as they can. Panics (and
/// thus fails the test) on any inconsistent observation.
fn run_concurrent(batches: &[Vec<Op>], shards: usize, readers: usize, pins_per_reader: usize) {
    let store = std::sync::Arc::new(EpochStore::new(Dataset::new(), shards));
    let expected = prefix_states(batches);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(readers);
        for _ in 0..readers {
            let store = std::sync::Arc::clone(&store);
            let expected = &expected;
            handles.push(scope.spawn(move || {
                let mut last_epoch = 0u64;
                for _ in 0..pins_per_reader {
                    let snapshot = store.pin();
                    let epoch = snapshot.epoch();
                    assert!(epoch >= last_epoch, "a reader's epochs went backwards");
                    last_epoch = epoch;
                    let observed = fingerprint(snapshot.dataset());
                    assert_eq!(
                        observed, expected[epoch as usize],
                        "epoch {epoch} is not the serial prefix state"
                    );
                }
            }));
        }
        for batch in batches {
            store.apply(op_delta(batch));
        }
        for handle in handles {
            handle.join().expect("reader observed only prefix states");
        }
    });
    // The writer's final publish is the full stream.
    assert_eq!(store.epoch() as usize, batches.len());
    assert_eq!(
        fingerprint(store.pin().dataset()),
        expected[batches.len()],
        "the final epoch equals the fully-applied stream"
    );
}

proptest! {
    /// The tentpole invariant, under arbitrary insert/delete streams and
    /// shard counts.
    #[test]
    fn concurrent_reads_equal_serial_prefixes(
        batches in proptest::collection::vec(
            proptest::collection::vec(
                (proptest::bool::weighted(0.7), 0u8..12, 0u8..4, 0u8..12),
                0..8,
            ),
            1..12,
        ),
        shards in 1usize..6,
    ) {
        run_concurrent(&batches, shards, 3, 40);
    }
}

#[test]
fn long_stream_with_many_readers() {
    // A heavier deterministic schedule than the proptest cases: enough
    // batches that readers genuinely interleave mid-stream.
    let batches: Vec<Vec<Op>> = (0..60)
        .map(|i| {
            (0..6)
                .map(|j| {
                    let n = (i * 6 + j) as u8;
                    (!n.is_multiple_of(5), n % 23, n % 3, n % 17)
                })
                .collect()
        })
        .collect();
    run_concurrent(&batches, 4, 4, 150);
}

#[test]
fn retire_accounting_converges() {
    // After every reader drops its pins, only the current snapshot is
    // live, no matter how the run interleaved.
    let store = std::sync::Arc::new(EpochStore::new(Dataset::new(), 4));
    std::thread::scope(|scope| {
        let reader_store = std::sync::Arc::clone(&store);
        let reader = scope.spawn(move || {
            let mut held = Vec::new();
            for _ in 0..50 {
                held.push(reader_store.pin());
            }
            drop(held);
        });
        for i in 0..30 {
            store.apply(op_delta(&[(true, i as u8, 0, i as u8)]));
        }
        reader.join().expect("reader ran clean");
    });
    assert_eq!(store.live_snapshots(), 1, "only the current epoch survives");
    assert_eq!(store.published_snapshots() - store.retired_snapshots(), 1);
}
