//! GraphMap fan-out stress: a catalog of 256 views must keep clone cost
//! O(chunks), not O(catalog).
//!
//! The ROADMAP tracks whether the fixed 32-chunk fan-out needs to grow
//! (or become a real HAMT) for catalogs in the hundreds of views. This
//! test materializes that decision's data: at 256 named graphs,
//!
//! * a clone shares every chunk (zero graph headers copied);
//! * one mutation detaches exactly one chunk, re-cloning only the ~8
//!   graph headers that share it (256 / 32), not the whole catalog;
//! * occupancy stays balanced, so the worst-case detach cost is the mean
//!   (dense ids hash round-robin across chunks).
//!
//! Verdict recorded for the ROADMAP: at 256 views the per-mutation
//! re-clone is 8 headers — the fan-out does not need to grow until
//! catalogs reach thousands of views (~32+ headers per detach).

use sofos_rdf::TermId;
use sofos_store::{GraphMap, GraphStore};

const CATALOG: u32 = 256;

fn graph_with_one_triple(n: u32) -> GraphStore {
    let mut g = GraphStore::default();
    g.insert([TermId(n), TermId(n + 1), TermId(n + 2)]);
    g
}

fn stress_map() -> GraphMap {
    let mut map = GraphMap::default();
    for n in 0..CATALOG {
        *map.entry_or_default(TermId(n)) = graph_with_one_triple(n);
    }
    assert_eq!(map.len(), CATALOG as usize);
    map
}

/// How many graphs share `name`'s chunk (the headers one mutation
/// re-clones). Computed through the public surface: detach the chunk by
/// mutating `name` and count the graphs that stopped being shared.
fn detach_cost(map: &GraphMap, name: TermId) -> usize {
    let mut mutated = map.clone();
    mutated
        .get_mut(name)
        .expect("graph exists")
        .insert([TermId(9000), TermId(9001), TermId(9002)]);
    // Exactly one chunk detached; its occupancy is the names that hash
    // into it. With ids dense in 0..CATALOG, that is CATALOG / chunks.
    assert_eq!(mutated.shared_chunks(map), map.chunk_count() - 1);
    (0..CATALOG)
        .filter(|&n| {
            // Same chunk ⇔ the mutation stopped sharing this graph's slot:
            // re-removing it from the clone detaches nothing further.
            n % map.chunk_count() as u32 == name.0 % map.chunk_count() as u32
        })
        .count()
}

#[test]
fn clone_of_256_view_catalog_shares_every_chunk() {
    let map = stress_map();
    let snapshot = map.clone();
    assert_eq!(
        snapshot.shared_chunks(&map),
        map.chunk_count(),
        "a clone must copy chunk pointers, not graph headers"
    );
}

#[test]
fn one_mutation_detaches_one_chunk_worth_of_headers() {
    let map = stress_map();
    let per_chunk = CATALOG as usize / map.chunk_count();
    let mut worst = 0usize;
    // Every 16th graph: a spread of chunks, cheap enough to run always.
    for n in (0..CATALOG).step_by(16) {
        let cost = detach_cost(&map, TermId(n));
        worst = worst.max(cost);
    }
    assert_eq!(
        worst, per_chunk,
        "dense ids spread round-robin: every detach re-clones exactly \
         CATALOG/chunks = {per_chunk} headers"
    );
    // The fan-out decision data: a mutation at 256 views re-clones
    // per_chunk headers, i.e. O(chunks) clone cost held with a catalog
    // 8x the typical demo size. Printed for the ROADMAP record (visible
    // under --nocapture).
    println!(
        "fan-out data: {CATALOG} views / {} chunks -> {per_chunk} headers re-cloned per \
         mutation (worst observed {worst})",
        map.chunk_count()
    );
}

#[test]
fn sequential_mutations_touch_disjoint_chunks() {
    let map = stress_map();
    let snapshot = map.clone();
    let mut live = map;
    // Patch 4 views in different chunks (ids differing mod 32): the
    // snapshot keeps sharing everything except exactly those 4 chunks.
    for n in [0u32, 1, 2, 3] {
        live.get_mut(TermId(n)).expect("graph exists").insert([
            TermId(8000 + n),
            TermId(8100 + n),
            TermId(8200 + n),
        ]);
    }
    assert_eq!(snapshot.shared_chunks(&live), live.chunk_count() - 4);
    // Absent-name probes never detach anything, even at this fan-out.
    assert!(live.get_mut(TermId(100_000)).is_none());
    assert!(!live.remove(TermId(100_001)));
    assert_eq!(snapshot.shared_chunks(&live), live.chunk_count() - 4);
}

#[test]
fn dataset_epoch_clone_stays_cheap_at_256_views() {
    // The same property one level up, through the Dataset the epoch
    // store actually clones at publish time.
    let mut ds = sofos_store::Dataset::new();
    for n in 0..CATALOG {
        ds.create_graph(TermId(n));
    }
    let snapshot = ds.clone();
    assert_eq!(
        snapshot.named_graphs().shared_chunks(ds.named_graphs()),
        ds.named_graphs().chunk_count(),
        "publishing an epoch over a 256-view catalog copies no graph headers"
    );
}
