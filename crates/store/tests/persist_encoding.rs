//! Property coverage for the persistence wire format: every value the
//! epoch log and snapshot files can carry round-trips bit-exactly, and
//! no corrupted or truncated input can panic a decoder — recovery reads
//! whatever a crash left on disk, so the decoders' total-function
//! contract is load-bearing, not cosmetic.

use proptest::prelude::*;
use sofos_rdf::{Iri, Literal, Term, TermId};
use sofos_store::persist::encode::{put_term, put_triple, Reader};
use sofos_store::persist::log::{frame, scan, GraphOps, Record};
use sofos_store::persist::snapshot::decode_snapshot;
use sofos_store::EncodedTriple;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// Every term kind the dictionary can hold, including typed literals and
/// blank labels — the full tag table of `persist::encode`.
fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        "[a-z0-9/:#._-]{0,24}".prop_map(|s| Term::iri(format!("http://e/{s}"))),
        "[A-Za-z0-9]{1,16}".prop_map(Term::blank),
        "[ -~]{0,24}".prop_map(|s| Term::literal_str(&s)),
        ("[ -~]{0,16}", "[a-z]{2,8}")
            .prop_map(|(lex, lang)| Term::Literal(Literal::lang_string(lex, lang))),
        ("[ -~]{0,16}", "[a-z/:#.]{1,16}").prop_map(|(lex, dt)| {
            Term::Literal(Literal::typed(
                lex,
                Iri::new_unchecked(format!("http://t/{dt}")),
            ))
        }),
        (-1_000_000i64..1_000_000).prop_map(Term::literal_int),
    ]
}

fn triple_strategy() -> impl Strategy<Value = EncodedTriple> {
    (0u32..5000, 0u32..5000, 0u32..5000).prop_map(|(s, p, o)| [TermId(s), TermId(p), TermId(o)])
}

fn graph_ops_strategy() -> impl Strategy<Value = GraphOps> {
    (
        proptest::option::of(0u32..64),
        proptest::collection::vec(triple_strategy(), 0..12),
        proptest::collection::vec(triple_strategy(), 0..12),
    )
        .prop_map(|(graph, inserted, removed)| GraphOps {
            graph: graph.map(TermId),
            inserted,
            removed,
        })
}

fn record_strategy() -> impl Strategy<Value = Record> {
    (
        0u64..1_000_000,
        0u64..100_000,
        proptest::collection::vec(term_strategy(), 0..10),
        proptest::option::of(proptest::collection::vec((0u64..256, 0u64..100_000), 0..6)),
        proptest::collection::vec(graph_ops_strategy(), 0..4),
    )
        .prop_map(|(epoch, dict_start, dict_tail, catalog, graphs)| Record {
            epoch,
            dict_start,
            dict_tail,
            catalog,
            graphs,
        })
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

proptest! {
    /// Terms of every kind survive encode → decode bit-exactly.
    #[test]
    fn terms_round_trip(terms in proptest::collection::vec(term_strategy(), 1..20)) {
        let mut bytes = Vec::new();
        for term in &terms {
            put_term(&mut bytes, term);
        }
        let mut reader = Reader::new(&bytes);
        for term in &terms {
            prop_assert_eq!(&reader.term().expect("round trip decodes"), term);
        }
        prop_assert!(reader.is_empty());
    }

    /// Id-level triples round-trip through the varint encoding.
    #[test]
    fn triples_round_trip(triples in proptest::collection::vec(triple_strategy(), 1..30)) {
        let mut bytes = Vec::new();
        for triple in &triples {
            put_triple(&mut bytes, triple);
        }
        let mut reader = Reader::new(&bytes);
        for triple in &triples {
            prop_assert_eq!(&reader.triple().expect("round trip decodes"), triple);
        }
        prop_assert!(reader.is_empty());
    }

    /// Whole log records — dict tails, catalogs, per-graph op sets —
    /// round-trip through the framed payload codec.
    #[test]
    fn records_round_trip(record in record_strategy()) {
        let decoded = Record::decode_payload(&record.encode_payload())
            .expect("encoded record decodes");
        prop_assert_eq!(decoded, record);
    }

    /// A framed record stream scans back to exactly the records written.
    #[test]
    fn framed_streams_scan_back(records in proptest::collection::vec(record_strategy(), 1..6)) {
        let mut bytes = Vec::new();
        for record in &records {
            bytes.extend_from_slice(&frame(&record.encode_payload()));
        }
        let result = scan(&bytes);
        prop_assert_eq!(result.valid_len, bytes.len() as u64);
        prop_assert_eq!(&result.records, &records);
    }

    // -----------------------------------------------------------------------
    // Hostile input: decoders error, never panic
    // -----------------------------------------------------------------------

    /// Truncating a record payload at any byte yields an error, not a
    /// panic or a silently-wrong record.
    #[test]
    fn truncated_record_errors(record in record_strategy(), fraction in 0.0f64..1.0) {
        let payload = record.encode_payload();
        let cut = ((payload.len() as f64) * fraction) as usize;
        if cut < payload.len() {
            prop_assert!(Record::decode_payload(&payload[..cut]).is_err());
        }
    }

    /// A single flipped byte anywhere in a framed stream never panics the
    /// scanner, and everything before the damaged frame still decodes.
    #[test]
    fn corrupted_streams_scan_a_clean_prefix(
        records in proptest::collection::vec(record_strategy(), 1..5),
        flip_at in 0.0f64..1.0,
        flip_bits in 1u8..=255,
    ) {
        let mut bytes = Vec::new();
        let mut offsets = Vec::new();
        for record in &records {
            offsets.push(bytes.len());
            bytes.extend_from_slice(&frame(&record.encode_payload()));
        }
        let pos = ((bytes.len() as f64) * flip_at) as usize;
        let pos = pos.min(bytes.len() - 1);
        bytes[pos] ^= flip_bits;
        let result = scan(&bytes);
        // The CRC stops the scan at (or before) the damaged frame; every
        // decoded record is one of the originals, in order.
        let damaged_frame = offsets.iter().filter(|&&o| o <= pos).count() - 1;
        prop_assert!(result.records.len() <= records.len());
        prop_assert!(
            result.records.len() <= damaged_frame + 1,
            "scan read past the damaged frame"
        );
        for (got, want) in result.records.iter().zip(&records) {
            prop_assert_eq!(got, want);
        }
    }

    /// Arbitrary byte soup never panics any decoder.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..300)) {
        let _ = scan(&bytes);
        let _ = Record::decode_payload(&bytes);
        let _ = decode_snapshot(&bytes);
        let mut reader = Reader::new(&bytes);
        while reader.term().is_ok() {}
    }
}
