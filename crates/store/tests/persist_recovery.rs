//! Crash-point properties of the durable epoch store: wherever a crash
//! lands — between prepare and publish, mid-log-append, mid-snapshot —
//! recovery must land on **exactly** the state of some published epoch
//! (never a torn or invented state), and an acknowledged publish must
//! never be lost.
//!
//! Crashes are simulated from the outside: run a durable store, drop it,
//! then damage the on-disk files the way an interrupted write would
//! (truncate the log at an arbitrary byte, corrupt or orphan snapshot
//! files) and recover from what's left.

use proptest::prelude::*;
use sofos_rdf::Term;
use sofos_store::{
    Dataset, Delta, DurabilityConfig, EncodedTriple, EpochStore, Persister, Recovered,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One generated operation: insert (true) or delete of `s --p--> o`.
type Op = (bool, u8, u8, u8);

fn op_delta(ops: &[Op]) -> Delta {
    let mut delta = Delta::new();
    for &(insert, s, p, o) in ops {
        let s = Term::iri(format!("http://e/s{s}"));
        let p = Term::iri(format!("http://e/p{p}"));
        let o = Term::iri(format!("http://e/o{o}"));
        if insert {
            delta.insert(s, p, o);
        } else {
            delta.delete(s, p, o);
        }
    }
    delta
}

/// The default graph's triples, sorted — the state fingerprint.
fn fingerprint(dataset: &Dataset) -> Vec<EncodedTriple> {
    dataset.default_graph().iter().collect()
}

/// Serial reference: the fingerprint after every prefix of the stream.
fn prefix_states(batches: &[Vec<Op>]) -> Vec<Vec<EncodedTriple>> {
    let mut dataset = Dataset::new();
    let mut states = vec![fingerprint(&dataset)];
    for batch in batches {
        dataset.apply(op_delta(batch));
        states.push(fingerprint(&dataset));
    }
    states
}

/// A unique scratch directory (std-only; removed by each test's cleanup).
fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sofos-recover-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).expect("scratch dir creates");
    dir
}

fn config(dir: &Path, snapshot_every: u64) -> DurabilityConfig {
    // fsync off: these tests crash the *process state*, not the kernel,
    // so buffered writes are always visible to the recovering open.
    DurabilityConfig::new(dir)
        .snapshot_every(snapshot_every)
        .fsync(false)
}

/// Open a fresh durable store on `dir` (baselining an empty dataset,
/// exactly as the engine does on a fresh data dir).
fn fresh_store(dir: &Path, snapshot_every: u64, shards: usize) -> EpochStore {
    let (persister, recovered) =
        Persister::open(config(dir, snapshot_every)).expect("fresh dir opens");
    assert!(recovered.is_none(), "fresh dir must not recover");
    let dataset = Dataset::new();
    persister
        .baseline(&dataset, 0, &[])
        .expect("baseline writes");
    EpochStore::recovered(dataset, shards, 0, Arc::new(persister))
}

/// Recover whatever is on disk.
fn recover(dir: &Path) -> Recovered {
    let (_persister, recovered) = Persister::open(config(dir, 1 << 30)).expect("recovery opens");
    recovered.expect("prior state exists")
}

/// Apply the full stream durably, then drop the store (a "clean crash":
/// everything reached the files, nothing was closed gracefully — there
/// is no graceful close; the log is append-only).
fn run_stream(dir: &Path, batches: &[Vec<Op>], snapshot_every: u64, shards: usize) {
    let store = fresh_store(dir, snapshot_every, shards);
    for batch in batches {
        store.apply(op_delta(batch));
    }
}

proptest! {
    /// Truncating the log at ANY byte (a crash mid-append, or a torn
    /// final sector) recovers exactly a published prefix: the recovered
    /// epoch indexes the serial prefix states, and the torn tail is
    /// counted and discarded.
    #[test]
    fn torn_log_recovers_a_published_prefix(
        batches in proptest::collection::vec(
            proptest::collection::vec(
                (proptest::bool::weighted(0.7), 0u8..12, 0u8..4, 0u8..12),
                0..6,
            ),
            1..8,
        ),
        cut_fraction in 0.0f64..1.0,
    ) {
        let dir = scratch_dir("torn");
        run_stream(&dir, &batches, 1 << 30, 2);
        let expected = prefix_states(&batches);

        let log_path = dir.join("epoch.log");
        let full_len = fs::metadata(&log_path).expect("log exists").len();
        // fraction ∈ [0, 1) over full_len + 1 positions ⇒ cut ∈ [0, full_len].
        let cut = (((full_len + 1) as f64) * cut_fraction) as u64;
        let cut = cut.min(full_len);
        fs::OpenOptions::new()
            .write(true)
            .open(&log_path)
            .expect("log opens")
            .set_len(cut)
            .expect("truncates");

        let rec = recover(&dir);
        prop_assert!(rec.epoch as usize <= batches.len());
        prop_assert_eq!(
            fingerprint(&rec.dataset),
            expected[rec.epoch as usize].clone(),
            "recovered state is not the serial prefix at epoch {}", rec.epoch
        );
        if cut == full_len {
            prop_assert_eq!(rec.epoch as usize, batches.len(), "nothing cut, nothing lost");
            prop_assert_eq!(rec.truncated_bytes, 0);
        }
        fs::remove_dir_all(&dir).ok();
    }

    /// With a snapshot cadence in play, recovery = newest snapshot + the
    /// log tail past it — and always lands on the full stream when the
    /// files are intact.
    #[test]
    fn snapshot_plus_tail_recovers_everything(
        batches in proptest::collection::vec(
            proptest::collection::vec(
                (proptest::bool::weighted(0.7), 0u8..10, 0u8..3, 0u8..10),
                0..5,
            ),
            1..10,
        ),
        snapshot_every in 1u64..4,
    ) {
        let dir = scratch_dir("cadence");
        run_stream(&dir, &batches, snapshot_every, 3);
        let expected = prefix_states(&batches);

        let rec = recover(&dir);
        prop_assert_eq!(rec.epoch as usize, batches.len());
        prop_assert_eq!(fingerprint(&rec.dataset), expected[batches.len()].clone());
        prop_assert!(
            rec.snapshot_epoch > 0 || batches.len() < snapshot_every as usize,
            "a cadence snapshot should have been taken"
        );
        // Replay covered exactly the epochs past the snapshot.
        prop_assert_eq!(
            rec.replayed_records,
            batches.len() as u64 - rec.snapshot_epoch
        );
        fs::remove_dir_all(&dir).ok();
    }

    /// A crash mid-snapshot leaves either a `.tmp` orphan or a damaged
    /// newest file; recovery ignores both and falls back to the previous
    /// snapshot plus a longer log tail — still the exact final state.
    #[test]
    fn damaged_snapshot_falls_back_to_log(
        batches in proptest::collection::vec(
            proptest::collection::vec(
                (proptest::bool::weighted(0.7), 0u8..10, 0u8..3, 0u8..10),
                1..5,
            ),
            2..8,
        ),
        damage_kind in 0u8..3,
    ) {
        let dir = scratch_dir("midsnap");
        run_stream(&dir, &batches, 2, 2);
        let expected = prefix_states(&batches);

        // Find the newest complete snapshot and damage it the way an
        // interrupted writer would have.
        let mut snapshots: Vec<PathBuf> = fs::read_dir(&dir)
            .expect("dir lists")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                    n.starts_with("snapshot-") && n.ends_with(".bin")
                })
            })
            .collect();
        snapshots.sort();
        if let Some(newest) = snapshots.last() {
            match damage_kind {
                0 => {
                    // Torn write: half the file.
                    let len = fs::metadata(newest).expect("meta").len();
                    fs::OpenOptions::new()
                        .write(true)
                        .open(newest)
                        .expect("opens")
                        .set_len(len / 2)
                        .expect("truncates");
                }
                1 => {
                    // Bit rot: flip a payload byte (past the 8-byte frame
                    // header so the length still reads).
                    let mut bytes = fs::read(newest).expect("reads");
                    if bytes.len() > 9 {
                        let mid = bytes.len() / 2;
                        bytes[mid] ^= 0xFF;
                        fs::write(newest, bytes).expect("writes");
                    }
                }
                _ => {
                    // Crash before the rename: the snapshot never made it
                    // out of its tmp name.
                    let tmp = newest.with_extension("bin.tmp");
                    fs::rename(newest, tmp).expect("renames");
                }
            }
        }

        let rec = recover(&dir);
        prop_assert_eq!(rec.epoch as usize, batches.len());
        prop_assert_eq!(fingerprint(&rec.dataset), expected[batches.len()].clone());
        fs::remove_dir_all(&dir).ok();
    }
}

/// A crash between log-append and pointer-swap: the record is durable
/// but the batch was never acknowledged. Recovery may include it — the
/// superset guarantee — and must land exactly on its state, not between
/// states.
#[test]
fn logged_but_unswapped_batch_recovers_as_superset() {
    let dir = scratch_dir("unswapped");
    let batches: Vec<Vec<Op>> = vec![
        vec![(true, 1, 0, 1), (true, 2, 0, 2)],
        vec![(true, 3, 1, 4), (false, 1, 0, 1)],
    ];
    run_stream(&dir, &batches, 1 << 30, 2);

    // Simulate the torn publish: append epoch 3's record through the
    // persister (exactly what `publish` does first), then "crash" before
    // any pointer swap by dropping everything.
    {
        let (persister, recovered) = Persister::open(config(&dir, 1 << 30)).expect("opens");
        let mut dataset = recovered.expect("state exists").dataset;
        let changes = dataset.apply(op_delta(&[(true, 9, 2, 9)]));
        persister
            .log_publish(3, dataset.dict(), &changes, None)
            .expect("append succeeds");
    }

    let rec = recover(&dir);
    let mut reference = Dataset::new();
    for batch in &batches {
        reference.apply(op_delta(batch));
    }
    reference.apply(op_delta(&[(true, 9, 2, 9)]));
    assert_eq!(rec.epoch, 3, "the logged-but-unacknowledged epoch recovers");
    assert_eq!(fingerprint(&rec.dataset), fingerprint(&reference));
    fs::remove_dir_all(&dir).ok();
}

/// A crash between prepare and publish: the transaction mutated the
/// master but never appended a record. Recovery must NOT see it.
#[test]
fn prepared_but_unpublished_batch_is_invisible() {
    let dir = scratch_dir("prepared");
    let store = fresh_store(&dir, 1 << 30, 2);
    store.apply(op_delta(&[(true, 1, 0, 1)]));

    {
        let mut txn = store.begin();
        let changes = txn.dataset().apply(op_delta(&[(true, 7, 1, 7)]));
        txn.touch_changes(&changes);
        let _prepared = txn.prepare();
        // Dropped here: prepared, never published, never logged.
    }
    drop(store);

    let rec = recover(&dir);
    let mut reference = Dataset::new();
    reference.apply(op_delta(&[(true, 1, 0, 1)]));
    assert_eq!(rec.epoch, 1);
    assert_eq!(
        fingerprint(&rec.dataset),
        fingerprint(&reference),
        "an unpublished prepare must leave no durable trace"
    );
    fs::remove_dir_all(&dir).ok();
}

/// Named view graphs and the catalog ride snapshots bit-exactly (the
/// log's catalog entries carry identity; contents come from snapshots).
#[test]
fn snapshot_preserves_views_and_catalog() {
    let dir = scratch_dir("views");
    let mut dataset = Dataset::new();
    dataset.apply(op_delta(&[(true, 1, 0, 1), (true, 2, 1, 3)]));
    let view = dataset.intern_iri("http://e/view1");
    let s = dataset.intern(&Term::iri("http://e/s1"));
    dataset.insert_encoded(Some(view), [s, s, s]);

    {
        let (persister, recovered) = Persister::open(config(&dir, 1 << 30)).expect("opens");
        assert!(recovered.is_none());
        persister
            .baseline(&dataset, 5, &[(3, 1)])
            .expect("baseline writes");
    }

    let rec = recover(&dir);
    assert_eq!(rec.epoch, 5);
    assert_eq!(rec.snapshot_epoch, 5);
    assert_eq!(rec.replayed_records, 0);
    assert_eq!(rec.catalog, vec![(3, 1)]);
    assert_eq!(fingerprint(&rec.dataset), fingerprint(&dataset));
    assert_eq!(rec.dataset.graph_names(), vec![view]);
    let graph = |ds: &Dataset| -> Vec<EncodedTriple> {
        ds.graph(Some(view)).expect("view graph").iter().collect()
    };
    assert_eq!(graph(&rec.dataset), graph(&dataset));
    fs::remove_dir_all(&dir).ok();
}

/// Durable and in-memory stores produce bit-identical published states
/// for the same stream (`Durability::None` is behavior-preserving, and
/// the durable hooks never perturb the data path).
#[test]
fn durable_stream_matches_in_memory_stream() {
    let dir = scratch_dir("twin");
    let batches: Vec<Vec<Op>> = (0..20)
        .map(|i| {
            (0..4)
                .map(|j| {
                    let n = (i * 4 + j) as u8;
                    (!n.is_multiple_of(5), n % 19, n % 3, n % 13)
                })
                .collect()
        })
        .collect();

    let durable = fresh_store(&dir, 4, 3);
    let memory = EpochStore::new(Dataset::new(), 3);
    for batch in &batches {
        let (_, d_epoch) = durable.apply(op_delta(batch));
        let (_, m_epoch) = memory.apply(op_delta(batch));
        assert_eq!(d_epoch, m_epoch);
    }
    assert_eq!(
        fingerprint(durable.pin().dataset()),
        fingerprint(memory.pin().dataset())
    );

    drop(durable);
    let rec = recover(&dir);
    assert_eq!(rec.epoch as usize, batches.len());
    assert_eq!(
        fingerprint(&rec.dataset),
        fingerprint(memory.pin().dataset()),
        "recovery reproduces the in-memory stream's final state"
    );
    fs::remove_dir_all(&dir).ok();
}
