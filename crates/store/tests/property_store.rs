//! Property tests across the store's public API: statistics agree with
//! naive recomputation; inference is monotone and idempotent on random
//! schema graphs.

use proptest::prelude::*;
use sofos_rdf::vocab::{rdf, rdfs};
use sofos_rdf::{FxHashSet, Term};
use sofos_store::{Dataset, GraphStats};

proptest! {
    /// GraphStats must agree with a naive single-pass recomputation.
    #[test]
    fn stats_agree_with_naive(
        triples in proptest::collection::vec((0u32..12, 0u32..5, 0u32..12), 0..120)
    ) {
        let mut ds = Dataset::new();
        for (s, p, o) in &triples {
            ds.insert(
                None,
                &Term::iri(format!("http://e/s{s}")),
                &Term::iri(format!("http://e/p{p}")),
                &Term::iri(format!("http://e/o{o}")),
            );
        }
        let stats = GraphStats::compute(ds.default_graph());

        // Naive recomputation at the term level.
        let mut subjects = FxHashSet::default();
        let mut objects = FxHashSet::default();
        let mut preds = FxHashSet::default();
        let mut distinct = FxHashSet::default();
        for (s, p, o) in &triples {
            distinct.insert((*s, *p, *o));
        }
        for (s, p, o) in &distinct {
            subjects.insert(format!("s{s}"));
            preds.insert(format!("p{p}"));
            objects.insert(format!("o{o}"));
        }
        prop_assert_eq!(stats.triples, distinct.len());
        prop_assert_eq!(stats.distinct_subjects, subjects.len());
        prop_assert_eq!(stats.distinct_objects, objects.len());
        prop_assert_eq!(stats.distinct_predicates, preds.len());
        // Subject IRIs (s*) and object IRIs (o*) never collide here.
        prop_assert_eq!(stats.distinct_nodes, subjects.len() + objects.len());
    }

    /// RDFS closure on random class hierarchies: monotone, idempotent, and
    /// complete for reachability (every instance is typed with every
    /// superclass reachable from its direct type).
    #[test]
    fn rdfs_closure_matches_reachability(
        edges in proptest::collection::vec((0u32..8, 0u32..8), 0..16),
        typings in proptest::collection::vec((0u32..10, 0u32..8), 0..20),
    ) {
        let mut ds = Dataset::new();
        let sub_class = Term::iri(rdfs::SUB_CLASS_OF);
        let type_p = Term::iri(rdf::TYPE);
        for (a, b) in &edges {
            ds.insert(
                None,
                &Term::iri(format!("http://e/C{a}")),
                &sub_class,
                &Term::iri(format!("http://e/C{b}")),
            );
        }
        for (x, c) in &typings {
            ds.insert(
                None,
                &Term::iri(format!("http://e/x{x}")),
                &type_p,
                &Term::iri(format!("http://e/C{c}")),
            );
        }
        let before = ds.default_graph().len();
        let first = ds.materialize_rdfs();
        let after = ds.default_graph().len();
        prop_assert_eq!(after, before + first.inferred);

        // Idempotent.
        let second = ds.materialize_rdfs();
        prop_assert_eq!(second.inferred, 0);

        // Reachability check: BFS over the subclass graph.
        let mut reach: Vec<FxHashSet<u32>> = (0..8)
            .map(|c| {
                let mut seen = FxHashSet::default();
                let mut stack = vec![c];
                while let Some(cur) = stack.pop() {
                    for &(a, b) in &edges {
                        if a == cur && seen.insert(b) {
                            stack.push(b);
                        }
                    }
                }
                seen
            })
            .collect();
        for (x, c) in &typings {
            let expected: &mut FxHashSet<u32> = &mut reach[*c as usize];
            expected.insert(*c);
            for target in expected.iter() {
                let s = ds.dict().get_id(&Term::iri(format!("http://e/x{x}")));
                let p = ds.dict().get_id(&type_p);
                let o = ds.dict().get_id(&Term::iri(format!("http://e/C{target}")));
                let (Some(s), Some(p), Some(o)) = (s, p, o) else {
                    return Err(TestCaseError::fail("terms must be interned"));
                };
                prop_assert!(
                    ds.default_graph().contains(&[s, p, o]),
                    "x{x} must be typed C{target} (direct type C{c})"
                );
            }
        }
    }
}
