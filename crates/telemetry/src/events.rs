//! A fixed-capacity ring of recent engine events.
//!
//! Events are rare compared to metric recordings (a flush, an epoch
//! publish, a slow query), so the ring trades lock-freedom for
//! simplicity: one short mutex around a `VecDeque`. The hot serve path
//! never touches it unless a query crosses the slow threshold.

use std::collections::VecDeque;
use std::sync::Mutex;

/// What happened. Names double as the `kind` field in exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A serve-path query exceeded the slow-query threshold.
    SlowQuery,
    /// Buffered update batches were drained into the views.
    Flush,
    /// The epoch backend published a new snapshot epoch.
    EpochPublish,
    /// The adaptive layer swapped the materialized set.
    Reselection,
    /// A maintenance or repair step failed.
    MaintenanceError,
}

impl EventKind {
    /// Stable lowercase name used in JSON and Prometheus exports.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SlowQuery => "slow_query",
            EventKind::Flush => "flush",
            EventKind::EpochPublish => "epoch_publish",
            EventKind::Reselection => "reselection",
            EventKind::MaintenanceError => "maintenance_error",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (global per ring, never reused).
    pub seq: u64,
    /// Caller-supplied timestamp (ms, from the engine's injected clock).
    pub at_ms: u64,
    /// What happened.
    pub kind: EventKind,
    /// Free-form context (view mask, lag, error text, …).
    pub detail: String,
}

/// Fixed-capacity concurrent ring buffer of recent [`Event`]s. When
/// full, the oldest event is dropped (and counted).
#[derive(Debug)]
pub struct EventRing {
    capacity: usize,
    inner: Mutex<RingInner>,
}

#[derive(Debug, Default)]
struct RingInner {
    buf: VecDeque<Event>,
    seq: u64,
    dropped: u64,
}

impl EventRing {
    /// A ring keeping the last `capacity` events (0 disables recording).
    pub fn new(capacity: usize) -> EventRing {
        EventRing {
            capacity,
            inner: Mutex::new(RingInner::default()),
        }
    }

    /// Append an event, evicting the oldest past capacity.
    pub fn push(&self, at_ms: u64, kind: EventKind, detail: String) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("event ring poisoned");
        let seq = inner.seq;
        inner.seq += 1;
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(Event {
            seq,
            at_ms,
            kind,
            detail,
        });
    }

    /// The retained events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        let inner = self.inner.lock().expect("event ring poisoned");
        inner.buf.iter().cloned().collect()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("event ring poisoned").dropped
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let ring = EventRing::new(3);
        for i in 0..5u64 {
            ring.push(i * 10, EventKind::Flush, format!("batch {i}"));
        }
        let recent = ring.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].seq, 2);
        assert_eq!(recent[2].seq, 4);
        assert_eq!(recent[2].at_ms, 40);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let ring = EventRing::new(0);
        ring.push(1, EventKind::SlowQuery, "q".into());
        assert!(ring.recent().is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn kinds_have_stable_names() {
        assert_eq!(EventKind::SlowQuery.name(), "slow_query");
        assert_eq!(EventKind::EpochPublish.name(), "epoch_publish");
        assert_eq!(EventKind::Reselection.name(), "reselection");
        assert_eq!(EventKind::MaintenanceError.name(), "maintenance_error");
        assert_eq!(EventKind::Flush.name(), "flush");
    }

    #[test]
    fn concurrent_pushes_keep_sequence_dense() {
        let ring = std::sync::Arc::new(EventRing::new(1024));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = std::sync::Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..100 {
                        ring.push(t, EventKind::Flush, format!("{t}:{i}"));
                    }
                });
            }
        });
        let mut seqs: Vec<u64> = ring.recent().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..400).collect::<Vec<_>>());
    }
}
