//! Point-in-time snapshots and their two renderings: hand-rolled JSON
//! (matching the repo's `Json` conventions — objects, arrays, integer
//! and float literals) and the Prometheus text exposition format
//! (`# HELP` / `# TYPE` lines, escaped label values, histograms as
//! `summary` quantiles plus `_sum` / `_count`).

use crate::events::Event;
use crate::histogram::HistogramSnapshot;
use crate::registry::Registry;
use crate::EventRing;
use std::fmt::Write as _;

/// One counter at snapshot time.
#[derive(Debug, Clone)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// Static labels.
    pub labels: Vec<(String, String)>,
    /// Value at snapshot time.
    pub value: u64,
}

/// One gauge at snapshot time.
#[derive(Debug, Clone)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// Static labels.
    pub labels: Vec<(String, String)>,
    /// Value at snapshot time.
    pub value: u64,
}

/// One histogram at snapshot time.
#[derive(Debug, Clone)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// Static labels.
    pub labels: Vec<(String, String)>,
    /// Bucket snapshot (count / sum / max / quantiles).
    pub snapshot: HistogramSnapshot,
}

/// A consistent-enough-for-monitoring view of every registered metric
/// and the recent events, taken by [`crate::MetricsHandle::snapshot`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// All counters, registration order.
    pub counters: Vec<CounterSample>,
    /// All gauges, registration order.
    pub gauges: Vec<GaugeSample>,
    /// All histograms, registration order.
    pub histograms: Vec<HistogramSample>,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Events evicted from the ring before this snapshot.
    pub events_dropped: u64,
}

impl MetricsSnapshot {
    /// Read every instrument in `registry` plus the event ring.
    pub(crate) fn capture(registry: &Registry, events: &EventRing) -> MetricsSnapshot {
        let mut counters = Vec::new();
        registry.visit_counters(|id, c| {
            counters.push(CounterSample {
                name: id.name.clone(),
                help: id.help.clone(),
                labels: id.labels.clone(),
                value: c.get(),
            })
        });
        let mut gauges = Vec::new();
        registry.visit_gauges(|id, g| {
            gauges.push(GaugeSample {
                name: id.name.clone(),
                help: id.help.clone(),
                labels: id.labels.clone(),
                value: g.get(),
            })
        });
        let mut histograms = Vec::new();
        registry.visit_histograms(|id, h| {
            histograms.push(HistogramSample {
                name: id.name.clone(),
                help: id.help.clone(),
                labels: id.labels.clone(),
                snapshot: h.snapshot(),
            })
        });
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            events: events.recent(),
            events_dropped: events.dropped(),
        }
    }

    /// The value of the counter `(name, labels)`, if registered.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && labels_match(&c.labels, labels))
            .map(|c| c.value)
    }

    /// The value of the gauge `(name, labels)`, if registered.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && labels_match(&g.labels, labels))
            .map(|g| g.value)
    }

    /// The histogram `(name, labels)`, if registered.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSample> {
        self.histograms
            .iter()
            .find(|h| h.name == name && labels_match(&h.labels, labels))
    }

    /// Render the whole snapshot as one JSON object:
    /// `{"counters":[…],"gauges":[…],"histograms":[…],"events":[…],
    /// "events_dropped":N}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
                json_escape(&c.name),
                labels_json(&c.labels),
                c.value
            );
        }
        out.push_str("],\"gauges\":[");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
                json_escape(&g.name),
                labels_json(&g.labels),
                g.value
            );
        }
        out.push_str("],\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = &h.snapshot;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"labels\":{},\"count\":{},\"sum\":{},\"max\":{},\
                 \"mean\":{},\"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{}}}",
                json_escape(&h.name),
                labels_json(&h.labels),
                s.count,
                s.sum,
                s.max,
                s.mean(),
                s.p50(),
                s.p90(),
                s.p95(),
                s.p99()
            );
        }
        out.push_str("],\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"at_ms\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
                e.seq,
                e.at_ms,
                e.kind.name(),
                json_escape(&e.detail)
            );
        }
        let _ = write!(out, "],\"events_dropped\":{}}}", self.events_dropped);
        out
    }

    /// Render the Prometheus text exposition format. Counters and
    /// gauges map directly; histograms render as `summary` metrics
    /// (`quantile` labels plus `_sum` and `_count` series). Samples of
    /// the same metric name are grouped under one `# TYPE` header.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for_each_name_group(
            &self.counters,
            |c| (&c.name, &c.help),
            |name, help, group| {
                let _ = writeln!(out, "# HELP {name} {}", help_escape(help));
                let _ = writeln!(out, "# TYPE {name} counter");
                for c in group {
                    let _ = writeln!(out, "{name}{} {}", labels_prom(&c.labels, &[]), c.value);
                }
            },
        );
        for_each_name_group(
            &self.gauges,
            |g| (&g.name, &g.help),
            |name, help, group| {
                let _ = writeln!(out, "# HELP {name} {}", help_escape(help));
                let _ = writeln!(out, "# TYPE {name} gauge");
                for g in group {
                    let _ = writeln!(out, "{name}{} {}", labels_prom(&g.labels, &[]), g.value);
                }
            },
        );
        for_each_name_group(
            &self.histograms,
            |h| (&h.name, &h.help),
            |name, help, group| {
                let _ = writeln!(out, "# HELP {name} {}", help_escape(help));
                let _ = writeln!(out, "# TYPE {name} summary");
                for h in group {
                    let s = &h.snapshot;
                    for (q, v) in [
                        ("0.5", s.p50()),
                        ("0.9", s.p90()),
                        ("0.95", s.p95()),
                        ("0.99", s.p99()),
                    ] {
                        let _ = writeln!(
                            out,
                            "{name}{} {v}",
                            labels_prom(&h.labels, &[("quantile", q)])
                        );
                    }
                    let _ = writeln!(out, "{name}_sum{} {}", labels_prom(&h.labels, &[]), s.sum);
                    let _ = writeln!(
                        out,
                        "{name}_count{} {}",
                        labels_prom(&h.labels, &[]),
                        s.count
                    );
                }
            },
        );
        out
    }
}

/// Group consecutive same-name samples (the registry preserves
/// registration order, so label variants of one metric are adjacent in
/// first-seen name order).
fn for_each_name_group<'a, T>(
    samples: &'a [T],
    key: impl Fn(&'a T) -> (&'a String, &'a String),
    mut emit: impl FnMut(&str, &str, &[&'a T]),
) {
    let mut seen: Vec<&str> = Vec::new();
    for sample in samples {
        let (name, help) = key(sample);
        if seen.iter().any(|s| s == name) {
            continue;
        }
        seen.push(name);
        let group: Vec<&T> = samples
            .iter()
            .filter(|other| key(other).0 == name)
            .collect();
        emit(name, help, &group);
    }
}

fn labels_match(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want)
            .all(|((k, v), (wk, wv))| k == wk && v == wv)
}

/// Escape a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// `{"k":"v",…}` for a label set.
fn labels_json(labels: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    out.push('}');
    out
}

/// Escape a Prometheus label *value*: backslash, double-quote, newline.
fn prom_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape `# HELP` text: backslash and newline only (per the format).
fn help_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// `{k="v",…}` rendering with `extra` labels appended; empty label sets
/// render as nothing.
fn labels_prom(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", prom_escape(v));
    }
    for (k, v) in extra {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", prom_escape(v));
    }
    out.push('}');
    out
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use crate::{EventKind, MetricsHandle};

    fn populated() -> MetricsHandle {
        let m = MetricsHandle::new();
        m.counter(
            "sofos_route_hits_total",
            "view-route hits",
            &[("backend", "serial")],
        )
        .add(3);
        m.counter(
            "sofos_route_hits_total",
            "view-route hits",
            &[("backend", "epoch")],
        )
        .add(4);
        m.gauge("sofos_pending_depth", "pending-log depth", &[])
            .set(7);
        let h = m.histogram(
            "sofos_serve_latency_us",
            "serve latency",
            &[("route", "view")],
        );
        h.record_all(&[10, 20, 30]);
        m.event(99, EventKind::Flush, "drained 2 batches");
        m
    }

    #[test]
    fn json_round_trips_structure() {
        let json = populated().snapshot().to_json();
        assert!(json.starts_with("{\"counters\":["), "{json}");
        assert!(
            json.contains(
                "{\"name\":\"sofos_route_hits_total\",\"labels\":{\"backend\":\"serial\"},\"value\":3}"
            ),
            "{json}"
        );
        assert!(json.contains("\"count\":3,\"sum\":60,\"max\":30"), "{json}");
        assert!(json.contains("\"p50\":20"), "{json}");
        assert!(
            json.contains("\"kind\":\"flush\",\"detail\":\"drained 2 batches\""),
            "{json}"
        );
        assert!(json.ends_with("\"events_dropped\":0}"), "{json}");
    }

    #[test]
    fn json_escapes_details() {
        let m = MetricsHandle::new();
        m.event(1, EventKind::MaintenanceError, "broke \"here\"\nbadly\\");
        let json = m.snapshot().to_json();
        assert!(
            json.contains("\"detail\":\"broke \\\"here\\\"\\nbadly\\\\\""),
            "{json}"
        );
    }

    #[test]
    fn prometheus_text_has_type_lines_and_grouped_samples() {
        let text = populated().snapshot().to_prometheus_text();
        assert!(
            text.contains("# TYPE sofos_route_hits_total counter"),
            "{text}"
        );
        // Both label variants sit under one header.
        let header_count = text
            .matches("# TYPE sofos_route_hits_total counter")
            .count();
        assert_eq!(header_count, 1, "{text}");
        assert!(
            text.contains("sofos_route_hits_total{backend=\"serial\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("sofos_route_hits_total{backend=\"epoch\"} 4"),
            "{text}"
        );
        assert!(text.contains("# TYPE sofos_pending_depth gauge"), "{text}");
        assert!(text.contains("sofos_pending_depth 7"), "{text}");
        assert!(
            text.contains("# TYPE sofos_serve_latency_us summary"),
            "{text}"
        );
        assert!(
            text.contains("sofos_serve_latency_us{route=\"view\",quantile=\"0.5\"} 20"),
            "{text}"
        );
        assert!(
            text.contains("sofos_serve_latency_us_sum{route=\"view\"} 60"),
            "{text}"
        );
        assert!(
            text.contains("sofos_serve_latency_us_count{route=\"view\"} 3"),
            "{text}"
        );
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        let m = MetricsHandle::new();
        m.counter("sofos_weird_total", "odd \\ help", &[("q", "a\"b\\c\nd")])
            .inc();
        let text = m.snapshot().to_prometheus_text();
        assert!(
            text.contains("sofos_weird_total{q=\"a\\\"b\\\\c\\nd\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("# HELP sofos_weird_total odd \\\\ help"),
            "{text}"
        );
    }

    #[test]
    fn snapshot_finders_locate_samples() {
        let snap = populated().snapshot();
        assert_eq!(
            snap.counter_value("sofos_route_hits_total", &[("backend", "epoch")]),
            Some(4)
        );
        assert_eq!(snap.gauge_value("sofos_pending_depth", &[]), Some(7));
        let h = snap
            .histogram("sofos_serve_latency_us", &[("route", "view")])
            .expect("registered");
        assert_eq!(h.snapshot.count, 3);
        assert_eq!(snap.counter_value("missing", &[]), None);
        assert_eq!(snap.events.len(), 1);
    }
}
