//! A log-bucketed latency histogram over atomic buckets.
//!
//! The bucket layout is HdrHistogram-style: values below [`SUB`] are
//! recorded exactly; every power-of-two octave above that is split into
//! [`SUB`] linear sub-buckets. Recording is a handful of relaxed atomic
//! ops; quantiles are computed from a snapshot of the bucket counts and
//! under-report by strictly less than `1/SUB` relative error (3.125%
//! with `SUB = 32`), because a bucket's reported value is its lower
//! bound and its width is at most `1/SUB` of that bound.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// log2 of the sub-bucket count per octave.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave; also the size of the exact low range.
const SUB: usize = 1 << SUB_BITS;
/// Octaves `[2^e, 2^{e+1})` for `e` in `SUB_BITS..=63`.
const OCTAVES: usize = 64 - SUB_BITS as usize;
/// Total bucket count (covers all of `u64`).
const BUCKETS: usize = SUB + OCTAVES * SUB;

/// A mergeable, lock-free histogram of `u64` samples (typically µs).
///
/// [`Histogram::record`] is three `fetch_add`s and a `fetch_max`;
/// [`Histogram::snapshot`] reads the buckets once and answers
/// arbitrary quantiles with relative error `< 1/32` (values below 32
/// are exact, and `max` is always exact).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index for `v`: exact below `SUB`, then
    /// `SUB + octave·SUB + offset` with linear offsets of width
    /// `2^(exp−SUB_BITS)` inside the octave `[2^exp, 2^{exp+1})`.
    #[inline]
    fn index(v: u64) -> usize {
        if v < SUB as u64 {
            v as usize
        } else {
            let exp = 63 - v.leading_zeros();
            let offset = ((v - (1u64 << exp)) >> (exp - SUB_BITS)) as usize;
            SUB + (exp - SUB_BITS) as usize * SUB + offset
        }
    }

    /// The lower bound (reported value) of bucket `i` — the inverse of
    /// [`Histogram::index`] up to bucket width.
    fn bucket_low(i: usize) -> u64 {
        if i < SUB {
            i as u64
        } else {
            let octave = (i - SUB) / SUB;
            let exp = octave as u32 + SUB_BITS;
            let offset = ((i - SUB) % SUB) as u64;
            (1u64 << exp) + (offset << (exp - SUB_BITS))
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(not(feature = "noop"))]
        {
            self.buckets[Self::index(v)].fetch_add(1, Relaxed);
            self.count.fetch_add(1, Relaxed);
            self.sum.fetch_add(v, Relaxed);
            self.max.fetch_max(v, Relaxed);
        }
        #[cfg(feature = "noop")]
        let _ = v;
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Fold another histogram into this one (bucket-wise addition;
    /// `max` takes the larger).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Relaxed);
            if n > 0 {
                mine.fetch_add(n, Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Relaxed), Relaxed);
        self.sum.fetch_add(other.sum.load(Relaxed), Relaxed);
        self.max.fetch_max(other.max.load(Relaxed), Relaxed);
    }

    /// A point-in-time copy of the non-empty buckets plus the exact
    /// count / sum / max. Concurrent recording keeps going; the
    /// snapshot is consistent enough for monitoring, not a barrier.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut nonzero = Vec::new();
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Relaxed);
            if n > 0 {
                nonzero.push((Self::bucket_low(i), n));
            }
        }
        // Quantiles walk the buckets; anchor them to the bucketed total
        // so a sample that raced `count` but not its bucket (or vice
        // versa) cannot push a rank past the last bucket.
        let count = nonzero.iter().map(|&(_, n)| n).sum();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
            nonzero,
        }
    }

    /// Record every sample of a slice (convenience for summarizing).
    pub fn record_all(&self, samples: &[u64]) {
        for &v in samples {
            self.record(v);
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// A point-in-time read of a [`Histogram`]: exact count / sum / max
/// plus the non-empty buckets, enough to answer arbitrary quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples covered by the bucket counts below.
    pub count: u64,
    /// Exact sum of all recorded samples.
    pub sum: u64,
    /// Exact maximum recorded sample (0 when empty).
    pub max: u64,
    /// `(bucket lower bound, count)` for every non-empty bucket,
    /// ascending.
    nonzero: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// An empty snapshot (the zero histogram).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            nonzero: Vec::new(),
        }
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The nearest-rank `q`-quantile (`q` in `[0, 1]`): the lower bound
    /// of the bucket holding the `ceil(q·count)`-th smallest sample.
    /// Under-reports by `< 1/32` relative error; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for &(low, n) in &self.nonzero {
            seen += n;
            if seen >= rank {
                return low;
            }
        }
        self.max
    }

    /// Median (nearest-rank).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The exact nearest-rank quantile over a sorted sample vector —
    /// the reference the histogram is allowed to deviate from by
    /// `< 1/32` relative.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        h.record_all(&[10, 20, 30, 31, 5]);
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 96);
        assert_eq!(s.max, 31);
        assert_eq!(s.p50(), 20);
        assert_eq!(s.quantile(1.0), 31);
        assert_eq!(s.quantile(0.0), 5);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s, HistogramSnapshot::empty());
    }

    #[test]
    fn bucket_low_inverts_index_on_boundaries() {
        for v in [0u64, 1, 31, 32, 63, 64, 100, 127, 128, 1 << 20, u64::MAX] {
            let i = Histogram::index(v);
            let low = Histogram::bucket_low(i);
            assert!(low <= v, "low {low} > v {v}");
            assert_eq!(Histogram::index(low), i, "v {v}");
            // Bucket width bound: v − low < max(1, v/32) rounded up.
            assert!(v - low <= v / 32, "v {v} low {low}");
        }
    }

    #[test]
    fn merge_adds_counts_and_keeps_max() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_all(&[1, 2, 3]);
        b.record_all(&[1000, 4]);
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1010);
        assert_eq!(s.max, 1000);
        assert_eq!(
            s.quantile(1.0),
            Histogram::bucket_low(Histogram::index(1000))
        );
    }

    #[test]
    fn concurrent_recording_loses_no_samples() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads = 8u64;
        let per = 20_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..per {
                        h.record(t * 1_000 + (i % 97));
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, threads * per, "histogram count == recordings");
        assert_eq!(h.count(), threads * per);
    }

    proptest! {
        /// Histogram quantiles match exact sorted-sample quantiles
        /// within the documented `1/32` relative-error bound, for any
        /// sample set and any quantile.
        #[test]
        fn quantiles_within_relative_error_bound(
            mut samples in proptest::collection::vec(0u64..1_000_000_000, 1..200),
            q in 0.0f64..1.0,
        ) {
            let h = Histogram::new();
            h.record_all(&samples);
            samples.sort_unstable();
            let exact = exact_quantile(&samples, q);
            let approx = h.snapshot().quantile(q);
            prop_assert!(approx <= exact, "approx {approx} > exact {exact}");
            prop_assert!(
                exact - approx <= exact / 32,
                "error {} above bound {} (exact {exact})",
                exact - approx, exact / 32,
            );
        }

        /// Sum and max are exact regardless of bucketing.
        #[test]
        fn sum_and_max_are_exact(
            samples in proptest::collection::vec(0u64..1_000_000, 0..100),
        ) {
            let h = Histogram::new();
            h.record_all(&samples);
            let s = h.snapshot();
            prop_assert_eq!(s.sum, samples.iter().sum::<u64>());
            prop_assert_eq!(s.max, samples.iter().copied().max().unwrap_or(0));
            prop_assert_eq!(s.count, samples.len() as u64);
        }
    }
}
