//! A minimal JSON value: emission *and* parsing, no dependencies.
//!
//! No serialization crate exists offline, so this is a small hand-rolled
//! writer plus the matching recursive-descent reader ([`Json::parse`]).
//! It started life as the bench-report format (`BENCH_<experiment>.json`,
//! see `sofos-bench`) and moved here when the serving tier needed the
//! same value type for request/response bodies — telemetry is the one
//! dependency-free crate every consumer (bench, server, workload) can
//! share without a cycle. [`MetricsSnapshot::to_json`] renders through
//! the same escaping rules.
//!
//! [`MetricsSnapshot::to_json`]: crate::MetricsSnapshot::to_json

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null` (also what non-finite floats serialize as).
    Null,
    /// A string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float (non-finite values are emitted as `null`).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object builder from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parse a JSON document (strict enough for round-tripping this
    /// module's own output; errors carry a byte offset).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// The object's value for `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric view: `Int` and `Num` unify to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                pairs.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() {
        return Err(format!("expected value at byte {start}"));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::Int(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v as i64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

/// Append `s` to `out` as a quoted, escaped JSON string literal (the
/// writer's escaping rules, exposed for callers that emit JSON by hand,
/// e.g. `BenchReport::to_json`).
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl Json {
    /// Append this value's JSON rendering to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Str(s) => escape_into(s, out),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Num(v) if v.is_finite() => out.push_str(&format!("{v}")),
            Json::Num(_) => out.push_str("null"),
            Json::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_render_as_json() {
        let v = Json::object([
            ("name", Json::from("e7")),
            ("count", Json::from(3usize)),
            ("ratio", Json::from(0.5)),
            ("ok", Json::from(true)),
            ("tags", Json::Array(vec![Json::from("a"), Json::from("b")])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"e7","count":3,"ratio":0.5,"ok":true,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::from("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Json::object([
            ("name", Json::from("e9 \"quoted\"\nline")),
            ("count", Json::from(3usize)),
            ("neg", Json::from(-7i64)),
            ("ratio", Json::from(0.5)),
            ("big", Json::from(1.5e300)),
            ("ok", Json::from(true)),
            ("none", Json::Null),
            (
                "tags",
                Json::Array(vec![Json::from("a"), Json::Bool(false)]),
            ),
            ("nested", Json::object([("k", Json::from(1usize))])),
        ]);
        let text = v.to_string();
        let parsed = Json::parse(&text).expect("parses");
        assert_eq!(parsed.to_string(), text, "write∘parse∘write is stable");
        assert_eq!(parsed.get("count").and_then(Json::as_f64), Some(3.0));
        assert_eq!(
            parsed.get("name").and_then(Json::as_str).map(str::len),
            Some(16)
        );
        assert!(matches!(parsed.get("none"), Some(Json::Null)));
        assert_eq!(
            parsed.get("tags").and_then(Json::items).map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }
}
