//! Lock-free metrics and event tracing for the SOFOS engine.
//!
//! SOFOS's thesis is making the costs of materialized-view selection
//! visible — query cost, maintenance cost, staleness. This crate is the
//! runtime half of that argument: a dependency-free observability layer
//! cheap enough to leave on in the serve path.
//!
//! Three primitives, one registry, one export surface:
//!
//! - [`Counter`] and [`Gauge`] — single relaxed atomics.
//! - [`Histogram`] — a log-bucketed (HdrHistogram-style) latency
//!   histogram over atomic buckets: recording is three `fetch_add`s and
//!   a `fetch_max`, quantiles carry a documented relative error bound
//!   of < 1/32 (see [`Histogram`]), and histograms merge.
//! - [`EventRing`] — a fixed-capacity ring of recent [`Event`]s (slow
//!   queries, flushes, epoch publishes, re-selections, maintenance
//!   errors), timestamped by the caller so the engine's injected clock
//!   stays the single time source.
//! - [`Registry`] — named metrics with static label sets. Registration
//!   (get-or-create) takes a lock; recording through the returned
//!   `Arc` never does.
//! - [`MetricsSnapshot`] — a point-in-time read of everything, rendered
//!   to JSON ([`MetricsSnapshot::to_json`]) or the Prometheus text
//!   exposition format ([`MetricsSnapshot::to_prometheus_text`]).
//! - [`Json`] — a minimal hand-rolled JSON value (writer *and* parser),
//!   hosted here because this is the one dependency-free crate that the
//!   bench reports, the HTTP server, and the load harness can all share.
//!
//! The intended front door is [`MetricsHandle`]: one cloneable handle
//! owning the registry and the event ring, shared between the engine,
//! its backends, and whoever wants to read the numbers.
//!
//! Compiling with the `noop` feature turns every recording operation
//! into an empty inline function, for measuring the instrumentation's
//! own overhead.

mod events;
mod export;
mod histogram;
pub mod json;
mod registry;

pub use events::{Event, EventKind, EventRing};
pub use export::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};
pub use histogram::{Histogram, HistogramSnapshot};
pub use json::Json;
pub use registry::Registry;

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// A monotonically increasing counter: one relaxed atomic.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "noop"))]
        self.value.fetch_add(n, Relaxed);
        #[cfg(feature = "noop")]
        let _ = n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// A last-write-wins gauge: one relaxed atomic.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        #[cfg(not(feature = "noop"))]
        self.value.store(v, Relaxed);
        #[cfg(feature = "noop")]
        let _ = v;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// The shared front door: registry + event ring + recording policy.
///
/// Cloning is cheap (one `Arc`); every clone sees the same metrics. A
/// handle built with [`MetricsHandle::disabled`] tells instrumented
/// call sites (via [`MetricsHandle::is_enabled`]) to skip recording —
/// the runtime analogue of the compile-time `noop` feature.
#[derive(Debug, Clone)]
pub struct MetricsHandle {
    inner: Arc<HandleInner>,
}

#[derive(Debug)]
struct HandleInner {
    registry: Registry,
    events: EventRing,
    enabled: bool,
    slow_query_us: AtomicU64,
}

/// Default capacity of the recent-events ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// Default slow-query threshold (µs) above which the serve path records
/// a [`EventKind::SlowQuery`] event.
pub const DEFAULT_SLOW_QUERY_US: u64 = 10_000;

impl MetricsHandle {
    /// An enabled handle with default event capacity and slow-query
    /// threshold.
    pub fn new() -> MetricsHandle {
        MetricsHandle::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An enabled handle keeping the last `events` events.
    pub fn with_capacity(events: usize) -> MetricsHandle {
        MetricsHandle {
            inner: Arc::new(HandleInner {
                registry: Registry::new(),
                events: EventRing::new(events),
                enabled: true,
                slow_query_us: AtomicU64::new(DEFAULT_SLOW_QUERY_US),
            }),
        }
    }

    /// A handle whose call sites should record nothing. The registry
    /// still exists (snapshots render empty), so the API surface is
    /// identical either way.
    pub fn disabled() -> MetricsHandle {
        MetricsHandle {
            inner: Arc::new(HandleInner {
                registry: Registry::new(),
                events: EventRing::new(0),
                enabled: false,
                slow_query_us: AtomicU64::new(u64::MAX),
            }),
        }
    }

    /// Whether instrumented call sites should record.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled && cfg!(not(feature = "noop"))
    }

    /// Serve latencies above this (µs) get a [`EventKind::SlowQuery`]
    /// event.
    pub fn slow_query_threshold_us(&self) -> u64 {
        self.inner.slow_query_us.load(Relaxed)
    }

    /// Change the slow-query threshold (µs).
    pub fn set_slow_query_threshold_us(&self, us: u64) {
        self.inner.slow_query_us.store(us, Relaxed);
    }

    /// The metric registry (get-or-create named instruments).
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Get-or-create a counter. See [`Registry::counter`].
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.inner.registry.counter(name, help, labels)
    }

    /// Get-or-create a gauge. See [`Registry::gauge`].
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.inner.registry.gauge(name, help, labels)
    }

    /// Get-or-create a histogram. See [`Registry::histogram`].
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.inner.registry.histogram(name, help, labels)
    }

    /// Record an event at `at_ms`. The timestamp is caller-supplied so
    /// the engine's injected clock stays the single time source (tests
    /// drive it manually). No-op when disabled.
    pub fn event(&self, at_ms: u64, kind: EventKind, detail: impl Into<String>) {
        if self.is_enabled() {
            self.inner.events.push(at_ms, kind, detail.into());
        }
    }

    /// The recent-events ring.
    pub fn events(&self) -> &EventRing {
        &self.inner.events
    }

    /// A point-in-time snapshot of every metric and recent event.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::capture(&self.inner.registry, &self.inner.events)
    }
}

impl Default for MetricsHandle {
    fn default() -> MetricsHandle {
        MetricsHandle::new()
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn handle_shares_instruments_across_clones() {
        let m = MetricsHandle::new();
        let c1 = m.counter("sofos_test_total", "test", &[("k", "v")]);
        let c2 = m.clone().counter("sofos_test_total", "test", &[("k", "v")]);
        c1.inc();
        c2.add(2);
        assert_eq!(c1.get(), 3);
        assert!(m.is_enabled());
    }

    #[test]
    fn disabled_handle_skips_events() {
        let m = MetricsHandle::disabled();
        assert!(!m.is_enabled());
        m.event(5, EventKind::Flush, "ignored");
        assert!(m.events().recent().is_empty());
        assert_eq!(m.slow_query_threshold_us(), u64::MAX);
    }

    #[test]
    fn concurrent_counting_loses_nothing() {
        let m = MetricsHandle::new();
        let c = m.counter("sofos_threads_total", "test", &[]);
        let threads = 8;
        let per = 10_000;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..per {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), threads * per);
    }
}
