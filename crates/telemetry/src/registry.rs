//! Named metrics with static label sets.
//!
//! Registration is get-or-create keyed on `(name, labels)` and takes
//! the registry lock; the returned `Arc` is the instrument itself, so
//! the hot path records through pre-fetched `Arc`s without ever
//! touching the registry again. Insertion order is preserved — exports
//! render metrics in the order they were first registered, with
//! same-name label variants grouped.

use crate::{Counter, Gauge, Histogram};
use std::sync::{Arc, Mutex};

/// Identity and metadata of one registered instrument.
#[derive(Debug, Clone)]
pub struct MetricId {
    /// Metric name (Prometheus-style, e.g. `sofos_serve_latency_us`).
    pub name: String,
    /// One-line help text (from the first registration of the name).
    pub help: String,
    /// Static label set, in registration order.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    fn matches(&self, name: &str, labels: &[(&str, &str)]) -> bool {
        self.name == name
            && self.labels.len() == labels.len()
            && self
                .labels
                .iter()
                .zip(labels)
                .all(|((k, v), (lk, lv))| k == lk && v == lv)
    }

    fn new(name: &str, help: &str, labels: &[(&str, &str)]) -> MetricId {
        MetricId {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }
}

/// The instrument registry behind a [`crate::MetricsHandle`].
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Vec<(MetricId, Arc<Counter>)>,
    gauges: Vec<(MetricId, Arc<Gauge>)>,
    histograms: Vec<(MetricId, Arc<Histogram>)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get-or-create the counter `(name, labels)`.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        if let Some((_, c)) = inner
            .counters
            .iter()
            .find(|(id, _)| id.matches(name, labels))
        {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        inner
            .counters
            .push((MetricId::new(name, help, labels), Arc::clone(&c)));
        c
    }

    /// Get-or-create the gauge `(name, labels)`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        if let Some((_, g)) = inner.gauges.iter().find(|(id, _)| id.matches(name, labels)) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        inner
            .gauges
            .push((MetricId::new(name, help, labels), Arc::clone(&g)));
        g
    }

    /// Get-or-create the histogram `(name, labels)`.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        if let Some((_, h)) = inner
            .histograms
            .iter()
            .find(|(id, _)| id.matches(name, labels))
        {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        inner
            .histograms
            .push((MetricId::new(name, help, labels), Arc::clone(&h)));
        h
    }

    /// Visit every registered counter in registration order.
    pub(crate) fn visit_counters(&self, mut f: impl FnMut(&MetricId, &Counter)) {
        let inner = self.inner.lock().expect("registry poisoned");
        for (id, c) in &inner.counters {
            f(id, c);
        }
    }

    /// Visit every registered gauge in registration order.
    pub(crate) fn visit_gauges(&self, mut f: impl FnMut(&MetricId, &Gauge)) {
        let inner = self.inner.lock().expect("registry poisoned");
        for (id, g) in &inner.gauges {
            f(id, g);
        }
    }

    /// Visit every registered histogram in registration order.
    pub(crate) fn visit_histograms(&self, mut f: impl FnMut(&MetricId, &Histogram)) {
        let inner = self.inner.lock().expect("registry poisoned");
        for (id, h) in &inner.histograms {
            f(id, h);
        }
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_is_identity_per_name_and_labels() {
        let r = Registry::new();
        let a = r.counter("sofos_x_total", "x", &[("backend", "serial")]);
        let b = r.counter(
            "sofos_x_total",
            "ignored on re-register",
            &[("backend", "serial")],
        );
        let c = r.counter("sofos_x_total", "x", &[("backend", "epoch")]);
        a.inc();
        b.inc();
        c.inc();
        assert_eq!(a.get(), 2, "same (name, labels) is the same counter");
        assert_eq!(c.get(), 1);
        let mut seen = Vec::new();
        r.visit_counters(|id, counter| seen.push((id.labels.clone(), counter.get())));
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].1, 2);
        assert_eq!(seen[1].1, 1);
    }

    #[test]
    fn three_instrument_kinds_coexist() {
        let r = Registry::new();
        r.counter("sofos_a_total", "a", &[]).add(5);
        r.gauge("sofos_b", "b", &[]).set(7);
        r.histogram("sofos_c_us", "c", &[]).record(11);
        let mut names = Vec::new();
        r.visit_counters(|id, _| names.push(id.name.clone()));
        r.visit_gauges(|id, _| names.push(id.name.clone()));
        r.visit_histograms(|id, _| names.push(id.name.clone()));
        assert_eq!(names, ["sofos_a_total", "sofos_b", "sofos_c_us"]);
    }
}
