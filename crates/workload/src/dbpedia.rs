//! DBpedia-like generator: the paper's Figure 1 / Example 1.1 world.
//!
//! Countries belong to regions (`partOf`), speak languages, and carry
//! yearly population observations. The generated facet asks the paper's own
//! motivating questions: "in how many countries is French an official
//! language?", "what is the total amount of French-speaking population …?"
//!
//! Substitution note (`DESIGN.md` §4): we cannot ship the DBpedia dump; the
//! generator reproduces the *schema shape* of the running example with
//! Zipf-skewed language popularity and log-normal-ish populations, which is
//! what exercises the cost models.

use crate::zipf::Zipf;
use crate::GeneratedDataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sofos_cube::{AggOp, Dimension, Facet};
use sofos_rdf::{Literal, Term};
use sofos_sparql::{GroupPattern, PatternTerm, TriplePattern};
use sofos_store::Dataset;

/// Namespace of the generated data.
pub const NS: &str = "http://sofos.example/dbpedia/";

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of regions (continents / unions).
    pub regions: usize,
    /// Number of countries.
    pub countries: usize,
    /// Number of distinct languages.
    pub languages: usize,
    /// Number of years of observations.
    pub years: usize,
    /// Maximum official languages per country (≥ 1, Zipf-sampled).
    pub max_langs_per_country: usize,
    /// Zipf exponent for language popularity.
    pub language_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            regions: 4,
            countries: 30,
            languages: 12,
            years: 5,
            max_langs_per_country: 3,
            language_skew: 1.1,
            seed: 42,
        }
    }
}

impl Config {
    /// A larger configuration for benchmarks, scaled by `factor`.
    pub fn scaled(factor: usize) -> Config {
        let base = Config::default();
        Config {
            regions: base.regions + factor / 4,
            countries: base.countries * factor,
            languages: base.languages + factor,
            years: base.years + factor / 2,
            ..base
        }
    }
}

fn iri(local: impl std::fmt::Display) -> Term {
    Term::iri(format!("{NS}{local}"))
}

/// Generate the dataset and its facet catalog.
pub fn generate(config: &Config) -> GeneratedDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut ds = Dataset::new();

    let name_p = iri("name");
    let part_of = iri("partOf");
    let country_p = iri("country");
    let language_p = iri("language");
    let year_p = iri("year");
    let population_p = iri("population");

    // Regions.
    let regions: Vec<Term> = (0..config.regions)
        .map(|r| iri(format!("region/{r}")))
        .collect();
    for (r, region) in regions.iter().enumerate() {
        ds.insert(
            None,
            region,
            &name_p,
            &Term::literal_str(format!("Region{r}")),
        );
    }

    // Languages, Zipf-popular.
    let languages: Vec<Term> = (0..config.languages)
        .map(|l| Term::literal_str(format!("Language{l}")))
        .collect();
    let lang_zipf = Zipf::new(config.languages, config.language_skew);

    // Countries with observations.
    let mut obs_counter = 0usize;
    for c in 0..config.countries {
        let country = iri(format!("country/{c}"));
        ds.insert(
            None,
            &country,
            &name_p,
            &Term::literal_str(format!("Country{c}")),
        );
        let region = &regions[rng.gen_range(0..regions.len().max(1))];
        ds.insert(None, &country, &part_of, region);

        // Sample 1..=max official languages (distinct).
        let lang_count = rng.gen_range(1..=config.max_langs_per_country);
        let mut langs: Vec<usize> = Vec::new();
        while langs.len() < lang_count {
            let l = lang_zipf.sample(&mut rng);
            if !langs.contains(&l) {
                langs.push(l);
            }
        }

        // Base population, log-spread across countries.
        let base_pop: i64 = 10f64.powf(rng.gen_range(4.0..8.0)) as i64;
        for &l in &langs {
            // Language share of the population.
            let share = rng.gen_range(0.05..1.0);
            for y in 0..config.years {
                let year = 2015 + y as i32;
                let growth = 1.0 + 0.01 * y as f64;
                let pop = ((base_pop as f64) * share * growth) as i64;
                let obs = Term::blank(format!("obs{obs_counter}"));
                obs_counter += 1;
                ds.insert(None, &obs, &country_p, &country);
                ds.insert(None, &obs, &language_p, &languages[l]);
                ds.insert(None, &obs, &year_p, &Term::Literal(Literal::year(year)));
                ds.insert(None, &obs, &population_p, &Term::literal_int(pop));
            }
        }
    }
    ds.optimize();

    // The population facet: dims (country, language, year, region), SUM.
    let pattern = GroupPattern::triples(vec![
        TriplePattern::new(
            PatternTerm::var("obs"),
            PatternTerm::iri(format!("{NS}country")),
            PatternTerm::var("country"),
        ),
        TriplePattern::new(
            PatternTerm::var("obs"),
            PatternTerm::iri(format!("{NS}language")),
            PatternTerm::var("language"),
        ),
        TriplePattern::new(
            PatternTerm::var("obs"),
            PatternTerm::iri(format!("{NS}year")),
            PatternTerm::var("year"),
        ),
        TriplePattern::new(
            PatternTerm::var("obs"),
            PatternTerm::iri(format!("{NS}population")),
            PatternTerm::var("pop"),
        ),
        TriplePattern::new(
            PatternTerm::var("country"),
            PatternTerm::iri(format!("{NS}partOf")),
            PatternTerm::var("region"),
        ),
    ]);
    let facet = Facet::new(
        "population",
        vec![
            Dimension::labeled("country", "country"),
            Dimension::labeled("language", "official language"),
            Dimension::labeled("year", "observation year"),
            Dimension::labeled("region", "region (partOf)"),
        ],
        pattern,
        "pop",
        AggOp::Sum,
    )
    .expect("facet variables bound by construction");

    GeneratedDataset {
        name: "dbpedia-like",
        description: "countries / languages / yearly population (Figure 1 world)".into(),
        dataset: ds,
        facets: vec![facet],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofos_sparql::Evaluator;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&Config::default());
        let b = generate(&Config::default());
        assert_eq!(
            a.dataset.default_graph().len(),
            b.dataset.default_graph().len()
        );
        assert_eq!(a.dataset.total_triples(), b.dataset.total_triples());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&Config::default());
        let b = generate(&Config {
            seed: 99,
            ..Config::default()
        });
        assert_ne!(
            a.dataset.default_graph().len(),
            b.dataset.default_graph().len()
        );
    }

    #[test]
    fn facet_pattern_evaluates() {
        let g = generate(&Config::default());
        let facet = &g.facets[0];
        let q = sofos_cube::view_query(facet, sofos_cube::ViewMask::APEX);
        let r = Evaluator::new(&g.dataset)
            .evaluate(&q)
            .expect("facet query runs");
        assert_eq!(r.len(), 1, "apex has one row");
        // Total population must be positive.
        let total = r.rows[0]
            .last()
            .unwrap()
            .as_ref()
            .and_then(|t| t.as_literal().and_then(|l| l.numeric()))
            .map(|n| n.to_f64())
            .unwrap();
        assert!(total > 0.0);
    }

    #[test]
    fn every_country_has_region_and_languages() {
        let g = generate(&Config::default());
        let e = Evaluator::new(&g.dataset);
        let countries = e
            .evaluate_str(&format!(
                "SELECT DISTINCT ?c WHERE {{ ?c <{NS}partOf> ?r }}"
            ))
            .unwrap();
        assert_eq!(countries.len(), Config::default().countries);
        let uncovered = e
            .evaluate_str(&format!(
                "SELECT DISTINCT ?c WHERE {{ ?o <{NS}country> ?c }}"
            ))
            .unwrap();
        assert_eq!(uncovered.len(), Config::default().countries);
    }

    #[test]
    fn language_distribution_is_skewed() {
        let config = Config {
            countries: 120,
            ..Config::default()
        };
        let g = generate(&config);
        let e = Evaluator::new(&g.dataset);
        let r = e
            .evaluate_str(&format!(
                "SELECT ?l (COUNT(?o) AS ?n) WHERE {{ ?o <{NS}language> ?l }} \
                 GROUP BY ?l ORDER BY DESC(?n)"
            ))
            .unwrap();
        assert!(r.len() > 3);
        let first = r.rows.first().unwrap()[1]
            .as_ref()
            .and_then(|t| t.as_literal().and_then(|l| l.numeric()))
            .map(|n| n.to_f64())
            .unwrap();
        let last = r.rows.last().unwrap()[1]
            .as_ref()
            .and_then(|t| t.as_literal().and_then(|l| l.numeric()))
            .map(|n| n.to_f64())
            .unwrap();
        assert!(first > last * 2.0, "top language {first} vs bottom {last}");
    }

    #[test]
    fn scaled_config_is_bigger() {
        let small = generate(&Config::default());
        let big = generate(&Config::scaled(3));
        assert!(big.dataset.total_triples() > small.dataset.total_triples() * 2);
    }
}
