//! # sofos-workload — datasets and query workloads for the SOFOS demo
//!
//! The demonstration (§4) runs on "the LUBM, the DBpedia, and the Semantic
//! Web Dogfood datasets … along with the corresponding query facets". The
//! real dumps cannot be shipped, so this crate provides seeded generators
//! that reproduce each dataset's *shape* (schema patterns, cardinality
//! ratios, skew) plus its facet catalog, and a random parametrized query
//! generator ([`queries`]) for the online phase. All generation is
//! deterministic per seed — every experiment is replayable.

pub mod dbpedia;
pub mod lubm;
pub mod openloop;
pub mod queries;
pub mod swdf;
pub mod synthetic;
pub mod updates;
pub mod zipf;

pub use openloop::{LoadOutcome, OpenLoopConfig, PlannedKind, PlannedRequest};
pub use queries::{
    derivable_aggs, dimension_values, generate_workload, GeneratedQuery, WorkloadConfig,
};
pub use updates::{generate_update_stream, UpdateStreamConfig};
pub use zipf::Zipf;

use sofos_cube::Facet;
use sofos_store::Dataset;

/// A generated dataset with its facet catalog.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// Short dataset name (`dbpedia-like`, `lubm-like`, `swdf-like`).
    pub name: &'static str,
    /// One-line description for reports.
    pub description: String,
    /// The loaded triple store.
    pub dataset: Dataset,
    /// Facets defined over the data (the default facet first).
    pub facets: Vec<Facet>,
}

impl GeneratedDataset {
    /// The default facet of this dataset.
    pub fn default_facet(&self) -> &Facet {
        &self.facets[0]
    }
}

/// All three demo datasets at their default (test-sized) configurations.
pub fn all_datasets() -> Vec<GeneratedDataset> {
    vec![
        dbpedia::generate(&dbpedia::Config::default()),
        lubm::generate(&lubm::Config::default()),
        swdf::generate(&swdf::Config::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_demo_datasets_generate() {
        let datasets = all_datasets();
        assert_eq!(datasets.len(), 3);
        let names: Vec<&str> = datasets.iter().map(|d| d.name).collect();
        assert_eq!(names, ["dbpedia-like", "lubm-like", "swdf-like"]);
        for d in &datasets {
            assert!(d.dataset.total_triples() > 100, "{} too small", d.name);
            assert!(!d.facets.is_empty());
            assert!(d.default_facet().dim_count() >= 3);
        }
    }
}
