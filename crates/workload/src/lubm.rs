//! LUBM-like generator: the university benchmark's schema core.
//!
//! LUBM (Guo, Pan, Heflin — JWS'05) models universities with departments,
//! professors, courses and publications. SOFOS's demo uses it as the
//! regular, deeply-structured dataset (in contrast to DBpedia's breadth).
//! The analytical facet counts publications along the organizational
//! hierarchy: `(university, department, year, venue)` with a page-count
//! measure, so both COUNT- and SUM/AVG-style questions make sense.
//!
//! Substitution note (`DESIGN.md` §4): the original Java data generator is
//! not shipped; this one preserves the schema shape and the cardinality
//! ratios (departments per university, professors per department,
//! publications per professor) that drive view-size differences.

use crate::zipf::Zipf;
use crate::GeneratedDataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sofos_cube::{AggOp, Dimension, Facet};
use sofos_rdf::vocab::rdf;
use sofos_rdf::{Literal, Term};
use sofos_sparql::{GroupPattern, PatternTerm, TriplePattern};
use sofos_store::Dataset;

/// Namespace of the generated data.
pub const NS: &str = "http://sofos.example/lubm/";

/// Generator parameters (cardinality ratios follow LUBM's defaults,
/// scaled down).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of universities.
    pub universities: usize,
    /// Departments per university (uniform 1..=max).
    pub max_departments: usize,
    /// Professors per department.
    pub max_professors: usize,
    /// Publications per professor.
    pub max_publications: usize,
    /// Distinct publication venues.
    pub venues: usize,
    /// Publication years.
    pub years: usize,
    /// Zipf exponent for venue popularity.
    pub venue_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            universities: 3,
            max_departments: 4,
            max_professors: 5,
            max_publications: 6,
            venues: 6,
            years: 4,
            venue_skew: 1.0,
            seed: 7,
        }
    }
}

impl Config {
    /// A larger configuration for benchmarks.
    pub fn scaled(factor: usize) -> Config {
        let base = Config::default();
        Config {
            universities: base.universities * factor,
            max_departments: base.max_departments + factor / 2,
            ..base
        }
    }
}

fn iri(local: impl std::fmt::Display) -> Term {
    Term::iri(format!("{NS}{local}"))
}

/// Generate the dataset and its facet catalog.
pub fn generate(config: &Config) -> GeneratedDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut ds = Dataset::new();

    let type_p = Term::iri(rdf::TYPE);
    let sub_class = Term::iri(sofos_rdf::vocab::rdfs::SUB_CLASS_OF);
    let univ_c = iri("University");
    let dept_c = iri("Department");
    let prof_c = iri("Professor");
    let ranks = [
        iri("FullProfessor"),
        iri("AssociateProfessor"),
        iri("AssistantProfessor"),
    ];
    for rank in &ranks {
        ds.insert(None, rank, &sub_class, &prof_c);
    }
    let pub_c = iri("Publication");
    let sub_org = iri("subOrganizationOf");
    let works_for = iri("worksFor");
    let author_p = iri("author");
    let venue_p = iri("venue");
    let year_p = iri("year");
    let pages_p = iri("pages");

    let venues: Vec<Term> = (0..config.venues)
        .map(|v| iri(format!("venue/{v}")))
        .collect();
    let venue_zipf = Zipf::new(config.venues, config.venue_skew);

    let mut pub_counter = 0usize;
    for u in 0..config.universities {
        let univ = iri(format!("university/{u}"));
        ds.insert(None, &univ, &type_p, &univ_c);
        let departments = rng.gen_range(1..=config.max_departments);
        for d in 0..departments {
            let dept = iri(format!("university/{u}/dept/{d}"));
            ds.insert(None, &dept, &type_p, &dept_c);
            ds.insert(None, &dept, &sub_org, &univ);
            let professors = rng.gen_range(1..=config.max_professors);
            for p in 0..professors {
                let prof = iri(format!("university/{u}/dept/{d}/prof/{p}"));
                // LUBM types professors by rank; `Professor` is reachable
                // through the rdfs:subClassOf schema (see store::inference).
                let rank = &ranks[rng.gen_range(0..ranks.len())];
                ds.insert(None, &prof, &type_p, rank);
                ds.insert(None, &prof, &works_for, &dept);
                let publications = rng.gen_range(0..=config.max_publications);
                for _ in 0..publications {
                    let publication = iri(format!("pub/{pub_counter}"));
                    pub_counter += 1;
                    ds.insert(None, &publication, &type_p, &pub_c);
                    ds.insert(None, &publication, &author_p, &prof);
                    let venue = &venues[venue_zipf.sample(&mut rng)];
                    ds.insert(None, &publication, &venue_p, venue);
                    let year = 2010 + rng.gen_range(0..config.years) as i32;
                    ds.insert(
                        None,
                        &publication,
                        &year_p,
                        &Term::Literal(Literal::year(year)),
                    );
                    let pages = rng.gen_range(4..30);
                    ds.insert(None, &publication, &pages_p, &Term::literal_int(pages));
                }
            }
        }
    }
    ds.optimize();

    // Facet: publication pages by (university, department, venue, year), AVG
    // (components SUM+COUNT ⇒ SUM/COUNT/AVG workload queries derivable).
    let pattern = GroupPattern::triples(vec![
        TriplePattern::new(
            PatternTerm::var("pub"),
            PatternTerm::iri(format!("{NS}author")),
            PatternTerm::var("prof"),
        ),
        TriplePattern::new(
            PatternTerm::var("prof"),
            PatternTerm::iri(format!("{NS}worksFor")),
            PatternTerm::var("dept"),
        ),
        TriplePattern::new(
            PatternTerm::var("dept"),
            PatternTerm::iri(format!("{NS}subOrganizationOf")),
            PatternTerm::var("univ"),
        ),
        TriplePattern::new(
            PatternTerm::var("pub"),
            PatternTerm::iri(format!("{NS}venue")),
            PatternTerm::var("venue"),
        ),
        TriplePattern::new(
            PatternTerm::var("pub"),
            PatternTerm::iri(format!("{NS}year")),
            PatternTerm::var("year"),
        ),
        TriplePattern::new(
            PatternTerm::var("pub"),
            PatternTerm::iri(format!("{NS}pages")),
            PatternTerm::var("pages"),
        ),
    ]);
    let facet = Facet::new(
        "pubs",
        vec![
            Dimension::labeled("univ", "university"),
            Dimension::labeled("dept", "department"),
            Dimension::labeled("venue", "venue"),
            Dimension::labeled("year", "publication year"),
        ],
        pattern,
        "pages",
        AggOp::Avg,
    )
    .expect("facet variables bound by construction");

    // Second facet: publication count by (venue, year) — a narrower cube
    // with COUNT semantics, exercising multi-facet catalogs.
    let count_pattern = GroupPattern::triples(vec![
        TriplePattern::new(
            PatternTerm::var("pub"),
            PatternTerm::iri(format!("{NS}venue")),
            PatternTerm::var("venue"),
        ),
        TriplePattern::new(
            PatternTerm::var("pub"),
            PatternTerm::iri(format!("{NS}year")),
            PatternTerm::var("year"),
        ),
        TriplePattern::new(
            PatternTerm::var("pub"),
            PatternTerm::iri(format!("{NS}pages")),
            PatternTerm::var("pages"),
        ),
    ]);
    let count_facet = Facet::new(
        "pubcount",
        vec![
            Dimension::labeled("venue", "venue"),
            Dimension::labeled("year", "publication year"),
        ],
        count_pattern,
        "pages",
        AggOp::Count,
    )
    .expect("facet variables bound by construction");

    GeneratedDataset {
        name: "lubm-like",
        description: "universities / departments / professors / publications".into(),
        dataset: ds,
        facets: vec![facet, count_facet],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofos_sparql::Evaluator;

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&Config::default());
        let b = generate(&Config::default());
        assert_eq!(a.dataset.total_triples(), b.dataset.total_triples());
    }

    #[test]
    fn hierarchy_is_connected() {
        let g = generate(&Config::default());
        let e = Evaluator::new(&g.dataset);
        // Every department belongs to a typed university.
        let orphans = e
            .evaluate_str(&format!(
                "SELECT ?d WHERE {{ ?d <{NS}subOrganizationOf> ?u . \
                 OPTIONAL {{ ?u a <{NS}University> }} FILTER(!BOUND(?u)) }}"
            ))
            .unwrap();
        assert_eq!(orphans.len(), 0);
        // Publications have all facet attributes.
        let pubs = e
            .evaluate_str(&format!("SELECT ?p WHERE {{ ?p a <{NS}Publication> }}"))
            .unwrap();
        let complete = e
            .evaluate_str(&format!(
                "SELECT ?p WHERE {{ ?p a <{NS}Publication> ; <{NS}author> ?a ; \
                 <{NS}venue> ?v ; <{NS}year> ?y ; <{NS}pages> ?g }}"
            ))
            .unwrap();
        assert_eq!(pubs.len(), complete.len());
        assert!(pubs.len() > 10, "enough publications generated");
    }

    #[test]
    fn facet_base_view_evaluates() {
        let g = generate(&Config::default());
        let facet = &g.facets[0];
        let lattice = sofos_cube::Lattice::new(facet.clone());
        let q = sofos_cube::view_query(facet, lattice.base());
        let r = Evaluator::new(&g.dataset)
            .evaluate(&q)
            .expect("base view query");
        assert!(!r.is_empty());
        // AVG facet: both components projected.
        assert!(r.column(sofos_cube::SUM_ALIAS).is_some());
        assert!(r.column(sofos_cube::COUNT_ALIAS).is_some());
    }

    #[test]
    fn venue_popularity_is_skewed() {
        let g = generate(&Config {
            universities: 8,
            ..Config::default()
        });
        let e = Evaluator::new(&g.dataset);
        let r = e
            .evaluate_str(&format!(
                "SELECT ?v (COUNT(?p) AS ?n) WHERE {{ ?p <{NS}venue> ?v }} \
                 GROUP BY ?v ORDER BY DESC(?n)"
            ))
            .unwrap();
        let first = r.rows.first().unwrap()[1]
            .as_ref()
            .and_then(|t| t.as_literal().and_then(|l| l.numeric()))
            .unwrap()
            .to_f64();
        let last = r.rows.last().unwrap()[1]
            .as_ref()
            .and_then(|t| t.as_literal().and_then(|l| l.numeric()))
            .unwrap()
            .to_f64();
        assert!(first >= last, "sorted descending");
        assert!(first > last, "some skew present");
    }
}
