//! Open-loop load generation over real sockets.
//!
//! Closed-loop clients (issue, wait, issue) hide saturation: when the
//! server slows down, a closed loop slows its own offered load, so tail
//! latency looks flat right up to collapse. An *open* loop decides every
//! request's send time up front — Poisson arrivals at a configured rate —
//! and holds to that schedule whether or not the server keeps up, which
//! is the only way "throughput vs p99 up to and past saturation"
//! (`e11_serving`) means anything.
//!
//! Two halves, deliberately split:
//!
//! * [`plan`] is pure and deterministic per seed: exponential
//!   inter-arrival times at [`OpenLoopConfig::arrival_rate`], a zipf pick
//!   over the provided query texts (hot queries are hot, like the rest of
//!   the workload crate), and a read/write coin at
//!   [`OpenLoopConfig::read_ratio`]. The plan is plain data — tests can
//!   assert on it without sockets.
//! * [`run`] replays a plan against a live server over
//!   [`OpenLoopConfig::lanes`] real TCP connections (one request per
//!   connection, `Connection: close`, so the server's admission control
//!   judges every request independently). Lanes are a practical cap on
//!   concurrency: if all lanes are busy when a request comes due, it is
//!   sent late and the delay is reported as *schedule skew* rather than
//!   silently folded into service latency — quasi-open-loop honesty.
//!
//! The harness speaks just enough HTTP/1.1 to send `POST` bodies and read
//! status + `Content-Length`-framed responses; transport failures are
//! recorded as status 0, server refusals surface as the 503s they are.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Open-loop schedule parameters.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Total requests in the schedule.
    pub requests: usize,
    /// Mean arrival rate (requests/second) of the Poisson process.
    pub arrival_rate: f64,
    /// Probability a request is a read (`POST /query`); the rest are
    /// writes (`POST /update`).
    pub read_ratio: f64,
    /// Zipf exponent over the query list (0 = uniform).
    pub zipf_skew: f64,
    /// Client connections replaying the schedule.
    pub lanes: usize,
    /// RNG seed; same seed, same schedule.
    pub seed: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> OpenLoopConfig {
        OpenLoopConfig {
            requests: 100,
            arrival_rate: 200.0,
            read_ratio: 0.9,
            zipf_skew: 0.8,
            lanes: 16,
            seed: 42,
        }
    }
}

/// What kind of request a schedule slot carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedKind {
    /// `POST /query`, carrying the index of the chosen query text.
    Query(usize),
    /// `POST /update`, carrying the index of the chosen update document.
    Update(usize),
}

/// One slot of the open-loop schedule.
#[derive(Debug, Clone)]
pub struct PlannedRequest {
    /// Scheduled send time, µs from the start of the run.
    pub at_us: u64,
    /// Read or write, and which one.
    pub kind: PlannedKind,
    /// Request path (`/query` or `/update`).
    pub path: &'static str,
    /// The JSON body to send.
    pub body: String,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Build a deterministic open-loop schedule.
///
/// `queries` are SPARQL texts (zipf-picked, so index 0 is the hottest);
/// `updates` are N-Triples documents for `/update` insert bodies,
/// consumed round-robin so a long run replays a finite update set.
/// Panics if either list is empty while the mix needs it.
pub fn plan(
    config: &OpenLoopConfig,
    queries: &[String],
    updates: &[String],
) -> Vec<PlannedRequest> {
    assert!(config.arrival_rate > 0.0, "arrival_rate must be positive");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let zipf = Zipf::new(queries.len().max(1), config.zipf_skew);
    let mut schedule = Vec::with_capacity(config.requests);
    let mut clock_s = 0.0f64;
    let mut next_update = 0usize;
    for _ in 0..config.requests {
        // Exponential inter-arrival: -ln(1-U)/λ.
        let u: f64 = rng.gen_range(0.0..1.0);
        clock_s += -(1.0 - u).ln() / config.arrival_rate;
        let is_read = rng.gen_bool(config.read_ratio.clamp(0.0, 1.0));
        let (kind, path, body) = if is_read {
            assert!(!queries.is_empty(), "read mix needs at least one query");
            let pick = zipf.sample(&mut rng);
            (
                PlannedKind::Query(pick),
                "/query",
                format!("{{\"query\": {}}}", json_escape(&queries[pick])),
            )
        } else {
            assert!(!updates.is_empty(), "write mix needs at least one update");
            let pick = next_update % updates.len();
            next_update += 1;
            (
                PlannedKind::Update(pick),
                "/update",
                format!("{{\"insert\": {}}}", json_escape(&updates[pick])),
            )
        };
        schedule.push(PlannedRequest {
            at_us: (clock_s * 1e6) as u64,
            kind,
            path,
            body,
        });
    }
    schedule
}

/// One request's fate.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// When the schedule said to send it (µs from run start).
    pub scheduled_us: u64,
    /// When a lane actually sent it.
    pub sent_us: u64,
    /// When the response (or failure) was in hand.
    pub done_us: u64,
    /// HTTP status; 0 for transport failures.
    pub status: u16,
    /// Whether this was a `/query`.
    pub is_read: bool,
}

impl RequestOutcome {
    /// End-to-end latency as the client saw it (send → response).
    pub fn latency_us(&self) -> u64 {
        self.done_us.saturating_sub(self.sent_us)
    }

    /// How late the lane pool was against the schedule.
    pub fn skew_us(&self) -> u64 {
        self.sent_us.saturating_sub(self.scheduled_us)
    }
}

/// Everything a replayed schedule produced.
#[derive(Debug, Clone, Default)]
pub struct LoadOutcome {
    /// Per-request outcomes (schedule order not guaranteed).
    pub outcomes: Vec<RequestOutcome>,
    /// Wall time of the whole replay, µs.
    pub wall_us: u64,
}

impl LoadOutcome {
    /// Latencies of admitted (2xx) requests.
    pub fn admitted_latencies_us(&self) -> Vec<u64> {
        self.outcomes
            .iter()
            .filter(|o| (200..300).contains(&o.status))
            .map(RequestOutcome::latency_us)
            .collect()
    }

    /// Requests refused by admission control (503).
    pub fn rejected(&self) -> usize {
        self.outcomes.iter().filter(|o| o.status == 503).count()
    }

    /// Requests that failed at the transport (no HTTP response).
    pub fn transport_errors(&self) -> usize {
        self.outcomes.iter().filter(|o| o.status == 0).count()
    }

    /// Completed-and-admitted throughput over the replay wall time.
    pub fn achieved_rps(&self) -> f64 {
        if self.wall_us == 0 {
            return 0.0;
        }
        self.admitted_latencies_us().len() as f64 / (self.wall_us as f64 / 1e6)
    }

    /// 95th-percentile schedule skew — how honestly open-loop the replay
    /// was (large skew means the lane pool was the bottleneck, not the
    /// server).
    pub fn skew_p95_us(&self) -> u64 {
        let mut skews: Vec<u64> = self.outcomes.iter().map(RequestOutcome::skew_us).collect();
        if skews.is_empty() {
            return 0;
        }
        skews.sort_unstable();
        skews[(skews.len() - 1).min(skews.len() * 95 / 100)]
    }
}

/// Replay a schedule against a live server.
pub fn run(addr: SocketAddr, schedule: &[PlannedRequest], lanes: usize) -> LoadOutcome {
    let next = AtomicUsize::new(0);
    let epoch = Instant::now();
    let outcomes = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..lanes.max(1))
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut recorded = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(slot) = schedule.get(i) else {
                            break;
                        };
                        let due = Duration::from_micros(slot.at_us);
                        let now = epoch.elapsed();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        let sent_us = epoch.elapsed().as_micros() as u64;
                        let status = exchange(addr, slot).unwrap_or(0);
                        recorded.push(RequestOutcome {
                            scheduled_us: slot.at_us,
                            sent_us,
                            done_us: epoch.elapsed().as_micros() as u64,
                            status,
                            is_read: matches!(slot.kind, PlannedKind::Query(_)),
                        });
                    }
                    recorded
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("lane thread"))
            .collect()
    });
    LoadOutcome {
        outcomes,
        wall_us: epoch.elapsed().as_micros() as u64,
    }
}

/// One `Connection: close` request/response exchange; `None` on any
/// transport failure.
fn exchange(addr: SocketAddr, slot: &PlannedRequest) -> Option<u16> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).ok()?;
    stream.set_nodelay(true).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    let request = format!(
        "POST {} HTTP/1.1\r\nHost: openloop\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
        slot.path,
        slot.body.len(),
        slot.body
    );
    stream.write_all(request.as_bytes()).ok()?;
    read_status_and_drain(&mut stream)
}

fn read_status_and_drain(stream: &mut TcpStream) -> Option<u16> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let header_end = loop {
        if let Some(end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break end;
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let head = std::str::from_utf8(&buf[..header_end]).ok()?;
    let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(|v| v.trim().to_string())
        })?
        .parse()
        .ok()?;
    let mut have = buf.len() - header_end - 4;
    while have < content_length {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => have += n,
        }
    }
    Some(status)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn texts(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("SELECT q{i}")).collect()
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let config = OpenLoopConfig::default();
        let a = plan(&config, &texts(4), &texts(2));
        let b = plan(&config, &texts(4), &texts(2));
        assert_eq!(a.len(), config.requests);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at_us, y.at_us);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.body, y.body);
        }
        let c = plan(&OpenLoopConfig { seed: 7, ..config }, &texts(4), &texts(2));
        assert!(a.iter().zip(&c).any(|(x, y)| x.at_us != y.at_us));
    }

    #[test]
    fn arrival_times_follow_the_rate() {
        let config = OpenLoopConfig {
            requests: 2000,
            arrival_rate: 1000.0,
            ..OpenLoopConfig::default()
        };
        let schedule = plan(&config, &texts(3), &texts(1));
        assert!(
            schedule.windows(2).all(|w| w[0].at_us <= w[1].at_us),
            "arrivals are cumulative"
        );
        // 2000 arrivals at 1000/s take ~2s; Poisson noise stays well
        // within ±20% at this sample size.
        let span_s = schedule.last().unwrap().at_us as f64 / 1e6;
        assert!((1.6..=2.4).contains(&span_s), "span {span_s}s");
    }

    #[test]
    fn mix_and_skew_shape_the_plan() {
        let config = OpenLoopConfig {
            requests: 1000,
            read_ratio: 0.8,
            zipf_skew: 1.2,
            ..OpenLoopConfig::default()
        };
        let schedule = plan(&config, &texts(8), &texts(2));
        let reads = schedule
            .iter()
            .filter(|r| matches!(r.kind, PlannedKind::Query(_)))
            .count();
        let share = reads as f64 / schedule.len() as f64;
        assert!((0.72..=0.88).contains(&share), "read share {share}");
        // Zipf: the hottest query dominates any single cold one.
        let hits = |idx: usize| {
            schedule
                .iter()
                .filter(|r| r.kind == PlannedKind::Query(idx))
                .count()
        };
        assert!(hits(0) > 3 * hits(7), "{} vs {}", hits(0), hits(7));
        // Updates rotate round-robin through the document list.
        let first_two: Vec<usize> = schedule
            .iter()
            .filter_map(|r| match r.kind {
                PlannedKind::Update(i) => Some(i),
                _ => None,
            })
            .take(2)
            .collect();
        assert_eq!(first_two, [0, 1]);
    }

    #[test]
    fn bodies_escape_query_text() {
        let config = OpenLoopConfig {
            requests: 20,
            read_ratio: 1.0,
            ..OpenLoopConfig::default()
        };
        let tricky = vec!["SELECT \"x\"\nWHERE".to_string()];
        let schedule = plan(&config, &tricky, &[]);
        assert!(schedule[0].body.contains(r#"\"x\"\nWHERE"#));
    }

    /// Replay against a minimal in-test HTTP responder: every outcome is
    /// recorded, statuses come back, skew accounting works.
    #[test]
    fn replays_a_schedule_over_real_sockets() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut served = 0usize;
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                let mut buf = [0u8; 2048];
                let mut read = 0usize;
                // Read until the (tiny) request is fully here.
                while !buf[..read].windows(4).any(|w| w == b"\r\n\r\n") {
                    match stream.read(&mut buf[read..]) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => read += n,
                    }
                }
                let status = if served % 5 == 4 { 503 } else { 200 };
                let _ = stream.write_all(
                    format!(
                        "HTTP/1.1 {status} X\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok"
                    )
                    .as_bytes(),
                );
                served += 1;
                if served == 30 {
                    break;
                }
            }
        });

        let config = OpenLoopConfig {
            requests: 30,
            arrival_rate: 2000.0,
            read_ratio: 0.5,
            lanes: 4,
            ..OpenLoopConfig::default()
        };
        let schedule = plan(&config, &texts(2), &texts(2));
        let outcome = run(addr, &schedule, config.lanes);
        server.join().unwrap();

        assert_eq!(outcome.outcomes.len(), 30);
        assert_eq!(outcome.transport_errors(), 0);
        assert_eq!(outcome.rejected(), 6, "every fifth response was a 503");
        assert_eq!(outcome.admitted_latencies_us().len(), 24);
        assert!(outcome.achieved_rps() > 0.0);
        for o in &outcome.outcomes {
            assert!(o.sent_us >= o.scheduled_us, "never send early");
            assert!(o.done_us >= o.sent_us);
        }
    }
}
