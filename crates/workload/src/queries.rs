//! Random parametrized query workloads over a facet.
//!
//! §4: "For each dataset we will propose a query workload composed of
//! different parametrized queries for a given query template." A workload
//! query groups by a random subset of the facet's dimensions, aggregates
//! the measure with a derivable operator, and (with some probability) adds
//! an equality `FILTER` on a dimension with a value sampled from the data.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sofos_cube::{facet_query, AggOp, Facet, ViewMask};
use sofos_rdf::Term;
use sofos_sparql::{query_to_sparql, CompareOp, Evaluator, Expr, Query, SelectItem};
use sofos_store::Dataset;

/// Workload generation parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of queries to produce.
    pub num_queries: usize,
    /// RNG seed.
    pub seed: u64,
    /// Probability that a query carries an extra dimension filter.
    pub filter_probability: f64,
    /// `Some(s)`: Zipf-skew query interest toward a few masks (hot facets);
    /// `None`: uniform over all eligible masks.
    pub mask_skew: Option<f64>,
    /// Allowed aggregates; empty = all aggregates derivable from the facet.
    pub aggs: Vec<AggOp>,
    /// `Some(cap)`: queries group by at most `cap` dimensions (the
    /// fine-grained end of the lattice is never *demanded*, so selection
    /// budgets can exclude the fat views without starving the workload).
    /// Filters may still extend `required` past the cap. `None`: any mask.
    pub max_group_dims: Option<usize>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            num_queries: 40,
            seed: 99,
            filter_probability: 0.4,
            mask_skew: None,
            aggs: Vec::new(),
            max_group_dims: None,
        }
    }
}

/// One generated workload query.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// The query AST (ready for the evaluator or the rewriter).
    pub query: Query,
    /// Grouping dimensions.
    pub group_mask: ViewMask,
    /// Grouping ∪ filter dimensions — what a view must cover.
    pub required: ViewMask,
    /// The aggregate used.
    pub agg: AggOp,
    /// SPARQL text (for reports).
    pub text: String,
}

/// The aggregate operators answerable from views materialized for
/// `facet.agg` (component-subset rule).
pub fn derivable_aggs(facet: &Facet) -> Vec<AggOp> {
    let available = facet.agg.components();
    AggOp::ALL
        .into_iter()
        .filter(|agg| agg.components().iter().all(|c| available.contains(c)))
        .collect()
}

/// Sample the distinct values of each dimension (for filter constants).
pub fn dimension_values(dataset: &Dataset, facet: &Facet) -> Vec<Vec<Term>> {
    let evaluator = Evaluator::new(dataset);
    facet
        .dimensions
        .iter()
        .map(|dim| {
            let query = Query {
                select: vec![SelectItem::Var(dim.var.clone())],
                wildcard: false,
                distinct: true,
                pattern: facet.pattern.clone(),
                group_by: Vec::new(),
                having: None,
                order_by: Vec::new(),
                limit: Some(1000),
                offset: None,
            };
            match evaluator.evaluate(&query) {
                Ok(results) => results
                    .rows
                    .into_iter()
                    .filter_map(|mut row| row.pop().flatten())
                    .collect(),
                Err(_) => Vec::new(),
            }
        })
        .collect()
}

/// Generate a deterministic random workload.
pub fn generate_workload(
    dataset: &Dataset,
    facet: &Facet,
    config: &WorkloadConfig,
) -> Vec<GeneratedQuery> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let d = facet.dim_count();
    let num_masks = 1u64 << d;
    let aggs = if config.aggs.is_empty() {
        derivable_aggs(facet)
    } else {
        config.aggs.clone()
    };
    assert!(!aggs.is_empty(), "no derivable aggregates for this facet");
    let values = dimension_values(dataset, facet);

    // Eligible grouping masks (all of them, or the ≤ `max_group_dims`
    // prefix of the lattice).
    let eligible: Vec<u64> = (0..num_masks)
        .filter(|&m| {
            config
                .max_group_dims
                .is_none_or(|cap| ViewMask(m).dim_count() as usize <= cap)
        })
        .collect();
    assert!(!eligible.is_empty(), "mask cap excludes every grouping");

    // Optional mask skew: a random permutation of masks ranked by Zipf.
    let mask_order: Vec<u64> = {
        let mut order = eligible.clone();
        // Deterministic shuffle so the "hot" masks differ per seed.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        order
    };
    let zipf = config.mask_skew.map(|s| Zipf::new(mask_order.len(), s));

    let mut out = Vec::with_capacity(config.num_queries);
    for _ in 0..config.num_queries {
        let mask = match &zipf {
            Some(z) => ViewMask(mask_order[z.sample(&mut rng)]),
            None => ViewMask(eligible[rng.gen_range(0..eligible.len() as u64) as usize]),
        };
        let agg = aggs[rng.gen_range(0..aggs.len())];

        let mut filters = Vec::new();
        let mut filter_mask = ViewMask::APEX;
        if rng.gen_bool(config.filter_probability.clamp(0.0, 1.0)) && d > 0 {
            let dim = rng.gen_range(0..d);
            if let Some(value) = pick(&values[dim], &mut rng) {
                filters.push(Expr::Compare(
                    CompareOp::Eq,
                    Box::new(Expr::var(facet.dimensions[dim].var.clone())),
                    Box::new(Expr::Const(value.clone())),
                ));
                filter_mask = filter_mask.with(dim);
            }
        }

        let query = facet_query(facet, mask, agg, filters);
        let text = query_to_sparql(&query);
        out.push(GeneratedQuery {
            query,
            group_mask: mask,
            required: mask.union(filter_mask),
            agg,
            text,
        });
    }
    out
}

fn pick<'a, T>(items: &'a [T], rng: &mut StdRng) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.gen_range(0..items.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbpedia;

    fn setup() -> (Dataset, Facet) {
        let g = dbpedia::generate(&dbpedia::Config::default());
        let facet = g.facets[0].clone();
        (g.dataset, facet)
    }

    #[test]
    fn workload_is_deterministic() {
        let (ds, facet) = setup();
        let config = WorkloadConfig::default();
        let a = generate_workload(&ds, &facet, &config);
        let b = generate_workload(&ds, &facet, &config);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.text, y.text);
        }
    }

    #[test]
    fn group_dim_cap_bounds_every_mask() {
        let (ds, facet) = setup();
        for cap in [0usize, 1, 2] {
            let workload = generate_workload(
                &ds,
                &facet,
                &WorkloadConfig {
                    num_queries: 25,
                    filter_probability: 0.0,
                    mask_skew: Some(1.2),
                    max_group_dims: Some(cap),
                    ..WorkloadConfig::default()
                },
            );
            for q in &workload {
                assert!(
                    q.group_mask.dim_count() as usize <= cap,
                    "cap {cap} violated by {}",
                    q.group_mask
                );
            }
        }
    }

    #[test]
    fn queries_evaluate_on_the_base_graph() {
        let (ds, facet) = setup();
        let workload = generate_workload(
            &ds,
            &facet,
            &WorkloadConfig {
                num_queries: 15,
                ..WorkloadConfig::default()
            },
        );
        let evaluator = Evaluator::new(&ds);
        for q in &workload {
            evaluator
                .evaluate(&q.query)
                .unwrap_or_else(|e| panic!("workload query failed: {e}\n{}", q.text));
        }
    }

    #[test]
    fn required_covers_group_mask() {
        let (ds, facet) = setup();
        let workload = generate_workload(
            &ds,
            &facet,
            &WorkloadConfig {
                num_queries: 30,
                filter_probability: 1.0,
                ..Default::default()
            },
        );
        for q in &workload {
            assert!(q.required.covers(q.group_mask));
        }
        // With filter probability 1, most queries gain a filter dimension.
        let with_filters = workload
            .iter()
            .filter(|q| q.required != q.group_mask)
            .count();
        assert!(with_filters > 0);
    }

    #[test]
    fn derivable_aggs_respect_components() {
        let (_, facet) = setup();
        // DBpedia facet is SUM: only SUM and nothing needing COUNT/MIN/MAX.
        assert_eq!(derivable_aggs(&facet), vec![AggOp::Sum]);
    }

    #[test]
    fn skewed_workloads_concentrate() {
        let (ds, facet) = setup();
        let config = WorkloadConfig {
            num_queries: 80,
            mask_skew: Some(1.5),
            filter_probability: 0.0,
            ..Default::default()
        };
        let workload = generate_workload(&ds, &facet, &config);
        let mut counts: std::collections::HashMap<u64, usize> = Default::default();
        for q in &workload {
            *counts.entry(q.group_mask.0).or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(
            max as f64 > 80.0 / 16.0 * 2.0,
            "hot mask should dominate: max {max}"
        );
    }

    #[test]
    fn dimension_values_are_nonempty() {
        let (ds, facet) = setup();
        let values = dimension_values(&ds, &facet);
        assert_eq!(values.len(), facet.dim_count());
        for (dim, vals) in facet.dimensions.iter().zip(&values) {
            assert!(!vals.is_empty(), "no values for ?{}", dim.var);
        }
    }
}
