//! Semantic Web Dogfood-like generator: conference metadata.
//!
//! SWDF is the small, star-shaped dataset of the demo: papers link to a
//! conference edition, a track and authors. The facet aggregates citation
//! counts by `(conference, year, track)`.
//!
//! Substitution note (`DESIGN.md` §4): the real SWDF dump is replaced by a
//! generator preserving its paper-centric star topology, which is what
//! stresses the divergence between the `#nodes` and `#triples` cost models
//! (many literals per observation vs. few repeated IRIs).

use crate::zipf::Zipf;
use crate::GeneratedDataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sofos_cube::{AggOp, Dimension, Facet};
use sofos_rdf::vocab::rdf;
use sofos_rdf::{Literal, Term};
use sofos_sparql::{GroupPattern, PatternTerm, TriplePattern};
use sofos_store::Dataset;

/// Namespace of the generated data.
pub const NS: &str = "http://sofos.example/swdf/";

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of conference series (ISWC, ESWC, ...).
    pub conferences: usize,
    /// Editions (years) per conference.
    pub editions: usize,
    /// Tracks per edition.
    pub tracks: usize,
    /// Papers per track (1..=max).
    pub max_papers_per_track: usize,
    /// Author pool size.
    pub authors: usize,
    /// Zipf exponent for author productivity.
    pub author_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            conferences: 3,
            editions: 4,
            tracks: 3,
            max_papers_per_track: 8,
            authors: 40,
            author_skew: 1.2,
            seed: 13,
        }
    }
}

impl Config {
    /// A larger configuration for benchmarks.
    pub fn scaled(factor: usize) -> Config {
        let base = Config::default();
        Config {
            conferences: base.conferences + factor / 2,
            editions: base.editions + factor / 2,
            max_papers_per_track: base.max_papers_per_track * factor,
            authors: base.authors * factor,
            ..base
        }
    }
}

fn iri(local: impl std::fmt::Display) -> Term {
    Term::iri(format!("{NS}{local}"))
}

/// Generate the dataset and its facet catalog.
pub fn generate(config: &Config) -> GeneratedDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut ds = Dataset::new();

    let type_p = Term::iri(rdf::TYPE);
    let paper_c = iri("Paper");
    let conference_p = iri("conference");
    let year_p = iri("year");
    let track_p = iri("track");
    let author_p = iri("creator");
    let citations_p = iri("citations");

    let authors: Vec<Term> = (0..config.authors)
        .map(|a| iri(format!("author/{a}")))
        .collect();
    let author_zipf = Zipf::new(config.authors, config.author_skew);

    // Track IRIs are shared across editions of the same conference (the
    // "Research Track" of ISWC is one entity) — this is the SWDF shape.
    let mut paper_counter = 0usize;
    for c in 0..config.conferences {
        let conference = iri(format!("conf/{c}"));
        for e in 0..config.editions {
            let year = 2016 + e as i32;
            for t in 0..config.tracks {
                let track = iri(format!("conf/{c}/track/{t}"));
                let papers = rng.gen_range(1..=config.max_papers_per_track);
                for _ in 0..papers {
                    let paper = iri(format!("paper/{paper_counter}"));
                    paper_counter += 1;
                    ds.insert(None, &paper, &type_p, &paper_c);
                    ds.insert(None, &paper, &conference_p, &conference);
                    ds.insert(None, &paper, &year_p, &Term::Literal(Literal::year(year)));
                    ds.insert(None, &paper, &track_p, &track);
                    // 1-3 authors, Zipf-productive.
                    let nauthors = rng.gen_range(1..=3);
                    for _ in 0..nauthors {
                        let a = &authors[author_zipf.sample(&mut rng)];
                        ds.insert(None, &paper, &author_p, a);
                    }
                    // Citations: mostly low, occasionally high.
                    let citations = if rng.gen_bool(0.1) {
                        rng.gen_range(50..500)
                    } else {
                        rng.gen_range(0..30)
                    };
                    ds.insert(None, &paper, &citations_p, &Term::literal_int(citations));
                }
            }
        }
    }
    ds.optimize();

    // Facet: citations by (conference, year, track), AVG.
    let pattern = GroupPattern::triples(vec![
        TriplePattern::new(
            PatternTerm::var("paper"),
            PatternTerm::iri(format!("{NS}conference")),
            PatternTerm::var("conf"),
        ),
        TriplePattern::new(
            PatternTerm::var("paper"),
            PatternTerm::iri(format!("{NS}year")),
            PatternTerm::var("year"),
        ),
        TriplePattern::new(
            PatternTerm::var("paper"),
            PatternTerm::iri(format!("{NS}track")),
            PatternTerm::var("track"),
        ),
        TriplePattern::new(
            PatternTerm::var("paper"),
            PatternTerm::iri(format!("{NS}citations")),
            PatternTerm::var("cites"),
        ),
    ]);
    let facet = Facet::new(
        "citations",
        vec![
            Dimension::labeled("conf", "conference"),
            Dimension::labeled("year", "edition year"),
            Dimension::labeled("track", "track"),
        ],
        pattern,
        "cites",
        AggOp::Avg,
    )
    .expect("facet variables bound by construction");

    GeneratedDataset {
        name: "swdf-like",
        description: "conferences / editions / tracks / papers / citations".into(),
        dataset: ds,
        facets: vec![facet],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofos_sparql::Evaluator;

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&Config::default());
        let b = generate(&Config::default());
        assert_eq!(a.dataset.total_triples(), b.dataset.total_triples());
    }

    #[test]
    fn papers_are_complete_stars() {
        let g = generate(&Config::default());
        let e = Evaluator::new(&g.dataset);
        let papers = e
            .evaluate_str(&format!("SELECT ?p WHERE {{ ?p a <{NS}Paper> }}"))
            .unwrap();
        let complete = e
            .evaluate_str(&format!(
                "SELECT ?p WHERE {{ ?p a <{NS}Paper> ; <{NS}conference> ?c ; \
                 <{NS}year> ?y ; <{NS}track> ?t ; <{NS}citations> ?n }}"
            ))
            .unwrap();
        assert_eq!(papers.len(), complete.len());
        assert!(!papers.is_empty());
    }

    #[test]
    fn tracks_are_shared_across_editions() {
        let g = generate(&Config::default());
        let e = Evaluator::new(&g.dataset);
        // A track entity must appear with more than one year.
        let r = e
            .evaluate_str(&format!(
                "SELECT ?t (COUNT(DISTINCT ?y) AS ?years) WHERE {{ \
                 ?p <{NS}track> ?t . ?p <{NS}year> ?y }} GROUP BY ?t \
                 HAVING (COUNT(DISTINCT ?y) > 1)"
            ))
            .unwrap();
        assert!(!r.is_empty(), "tracks recur across editions");
    }

    #[test]
    fn facet_lattice_is_sized_correctly() {
        let g = generate(&Config::default());
        let facet = &g.facets[0];
        let lattice = sofos_cube::Lattice::new(facet.clone());
        assert_eq!(lattice.num_views(), 8, "3 dims → 8 views");
    }
}
