//! A parametric synthetic observation cube.
//!
//! The demo's lattice-scaling experiment (E2) and learned-model study (E4)
//! need facets with a *configurable* number of dimensions and per-dimension
//! cardinalities — none of the three dataset generators can vary those
//! freely. This generator produces a flat star of observations
//! `?o dim_i v . ?o measure m` with chosen cardinalities and skew.

use crate::zipf::Zipf;
use crate::GeneratedDataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sofos_cube::{AggOp, Dimension, Facet};
use sofos_rdf::Term;
use sofos_sparql::{GroupPattern, PatternTerm, TriplePattern};
use sofos_store::Dataset;

/// Namespace of the generated data.
pub const NS: &str = "http://sofos.example/synthetic/";

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of observations.
    pub observations: usize,
    /// Distinct values per dimension (its length = dimension count ≤ 20).
    pub cardinalities: Vec<usize>,
    /// Zipf exponent applied to every dimension's value choice.
    pub skew: f64,
    /// Aggregation of the generated facet.
    pub agg: AggOp,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            observations: 200,
            cardinalities: vec![8, 5, 3],
            skew: 0.8,
            agg: AggOp::Sum,
            seed: 17,
        }
    }
}

impl Config {
    /// A `dims`-dimensional cube with geometric cardinalities, for lattice
    /// scaling sweeps.
    pub fn with_dims(dims: usize, observations: usize) -> Config {
        Config {
            observations,
            cardinalities: (0..dims).map(|d| 2 + 2 * (dims - d)).collect(),
            ..Config::default()
        }
    }

    /// A cube whose lattice holds at least `views` candidate views: the
    /// dimension count is the smallest `d` with `2^d ≥ views` (capped at
    /// [`Facet::MAX_DIMENSIONS`]), so selection-at-scale experiments and
    /// tests can request "a lattice of ~N views" deterministically
    /// instead of reasoning in dimension counts.
    pub fn with_view_target(views: usize, observations: usize) -> Config {
        let mut dims = 1usize;
        while (1u128 << dims) < views as u128 && dims < Facet::MAX_DIMENSIONS {
            dims += 1;
        }
        Config::with_dims(dims, observations)
    }

    /// Candidate views of the lattice this config generates (`2^dims`).
    pub fn lattice_views(&self) -> u64 {
        1u64 << self.cardinalities.len()
    }
}

fn iri(local: impl std::fmt::Display) -> Term {
    Term::iri(format!("{NS}{local}"))
}

/// Generate the cube and its facet.
pub fn generate(config: &Config) -> GeneratedDataset {
    assert!(
        config.cardinalities.len() <= Facet::MAX_DIMENSIONS,
        "too many dimensions"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut ds = Dataset::new();
    let measure_p = iri("measure");
    let dim_preds: Vec<Term> = (0..config.cardinalities.len())
        .map(|d| iri(format!("dim{d}")))
        .collect();
    let samplers: Vec<Zipf> = config
        .cardinalities
        .iter()
        .map(|&c| Zipf::new(c.max(1), config.skew))
        .collect();

    for i in 0..config.observations {
        let obs = Term::blank(format!("o{i}"));
        for (d, sampler) in samplers.iter().enumerate() {
            let v = sampler.sample(&mut rng);
            ds.insert(None, &obs, &dim_preds[d], &iri(format!("v{d}_{v}")));
        }
        ds.insert(
            None,
            &obs,
            &measure_p,
            &Term::literal_int(rng.gen_range(1..1000)),
        );
    }
    ds.optimize();

    let mut patterns = Vec::new();
    let mut dims = Vec::new();
    for d in 0..config.cardinalities.len() {
        patterns.push(TriplePattern::new(
            PatternTerm::var("o"),
            PatternTerm::iri(format!("{NS}dim{d}")),
            PatternTerm::var(format!("d{d}")),
        ));
        dims.push(Dimension::new(format!("d{d}")));
    }
    patterns.push(TriplePattern::new(
        PatternTerm::var("o"),
        PatternTerm::iri(format!("{NS}measure")),
        PatternTerm::var("m"),
    ));
    let facet = Facet::new(
        "cube",
        dims,
        GroupPattern::triples(patterns),
        "m",
        config.agg,
    )
    .expect("facet variables bound by construction");

    GeneratedDataset {
        name: "synthetic-cube",
        description: format!(
            "{} observations over {:?} cardinalities (skew {})",
            config.observations, config.cardinalities, config.skew
        ),
        dataset: ds,
        facets: vec![facet],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_count_matches_config() {
        let g = generate(&Config::with_dims(5, 50));
        assert_eq!(g.default_facet().dim_count(), 5);
        assert_eq!(
            g.dataset.default_graph().len(),
            50 * 6, // 5 dims + 1 measure per observation
        );
    }

    #[test]
    fn view_target_picks_the_smallest_covering_dimension_count() {
        assert_eq!(Config::with_view_target(2, 10).lattice_views(), 2);
        assert_eq!(Config::with_view_target(256, 10).lattice_views(), 256);
        assert_eq!(Config::with_view_target(300, 10).lattice_views(), 512);
        assert_eq!(Config::with_view_target(8192, 10).lattice_views(), 8192);
        // The cap: no config can exceed MAX_DIMENSIONS dims.
        let capped = Config::with_view_target(usize::MAX, 10);
        assert_eq!(capped.cardinalities.len(), Facet::MAX_DIMENSIONS);
        // And the generated facet matches the request deterministically.
        let g = generate(&Config::with_view_target(64, 40));
        assert_eq!(g.default_facet().dim_count(), 6);
    }

    #[test]
    fn deterministic() {
        let a = generate(&Config::default());
        let b = generate(&Config::default());
        assert_eq!(a.dataset.total_triples(), b.dataset.total_triples());
    }

    #[test]
    fn cardinalities_are_respected() {
        let g = generate(&Config {
            observations: 500,
            cardinalities: vec![4, 2],
            ..Config::default()
        });
        let e = sofos_sparql::Evaluator::new(&g.dataset);
        let r = e
            .evaluate_str(&format!("SELECT DISTINCT ?v WHERE {{ ?o <{NS}dim0> ?v }}"))
            .unwrap();
        assert!(r.len() <= 4);
        assert!(r.len() >= 2, "with 500 draws most values appear");
    }
}
