//! Update streams: zipf-skewed insert/delete mixes over a facet's data.
//!
//! The maintenance experiments (E7) need a *living* graph: batches of
//! observation-level inserts and deletes whose dimension values follow the
//! same skew as the seed data, so hot groups churn more than cold ones —
//! the regime where staleness policies actually differ. Streams are
//! generated against a snapshot of the dataset but simulate their own
//! effects, so deletes always reference observations that are still alive
//! at that point in the stream. All generation is deterministic per seed.

use crate::queries::dimension_values;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sofos_cube::Facet;
use sofos_rdf::{FxHashMap, Term, TermId};
use sofos_sparql::{GraphSpec, PatternElement, PatternTerm};
use sofos_store::{Dataset, Delta, IdPattern};

/// Update-stream parameters.
#[derive(Debug, Clone)]
pub struct UpdateStreamConfig {
    /// Number of [`Delta`] batches to produce.
    pub batches: usize,
    /// Observation-level operations per batch.
    pub batch_size: usize,
    /// Probability an operation inserts a new observation (the rest
    /// delete an existing one).
    pub insert_ratio: f64,
    /// Zipf exponent over each dimension's existing values (inserts) and
    /// over deletion targets; `0` is uniform.
    pub skew: f64,
    /// Zipf exponent over *finest-group keys* (full dimension-value
    /// tuples observed in the live data). When `> 0`, inserts sample a
    /// whole existing group and reuse its dimension tuple, concentrating
    /// churn on hot groups; `0` keeps the per-dimension sampling above.
    /// Falls back to per-dimension sampling when no complete group has
    /// been observed yet.
    pub group_skew: f64,
    /// Measure values are drawn uniformly from this range.
    pub measure_range: std::ops::Range<i64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UpdateStreamConfig {
    fn default() -> Self {
        UpdateStreamConfig {
            batches: 10,
            batch_size: 8,
            insert_ratio: 0.6,
            skew: 0.8,
            group_skew: 0.0,
            measure_range: 1..1000,
            seed: 23,
        }
    }
}

/// The facet's star shape, as far as the generator needs it: one constant
/// predicate per dimension plus the measure predicate.
struct FacetPreds {
    dims: Vec<Term>,
    measure: Term,
}

fn facet_preds(facet: &Facet) -> Option<FacetPreds> {
    let mut by_var: FxHashMap<&str, &Term> = FxHashMap::default();
    for element in &facet.pattern.elements {
        let PatternElement::Triples {
            graph: GraphSpec::Default,
            patterns,
        } = element
        else {
            continue;
        };
        for pattern in patterns {
            if let (Some(var), PatternTerm::Const(pred)) =
                (pattern.object.as_var(), &pattern.predicate)
            {
                by_var.insert(var, pred);
            }
        }
    }
    let dims = facet
        .dimensions
        .iter()
        .map(|d| by_var.get(d.var.as_str()).map(|&p| p.clone()))
        .collect::<Option<Vec<Term>>>()?;
    let measure = by_var.get(facet.measure.as_str()).map(|&p| p.clone())?;
    Some(FacetPreds { dims, measure })
}

/// Generate a deterministic stream of update batches for a facet.
///
/// Inserts create fresh observation nodes whose dimension values are
/// zipf-sampled from the values already present in the data (plus a fresh
/// measure); deletes remove *whole* observations — every facet-predicate
/// triple of a zipf-chosen live subject. Returns one [`Delta`] per batch.
///
/// Panics if the facet's dimensions and measure are not bound by constant
/// predicates (every shipped facet binds them that way).
pub fn generate_update_stream(
    dataset: &Dataset,
    facet: &Facet,
    config: &UpdateStreamConfig,
) -> Vec<Delta> {
    let preds =
        facet_preds(facet).expect("update streams need constant dimension/measure predicates");
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Existing dimension values (zipf-ranked by their discovery order,
    // which is deterministic) — inserts re-use the live value universe.
    let values: Vec<Vec<Term>> = dimension_values(dataset, facet);
    let dim_samplers: Vec<Option<Zipf>> = values
        .iter()
        .map(|v| (!v.is_empty()).then(|| Zipf::new(v.len(), config.skew)))
        .collect();

    // Live observations: subject → its facet triples. Seeded from the
    // snapshot, then simulated forward as the stream is generated.
    let mut live: Vec<(Term, Vec<(Term, Term)>)> = live_observations(dataset, &preds);

    // Finest-group keys — complete dimension-value tuples observed in the
    // live data, in (deterministic) discovery order. Under `group_skew`
    // inserts reuse a zipf-chosen tuple wholesale, so churn concentrates
    // on hot groups rather than hot per-dimension values.
    let group_keys: Vec<Vec<Term>> = finest_groups(&live, &preds);
    let group_sampler: Option<Zipf> = (config.group_skew > 0.0 && !group_keys.is_empty())
        .then(|| Zipf::new(group_keys.len(), config.group_skew));

    let mut out = Vec::with_capacity(config.batches);
    let mut fresh = 0usize;
    for _ in 0..config.batches {
        let mut delta = Delta::new();
        // One deletion sampler per batch (the cumulative table costs
        // O(live)); ranks are clamped as the pool shrinks mid-batch.
        let mut delete_sampler: Option<Zipf> = None;
        for _ in 0..config.batch_size {
            let insert = live.is_empty() || rng.gen_bool(config.insert_ratio.clamp(0.0, 1.0));
            if insert {
                let node = Term::blank(format!("upd{}_{}", config.seed, fresh));
                fresh += 1;
                let mut triples: Vec<(Term, Term)> = Vec::with_capacity(preds.dims.len() + 1);
                if let Some(zipf) = &group_sampler {
                    let key = &group_keys[zipf.sample(&mut rng)];
                    for (pred, value) in preds.dims.iter().zip(key) {
                        triples.push((pred.clone(), value.clone()));
                    }
                } else {
                    for (d, pred) in preds.dims.iter().enumerate() {
                        let value = match (&dim_samplers[d], values[d].as_slice()) {
                            (Some(zipf), pool) => pool[zipf.sample(&mut rng)].clone(),
                            // A dimension with no observed values yet: mint one.
                            (None, _) => {
                                Term::iri(format!("http://sofos.example/update-value/d{d}"))
                            }
                        };
                        triples.push((pred.clone(), value));
                    }
                }
                let measure = rng.gen_range(config.measure_range.clone());
                triples.push((preds.measure.clone(), Term::literal_int(measure)));
                for (p, o) in &triples {
                    delta.insert(node.clone(), p.clone(), o.clone());
                }
                live.push((node, triples));
            } else {
                // Zipf toward the front: long-lived (hot) observations
                // are deleted more often than the tail.
                let sampler =
                    delete_sampler.get_or_insert_with(|| Zipf::new(live.len(), config.skew));
                let rank = sampler.sample(&mut rng).min(live.len() - 1);
                let (node, triples) = live.swap_remove(rank);
                for (p, o) in triples {
                    delta.delete(node.clone(), p, o);
                }
            }
        }
        out.push(delta);
    }
    out
}

/// Distinct complete dimension-value tuples among the live observations,
/// in discovery order (live observations are subject-sorted, so the order
/// is deterministic). Observations missing a dimension are skipped.
fn finest_groups(live: &[(Term, Vec<(Term, Term)>)], preds: &FacetPreds) -> Vec<Vec<Term>> {
    let mut seen: FxHashMap<Vec<Term>, ()> = FxHashMap::default();
    let mut keys = Vec::new();
    'obs: for (_, triples) in live {
        let mut key = Vec::with_capacity(preds.dims.len());
        for pred in &preds.dims {
            match triples.iter().find(|(p, _)| p == pred) {
                Some((_, value)) => key.push(value.clone()),
                None => continue 'obs,
            }
        }
        if seen.insert(key.clone(), ()).is_none() {
            keys.push(key);
        }
    }
    keys
}

/// All current observations with their facet triples.
fn live_observations(dataset: &Dataset, preds: &FacetPreds) -> Vec<(Term, Vec<(Term, Term)>)> {
    let base = dataset.default_graph();
    let Some(measure_id) = dataset.dict().get_id(&preds.measure) else {
        return Vec::new();
    };
    let mut subjects: Vec<TermId> = base
        .scan(IdPattern::new(None, Some(measure_id), None))
        .map(|[s, _, _]| s)
        .collect();
    subjects.sort_unstable();
    subjects.dedup();

    let pred_ids: Vec<Option<TermId>> = preds
        .dims
        .iter()
        .map(|p| dataset.dict().get_id(p))
        .chain(std::iter::once(Some(measure_id)))
        .collect();
    subjects
        .into_iter()
        .map(|s| {
            let mut triples = Vec::new();
            for pred in pred_ids.iter().flatten() {
                for [_, p, o] in base.scan(IdPattern::new(Some(s), Some(*pred), None)) {
                    triples.push((dataset.term(p).clone(), dataset.term(o).clone()));
                }
            }
            (dataset.term(s).clone(), triples)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;

    fn setup() -> (Dataset, Facet) {
        let g = synthetic::generate(&synthetic::Config {
            observations: 60,
            ..synthetic::Config::default()
        });
        let facet = g.facets[0].clone();
        (g.dataset, facet)
    }

    #[test]
    fn streams_are_deterministic() {
        let (ds, facet) = setup();
        let config = UpdateStreamConfig::default();
        let a = generate_update_stream(&ds, &facet, &config);
        let b = generate_update_stream(&ds, &facet, &config);
        assert_eq!(a.len(), config.batches);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.len(), y.len());
            for (ox, oy) in x.ops().zip(y.ops()) {
                assert_eq!(ox.kind, oy.kind);
                assert_eq!(ox.triple, oy.triple);
            }
        }
    }

    #[test]
    fn deletes_always_hit_live_observations() {
        let (mut ds, facet) = setup();
        let stream = generate_update_stream(
            &ds,
            &facet,
            &UpdateStreamConfig {
                batches: 12,
                batch_size: 10,
                insert_ratio: 0.4, // delete-heavy
                ..UpdateStreamConfig::default()
            },
        );
        let mut noops = 0;
        for delta in stream {
            noops += ds.apply(delta).noops;
        }
        assert_eq!(
            noops, 0,
            "every queued op must hit (inserts new, deletes live)"
        );
    }

    #[test]
    fn insert_ratio_extremes() {
        let (ds, facet) = setup();
        let before = ds.default_graph().len();

        let mut grown = ds.clone();
        for delta in generate_update_stream(
            &grown.clone(),
            &facet,
            &UpdateStreamConfig {
                insert_ratio: 1.0,
                ..Default::default()
            },
        ) {
            grown.apply(delta);
        }
        assert!(
            grown.default_graph().len() > before,
            "pure inserts grow the graph"
        );

        let mut shrunk = ds.clone();
        for delta in generate_update_stream(
            &shrunk.clone(),
            &facet,
            &UpdateStreamConfig {
                insert_ratio: 0.0,
                ..Default::default()
            },
        ) {
            shrunk.apply(delta);
        }
        assert!(
            shrunk.default_graph().len() < before,
            "pure deletes shrink the graph"
        );
    }

    #[test]
    fn inserted_observations_are_complete_stars() {
        let (mut ds, facet) = setup();
        let stream = generate_update_stream(
            &ds,
            &facet,
            &UpdateStreamConfig {
                insert_ratio: 1.0,
                batches: 2,
                ..Default::default()
            },
        );
        let dims = facet.dim_count();
        for delta in &stream {
            // Each op group: one triple per dimension + one measure.
            assert_eq!(delta.len() % (dims + 1), 0);
        }
        for delta in stream {
            ds.apply(delta);
        }
        // New observations answer the facet's base query.
        let q = sofos_cube::facet_query(
            &facet,
            sofos_cube::ViewMask::APEX,
            sofos_cube::AggOp::Count,
            vec![],
        );
        let r = sofos_sparql::Evaluator::new(&ds).evaluate(&q).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn group_skew_reuses_whole_existing_tuples() {
        let (ds, facet) = setup();
        let preds = facet_preds(&facet).expect("constant predicates");
        let existing = finest_groups(&live_observations(&ds, &preds), &preds);
        assert!(!existing.is_empty(), "seed data has complete groups");

        let stream = generate_update_stream(
            &ds,
            &facet,
            &UpdateStreamConfig {
                batches: 30,
                batch_size: 10,
                insert_ratio: 1.0,
                group_skew: 1.4,
                ..Default::default()
            },
        );
        // Reassemble each inserted observation's dimension tuple.
        let mut tuples: std::collections::HashMap<String, Vec<(Term, Term)>> = Default::default();
        for delta in &stream {
            for op in delta.ops() {
                let [s, p, o] = &op.triple;
                if preds.dims.contains(p) {
                    tuples
                        .entry(format!("{s:?}"))
                        .or_default()
                        .push((p.clone(), o.clone()));
                }
            }
        }
        let mut counts: std::collections::HashMap<Vec<Term>, usize> = Default::default();
        for pairs in tuples.values() {
            let key: Vec<Term> = preds
                .dims
                .iter()
                .map(|pred| {
                    pairs
                        .iter()
                        .find(|(p, _)| p == pred)
                        .map(|(_, o)| o.clone())
                        .expect("complete star")
                })
                .collect();
            assert!(
                existing.contains(&key),
                "group-skewed inserts reuse an observed tuple: {key:?}"
            );
            *counts.entry(key).or_default() += 1;
        }
        let total: usize = counts.values().sum();
        let max = counts.values().copied().max().unwrap_or(0);
        assert!(
            max * 3 > total,
            "hot group should dominate under group_skew 1.4"
        );
    }

    #[test]
    fn skewed_streams_concentrate_on_hot_values() {
        let (ds, facet) = setup();
        let stream = generate_update_stream(
            &ds,
            &facet,
            &UpdateStreamConfig {
                batches: 30,
                batch_size: 10,
                insert_ratio: 1.0,
                skew: 1.4,
                ..Default::default()
            },
        );
        // Count dimension-0 values across inserted observations.
        let mut counts: std::collections::HashMap<String, usize> = Default::default();
        for delta in &stream {
            for op in delta.ops() {
                let [_, p, o] = &op.triple;
                if format!("{p:?}").contains("dim0") {
                    *counts.entry(format!("{o:?}")).or_default() += 1;
                }
            }
        }
        let total: usize = counts.values().sum();
        let max = counts.values().copied().max().unwrap_or(0);
        assert!(
            max * 3 > total,
            "hot value should dominate under skew 1.4: {counts:?}"
        );
    }
}
