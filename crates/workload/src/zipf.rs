//! A small Zipf sampler (rank-frequency skew for generated data).
//!
//! Real KG facets are skewed — a few languages dominate the population
//! observations, a few venues dominate publications. The generators use
//! this sampler so view sizes across the lattice differ enough to separate
//! the cost models (a uniform world would make them all agree).

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `s`
/// (`P(i) ∝ 1/(i+1)^s`); `s = 0` is uniform.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build the cumulative table for `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when there is a single rank.
    pub fn is_empty(&self) -> bool {
        false // constructor requires n > 0
    }

    /// Sample a rank in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn skewed_when_s_positive() {
        let z = Zipf::new(10, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[4], "rank 0 must dominate: {counts:?}");
        assert!(counts[0] > counts[9] * 3, "heavy skew expected: {counts:?}");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
        assert_eq!(z.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }
}
