//! A guided tour of the SOFOS architecture (the paper's Figure 2), one
//! subsystem at a time, on a small synthetic cube:
//!
//! 1. build a knowledge graph `G` (store)
//! 2. define the analytical facet `F = ⟨X̄, P, agg(u)⟩` (cube)
//! 3. enumerate and size the view lattice `V(F)` (cube + materialize)
//! 4. price views under two cost models (cost)
//! 5. select `k` views with the HRU greedy (select)
//! 6. materialize them into `G+` (materialize)
//! 7. serve the query through the one front door (core::Engine), rewritten
//!    against the best view (rewrite + sparql)
//! 8. keep serving while the graph lives: updates flow through the same
//!    engine under a staleness policy, answers carry freshness tags
//!
//! Run with: `cargo run --example architecture_tour`

use sofos::core::{Backend, Engine, Route, StalenessPolicy};
use sofos::cost::{AggValuesCost, CostContext, CostModel, TriplesCost};
use sofos::cube::{facet_query, AggOp, Lattice, ViewMask};
use sofos::materialize::materialize_views;
use sofos::select::{greedy_select, Budget, WorkloadProfile};
use sofos::sparql::{query_to_sparql, Evaluator};
use sofos::store::{Delta, GraphStats};
use sofos::workload::synthetic;

fn main() {
    // 1. The knowledge graph G.
    let generated = synthetic::generate(&synthetic::Config {
        observations: 120,
        cardinalities: vec![6, 4, 3],
        skew: 1.0,
        agg: AggOp::Sum,
        seed: 42,
    });
    let facet = generated.default_facet().clone();
    println!(
        "① store      G has {} triples ({})",
        generated.dataset.total_triples(),
        generated.description
    );

    // 2. The facet F.
    println!(
        "② cube       facet `{}`: dims {:?}, measure ?{}, agg {}",
        facet.id,
        facet
            .dimensions
            .iter()
            .map(|d| d.var.as_str())
            .collect::<Vec<_>>(),
        facet.measure,
        facet.agg
    );

    // 3. The lattice V(F), sized virtually.
    let lattice = Lattice::new(facet.clone());
    let sized = sofos::cost::size_lattice(&generated.dataset, &lattice).unwrap();
    println!(
        "③ lattice    {} views, {} cover edges; base view {} rows, apex 1 row",
        lattice.num_views(),
        lattice.num_edges(),
        sized[&lattice.base()].rows
    );

    // 4. Cost models price the views.
    let base_stats = GraphStats::compute(generated.dataset.default_graph());
    let ctx = CostContext {
        facet: &facet,
        view_stats: &sized,
        base: &base_stats,
    };
    let sample = ViewMask::from_dims(&[0, 1]);
    println!(
        "④ cost       C({}) — triples: {}, agg-values: {}",
        lattice.view_name(sample),
        TriplesCost.cost(&ctx, sample),
        AggValuesCost.cost(&ctx, sample),
    );

    // 5. Greedy selection under a budget of 3.
    let profile = WorkloadProfile::uniform(&lattice);
    let outcome = greedy_select(&ctx, &lattice, &AggValuesCost, &profile, Budget::Views(3));
    let names: Vec<String> = outcome
        .selected
        .iter()
        .map(|&v| lattice.view_name(v))
        .collect();
    println!(
        "⑤ select     k=3 → {} (estimated speedup {:.1}x)",
        names.join(", "),
        outcome.estimated_speedup()
    );

    // 6. Materialization into G+.
    let mut expanded = generated.dataset.clone();
    let views = materialize_views(&mut expanded, &facet, &outcome.selected).unwrap();
    let catalog: Vec<(ViewMask, usize)> =
        views.iter().map(|v| (v.stats.mask, v.stats.rows)).collect();
    println!(
        "⑥ material.  G+ now has {} graphs, {} triples total",
        expanded.graph_names().len() + 1,
        expanded.total_triples()
    );

    // 7. Online: one front door. The engine routes through the rewriter
    //    and serves from the best covering view; Backend::Serial here,
    //    Backend::Epoch { shards, threads } for concurrent serving — the
    //    rest of this step would read identically.
    let engine = Engine::builder()
        .dataset(expanded)
        .facet(facet.clone())
        .catalog(catalog)
        .staleness(StalenessPolicy::Eager)
        .backend(Backend::Serial)
        .build()
        .unwrap();
    let query = facet_query(&facet, ViewMask::from_dims(&[0]), AggOp::Sum, vec![]);
    println!("⑦ engine     Q : {}", query_to_sparql(&query));
    let answer = engine.query(&query).unwrap();
    let routed = match answer.route {
        Route::View(mask) => lattice.view_name(mask),
        Route::BaseGraph => "base graph".into(),
    };
    let snapshot = engine.snapshot();
    let from_base = Evaluator::new(&snapshot).evaluate(&query).unwrap();
    assert!(sofos::core::results_equivalent(&answer.results, &from_base));
    println!(
        "             answered from {routed}: {} rows — identical to the base-graph answer ✓",
        answer.results.len()
    );

    // 8. The graph lives: updates flow through the same engine, the
    //    eager policy repairs the views inside the call, and every
    //    answer carries a freshness tag.
    let mut delta = Delta::new();
    let ns = sofos::workload::synthetic::NS;
    let obs = sofos_rdf::Term::blank("tour_obs");
    for d in 0..facet.dim_count() {
        delta.insert(
            obs.clone(),
            sofos_rdf::Term::iri(format!("{ns}dim{d}")),
            sofos_rdf::Term::iri(format!("{ns}v{d}_0")),
        );
    }
    delta.insert(
        obs,
        sofos_rdf::Term::iri(format!("{ns}measure")),
        sofos_rdf::Term::literal_int(5),
    );
    engine.update(delta).unwrap();
    let answer = engine.query(&query).unwrap();
    println!(
        "⑧ maintain   after 1 update batch: {} stale views, answer {} ({} rows)",
        engine.stale_views(),
        answer.freshness,
        answer.results.len()
    );
}
