//! A guided tour of the SOFOS architecture (the paper's Figure 2), one
//! subsystem at a time, on a small synthetic cube:
//!
//! 1. build a knowledge graph `G` (store)
//! 2. define the analytical facet `F = ⟨X̄, P, agg(u)⟩` (cube)
//! 3. enumerate and size the view lattice `V(F)` (cube + materialize)
//! 4. price views under two cost models (cost)
//! 5. select `k` views with the HRU greedy (select)
//! 6. materialize them into `G+` (materialize)
//! 7. rewrite and answer a query from the best view (rewrite + sparql)
//!
//! Run with: `cargo run --example architecture_tour`

use sofos::cost::{AggValuesCost, CostContext, CostModel, TriplesCost};
use sofos::cube::{facet_query, AggOp, Lattice, ViewMask};
use sofos::materialize::materialize_views;
use sofos::rewrite::plan_rewrite;
use sofos::select::{greedy_select, Budget, WorkloadProfile};
use sofos::sparql::{query_to_sparql, Evaluator};
use sofos::store::GraphStats;
use sofos::workload::synthetic;

fn main() {
    // 1. The knowledge graph G.
    let generated = synthetic::generate(&synthetic::Config {
        observations: 120,
        cardinalities: vec![6, 4, 3],
        skew: 1.0,
        agg: AggOp::Sum,
        seed: 42,
    });
    let facet = generated.default_facet().clone();
    println!(
        "① store      G has {} triples ({})",
        generated.dataset.total_triples(),
        generated.description
    );

    // 2. The facet F.
    println!(
        "② cube       facet `{}`: dims {:?}, measure ?{}, agg {}",
        facet.id,
        facet
            .dimensions
            .iter()
            .map(|d| d.var.as_str())
            .collect::<Vec<_>>(),
        facet.measure,
        facet.agg
    );

    // 3. The lattice V(F), sized virtually.
    let lattice = Lattice::new(facet.clone());
    let sized = sofos::cost::size_lattice(&generated.dataset, &lattice).unwrap();
    println!(
        "③ lattice    {} views, {} cover edges; base view {} rows, apex 1 row",
        lattice.num_views(),
        lattice.num_edges(),
        sized[&lattice.base()].rows
    );

    // 4. Cost models price the views.
    let base_stats = GraphStats::compute(generated.dataset.default_graph());
    let ctx = CostContext {
        facet: &facet,
        view_stats: &sized,
        base: &base_stats,
    };
    let sample = ViewMask::from_dims(&[0, 1]);
    println!(
        "④ cost       C({}) — triples: {}, agg-values: {}",
        lattice.view_name(sample),
        TriplesCost.cost(&ctx, sample),
        AggValuesCost.cost(&ctx, sample),
    );

    // 5. Greedy selection under a budget of 3.
    let profile = WorkloadProfile::uniform(&lattice);
    let outcome = greedy_select(&ctx, &lattice, &AggValuesCost, &profile, Budget::Views(3));
    let names: Vec<String> = outcome
        .selected
        .iter()
        .map(|&v| lattice.view_name(v))
        .collect();
    println!(
        "⑤ select     k=3 → {} (estimated speedup {:.1}x)",
        names.join(", "),
        outcome.estimated_speedup()
    );

    // 6. Materialization into G+.
    let mut expanded = generated.dataset.clone();
    let views = materialize_views(&mut expanded, &facet, &outcome.selected).unwrap();
    let catalog: Vec<(ViewMask, usize)> =
        views.iter().map(|v| (v.stats.mask, v.stats.rows)).collect();
    println!(
        "⑥ material.  G+ now has {} graphs, {} triples total",
        expanded.graph_names().len() + 1,
        expanded.total_triples()
    );

    // 7. Online: rewrite and answer.
    let query = facet_query(&facet, ViewMask::from_dims(&[0]), AggOp::Sum, vec![]);
    println!("⑦ rewrite    Q : {}", query_to_sparql(&query));
    let (routed, rewritten) = plan_rewrite(&facet, &catalog, &query).unwrap();
    println!(
        "             Q′ over view {}: {}",
        lattice.view_name(routed),
        query_to_sparql(&rewritten)
    );
    let evaluator = Evaluator::new(&expanded);
    let from_view = evaluator.evaluate(&rewritten).unwrap();
    let from_base = evaluator.evaluate(&query).unwrap();
    assert!(sofos::core::results_equivalent(&from_view, &from_base));
    println!(
        "             {} rows — identical to the base-graph answer ✓",
        from_view.len()
    );
}
