//! The demo's main station ("Exploring Cost Models", Figure 3 panel ④):
//! run all six cost models on the DBpedia-like dataset and print the
//! query-time / space-amplification comparison table.
//!
//! Run with: `cargo run --release --example compare_cost_models`

use sofos::core::{EngineConfig, Sofos, StalenessPolicy};
use sofos::cost::CostModelKind;
use sofos::workload::dbpedia;

fn main() {
    let generated = dbpedia::generate(&dbpedia::Config::default());
    println!(
        "dataset: {} — {} ({} triples)\n",
        generated.name,
        generated.description,
        generated.dataset.total_triples()
    );

    let sofos = Sofos::from_generated(&generated);
    let mut config = EngineConfig::default();
    config.workload.num_queries = 40;
    config.workload.filter_probability = 0.4;
    config.timing_reps = 3;
    config.train.epochs = 120;

    let report = sofos
        .compare(&CostModelKind::ALL, &config)
        .expect("comparison runs");

    println!("{}", report.to_table());
    println!("Selected views per model:");
    for row in &report.models {
        println!("  {:<12} {}", row.model, row.selected_views.join(", "));
    }
    println!("\nCSV:\n{}", report.to_csv());

    // From comparison to serving: expand G+ under the winning model and
    // hand it to the one front door (Sofos::into_engine pre-fills the
    // builder; add .backend(Backend::Epoch { .. }) to serve concurrently).
    let best = report
        .models
        .iter()
        .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
        .expect("at least one model");
    let kind = CostModelKind::ALL
        .into_iter()
        .find(|k| k.name() == best.model)
        .expect("row names a model");
    let mut sofos = Sofos::from_generated(&generated);
    let offline = sofos.offline(kind, &config).expect("offline runs");
    let engine = sofos
        .into_engine()
        .catalog(offline.view_catalog())
        .staleness(StalenessPolicy::Eager)
        .build()
        .expect("engine builds");
    println!(
        "\nBest model `{}` ({:.2}x) now serves live behind Engine ({} backend, {} views).",
        best.model,
        best.speedup,
        engine.backend_name(),
        engine.views().len()
    );
}
