//! The demo's "Hands-on Challenge": given a budget of k views, how close
//! can a manual pick get to the exhaustive-oracle optimum — and how do the
//! greedy+cost-model selections fare?
//!
//! Run with: `cargo run --release --example hands_on_challenge`

use sofos::core::{build_model, Backend, Engine, EngineConfig, SizedLattice, StalenessPolicy};
use sofos::cost::{AggValuesCost, CostModelKind};
use sofos::cube::ViewMask;
use sofos::materialize::materialize_views;
use sofos::select::{
    exhaustive_select, greedy_select, user_select, workload_cost, Budget, WorkloadProfile,
};
use sofos::workload::{generate_workload, swdf, WorkloadConfig};

fn main() {
    let generated = swdf::generate(&swdf::Config::default());
    let facet = generated.default_facet().clone();
    let k = 2usize;
    println!(
        "CHALLENGE — dataset {}, facet `{}` ({} dims, {} views), budget k = {k}\n",
        generated.name,
        facet.id,
        facet.dim_count(),
        1u64 << facet.dim_count()
    );

    let sized = SizedLattice::compute(&generated.dataset, &facet).expect("sizing");
    let ctx = sized.context();
    let workload = generate_workload(
        &generated.dataset,
        &facet,
        &WorkloadConfig {
            num_queries: 40,
            mask_skew: Some(1.2),
            ..WorkloadConfig::default()
        },
    );
    let profile = WorkloadProfile::from_masks(workload.iter().map(|q| q.required));
    let scorer = AggValuesCost; // the judge prices answers by view rows

    println!("The lattice (view : rows):");
    for mask in sized.lattice.views() {
        println!(
            "  {:<30} {:>6} rows",
            sized.lattice.view_name(mask),
            sized.stats[&mask].rows
        );
    }

    // --- Contestant 1: a plausible manual pick (base view + apex). --------
    let manual = vec![sized.lattice.base(), ViewMask::APEX];
    let manual_outcome =
        user_select(&ctx, &sized.lattice, &scorer, &profile, &manual).expect("valid pick");

    // --- Contestant 2: greedy under each cost model. -----------------------
    let config = EngineConfig::default();
    let mut greedy_rows = Vec::new();
    for kind in CostModelKind::ALL {
        let (model, _, _) = build_model(kind, &sized, &config);
        let outcome = greedy_select(
            &ctx,
            &sized.lattice,
            model.as_ref(),
            &profile,
            Budget::Views(k),
        );
        // Score every contestant with the same judge for comparability.
        let score = workload_cost(&ctx, &scorer, &profile, &outcome.selected);
        greedy_rows.push((kind.name().to_string(), outcome.selected.clone(), score));
    }

    // --- The oracle. --------------------------------------------------------
    let oracle = exhaustive_select(&ctx, &sized.lattice, &scorer, &profile, k, 1_000_000)
        .expect("challenge lattices stay under the exhaustive caps");
    let oracle_score = oracle.estimated_cost;

    println!(
        "\n{:<14} {:>12} {:>9}  selection",
        "contestant", "est. cost", "vs best"
    );
    let manual_score = manual_outcome.estimated_cost;
    let mut entries = vec![("manual (you)".to_string(), manual.clone(), manual_score)];
    entries.extend(greedy_rows);
    entries.push(("ORACLE".to_string(), oracle.selected.clone(), oracle_score));
    for (name, selection, score) in &entries {
        let names: Vec<String> = selection
            .iter()
            .map(|&v| sized.lattice.view_name(v))
            .collect();
        println!(
            "{:<14} {:>12.1} {:>8.2}x  {}",
            name,
            score,
            score / oracle_score,
            names.join(", ")
        );
    }
    println!("\nThe participant whose selection lands closest to the oracle wins the prize.");

    // Materialize the oracle's pick and serve the workload through the
    // one front door, confirming the estimated ranking with real hits.
    let mut expanded = generated.dataset.clone();
    let views = materialize_views(&mut expanded, &facet, &oracle.selected).expect("materializes");
    let engine = Engine::builder()
        .dataset(expanded)
        .facet(facet)
        .catalog(views.iter().map(|v| (v.stats.mask, v.stats.rows)).collect())
        .staleness(StalenessPolicy::Eager)
        .backend(Backend::Serial)
        .build()
        .expect("engine builds");
    for q in &workload {
        engine.query(&q.query).expect("engine answers");
    }
    let (hits, falls) = engine.routing_counts();
    println!(
        "Oracle's selection served through Engine: {hits}/{} queries hit a view ({falls} fell back).",
        workload.len()
    );
}
