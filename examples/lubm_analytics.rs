//! LUBM-like analytics: the budget sweep behind the demo's "User Selected
//! Views" station — where is the sweet spot between space amplification and
//! query time?
//!
//! Run with: `cargo run --release --example lubm_analytics`

use sofos::core::StalenessPolicy;
use sofos::core::{run_offline, run_online, Backend, Engine, EngineConfig, SizedLattice};
use sofos::cost::CostModelKind;
use sofos::select::{Budget, WorkloadProfile};
use sofos::workload::{generate_workload, lubm, WorkloadConfig};

fn main() {
    let generated = lubm::generate(&lubm::Config::default());
    let facet = generated.default_facet().clone();
    println!(
        "dataset: {} — {} ({} triples, facet `{}` with {} dims → {} lattice views)\n",
        generated.name,
        generated.description,
        generated.dataset.total_triples(),
        facet.id,
        facet.dim_count(),
        1u64 << facet.dim_count(),
    );

    let sized = SizedLattice::compute(&generated.dataset, &facet).expect("sizing");
    let workload_config = WorkloadConfig {
        num_queries: 30,
        ..WorkloadConfig::default()
    };
    let workload = generate_workload(&generated.dataset, &facet, &workload_config);
    let profile = WorkloadProfile::from_masks(workload.iter().map(|q| q.required));

    let baseline =
        run_online(&generated.dataset, &facet, &[], &workload, 3, false).expect("baseline run");
    println!(
        "no views: total {:.2} ms over {} queries\n",
        baseline.summary.total_us as f64 / 1000.0,
        workload.len()
    );

    println!(
        "{:<4} {:>10} {:>12} {:>12} {:>9} {:>8}",
        "k", "hits", "total ms", "space amp", "speedup", "views"
    );
    let mut config = EngineConfig {
        timing_reps: 3,
        ..EngineConfig::default()
    };
    for k in 0..=sized.lattice.num_views() as usize {
        config.budget = Budget::Views(k);
        let mut expanded = generated.dataset.clone();
        let offline = run_offline(
            &mut expanded,
            &sized,
            &profile,
            CostModelKind::AggValues,
            &config,
        )
        .expect("offline");
        let online = run_online(
            &expanded,
            &facet,
            &offline.view_catalog(),
            &workload,
            config.timing_reps,
            true,
        )
        .expect("online");
        assert!(online.all_valid, "view answers must be correct");
        println!(
            "{:<4} {:>7}/{:<2} {:>12.2} {:>12.3} {:>8.2}x {:>8}",
            k,
            online.view_hits,
            workload.len(),
            online.summary.total_us as f64 / 1000.0,
            offline.storage_amplification(),
            baseline.summary.total_us as f64 / online.summary.total_us.max(1) as f64,
            offline.selection.selected.len(),
        );
    }
    println!("\nReading: query time falls as k grows while space amplification rises;");
    println!("the sweet spot is where added views stop being hit by the workload.");

    // Serve the sweet spot live, through the one front door: the same
    // catalog behind an Engine (flip Backend::Serial to Backend::Epoch
    // { shards, threads } and this block reads identically).
    config.budget = Budget::Views(4);
    let mut expanded = generated.dataset.clone();
    let offline = run_offline(
        &mut expanded,
        &sized,
        &profile,
        CostModelKind::AggValues,
        &config,
    )
    .expect("offline");
    let engine = Engine::builder()
        .dataset(expanded)
        .facet(facet)
        .catalog(offline.view_catalog())
        .staleness(StalenessPolicy::Eager)
        .backend(Backend::Serial)
        .build()
        .expect("engine builds");
    for q in &workload {
        engine.query(&q.query).expect("engine answers");
    }
    let (hits, falls) = engine.routing_counts();
    println!(
        "\nServed the workload through Engine (serial backend) at k=4: \
         {hits} view hits, {falls} fallbacks."
    );
}
