//! Quickstart: the paper's Figure 1 knowledge graph, one materialized view,
//! and the two motivating queries of Example 1.1.
//!
//! Run with: `cargo run --example quickstart`

use sofos::cube::{AggOp, Dimension, Facet, ViewMask};
use sofos::materialize::materialize_view;
use sofos::rewrite::plan_rewrite;
use sofos::sparql::{parse_query, Evaluator};
use sofos::store::Dataset;
use sofos_rdf::{Literal, Term};

const NS: &str = "http://sofos.example/";

fn iri(local: &str) -> Term {
    Term::iri(format!("{NS}{local}"))
}

fn main() {
    // --- Build the Figure 1 graph -----------------------------------------
    let mut ds = Dataset::new();
    let name = iri("name");
    let part_of = iri("partOf");
    let country_p = iri("country");
    let language_p = iri("language");
    let population_p = iri("population");
    let year_p = iri("year");

    let eu = iri("EU");
    ds.insert(None, &eu, &name, &Term::literal_str("EU"));

    let rows = [
        ("France", "French", 67, 2019, true),
        ("Germany", "German", 82, 2019, true),
        ("Italy", "Italian", 60, 2019, true),
        ("Canada", "English", 21, 2019, false),
        ("Canada", "French", 8, 2019, false),
    ];
    for (i, (country, lang, pop, year, in_eu)) in rows.iter().enumerate() {
        let c = iri(country);
        ds.insert(None, &c, &name, &Term::literal_str(*country));
        if *in_eu {
            ds.insert(None, &c, &part_of, &eu);
        }
        let obs = Term::blank(format!("obs{i}"));
        ds.insert(None, &obs, &country_p, &c);
        ds.insert(None, &obs, &language_p, &Term::literal_str(*lang));
        ds.insert(None, &obs, &population_p, &Term::literal_int(*pop));
        ds.insert(None, &obs, &year_p, &Term::Literal(Literal::year(*year)));
    }
    println!(
        "Loaded the Figure 1 graph: {} triples\n",
        ds.default_graph().len()
    );

    // --- Define the analytical facet F = ⟨X̄, P, agg(u)⟩ -------------------
    let pattern = sofos::sparql::GroupPattern::triples(vec![
        sofos::sparql::TriplePattern::new(
            sofos::sparql::PatternTerm::var("obs"),
            sofos::sparql::PatternTerm::iri(format!("{NS}country")),
            sofos::sparql::PatternTerm::var("country"),
        ),
        sofos::sparql::TriplePattern::new(
            sofos::sparql::PatternTerm::var("obs"),
            sofos::sparql::PatternTerm::iri(format!("{NS}language")),
            sofos::sparql::PatternTerm::var("language"),
        ),
        sofos::sparql::TriplePattern::new(
            sofos::sparql::PatternTerm::var("obs"),
            sofos::sparql::PatternTerm::iri(format!("{NS}population")),
            sofos::sparql::PatternTerm::var("pop"),
        ),
    ]);
    let facet = Facet::new(
        "population",
        vec![Dimension::new("country"), Dimension::new("language")],
        pattern,
        "pop",
        AggOp::Sum,
    )
    .expect("valid facet");

    // --- Materialize the {language} view ----------------------------------
    let mask = ViewMask::from_dims(&[1]);
    let view = materialize_view(&mut ds, &facet, mask).expect("materializes");
    println!(
        "Materialized view {{language}}: {} rows, {} triples, in graph <{}>\n",
        view.stats.rows, view.stats.triples, view.graph_iri
    );

    // --- Example 1.1, answered from the view -------------------------------
    let q = parse_query(&format!(
        "SELECT ?language (SUM(?pop) AS ?value) WHERE {{ \
           ?obs <{NS}country> ?country . \
           ?obs <{NS}language> ?language . \
           ?obs <{NS}population> ?pop }} \
         GROUP BY ?language ORDER BY DESC(?value)"
    ))
    .expect("parses");

    let catalog = [(mask, view.stats.rows)];
    let evaluator = Evaluator::new(&ds);
    match plan_rewrite(&facet, &catalog, &q) {
        Ok((routed, rewritten)) => {
            println!("Query routed to view {routed}; rewritten SPARQL:");
            println!("  {}\n", sofos::sparql::query_to_sparql(&rewritten));
            let results = evaluator.evaluate(&rewritten).expect("evaluates");
            println!("Population by language (from the view):\n{results}");
        }
        Err(e) => println!("(fell back to base graph: {e})"),
    }

    // Total French-speaking population, also from the view.
    let total = evaluator
        .evaluate_str(&format!(
            "SELECT ?s WHERE {{ GRAPH <{graph}> {{ \
               ?o <http://sofos.ics.forth.gr/ns#dim1> \"French\" . \
               ?o <http://sofos.ics.forth.gr/ns#sum> ?s }} }}",
            graph = view.graph_iri
        ))
        .expect("evaluates");
    println!("Total French-speaking population (view lookup):\n{total}");
}
