//! Quickstart: the paper's Figure 1 knowledge graph, one materialized view,
//! the two motivating queries of Example 1.1 — and the whole thing served
//! live through the one front door, `sofos::core::Engine`.
//!
//! Run with: `cargo run --example quickstart [--smoke]`
//! (`--smoke` is accepted for CI parity; the example is already tiny.)

use sofos::core::{Backend, Engine, Route, StalenessPolicy};
use sofos::cube::{AggOp, Dimension, Facet, ViewMask};
use sofos::materialize::materialize_view;
use sofos::sparql::{parse_query, Evaluator};
use sofos::store::{Dataset, Delta};
use sofos_rdf::{Literal, Term};

const NS: &str = "http://sofos.example/";

fn iri(local: &str) -> Term {
    Term::iri(format!("{NS}{local}"))
}

fn main() {
    let _smoke = std::env::args().any(|a| a == "--smoke");

    // --- Build the Figure 1 graph -----------------------------------------
    let mut ds = Dataset::new();
    let name = iri("name");
    let part_of = iri("partOf");
    let country_p = iri("country");
    let language_p = iri("language");
    let population_p = iri("population");
    let year_p = iri("year");

    let eu = iri("EU");
    ds.insert(None, &eu, &name, &Term::literal_str("EU"));

    let rows = [
        ("France", "French", 67, 2019, true),
        ("Germany", "German", 82, 2019, true),
        ("Italy", "Italian", 60, 2019, true),
        ("Canada", "English", 21, 2019, false),
        ("Canada", "French", 8, 2019, false),
    ];
    for (i, (country, lang, pop, year, in_eu)) in rows.iter().enumerate() {
        let c = iri(country);
        ds.insert(None, &c, &name, &Term::literal_str(*country));
        if *in_eu {
            ds.insert(None, &c, &part_of, &eu);
        }
        let obs = Term::blank(format!("obs{i}"));
        ds.insert(None, &obs, &country_p, &c);
        ds.insert(None, &obs, &language_p, &Term::literal_str(*lang));
        ds.insert(None, &obs, &population_p, &Term::literal_int(*pop));
        ds.insert(None, &obs, &year_p, &Term::Literal(Literal::year(*year)));
    }
    println!(
        "Loaded the Figure 1 graph: {} triples\n",
        ds.default_graph().len()
    );

    // --- Define the analytical facet F = ⟨X̄, P, agg(u)⟩ -------------------
    let pattern = sofos::sparql::GroupPattern::triples(vec![
        sofos::sparql::TriplePattern::new(
            sofos::sparql::PatternTerm::var("obs"),
            sofos::sparql::PatternTerm::iri(format!("{NS}country")),
            sofos::sparql::PatternTerm::var("country"),
        ),
        sofos::sparql::TriplePattern::new(
            sofos::sparql::PatternTerm::var("obs"),
            sofos::sparql::PatternTerm::iri(format!("{NS}language")),
            sofos::sparql::PatternTerm::var("language"),
        ),
        sofos::sparql::TriplePattern::new(
            sofos::sparql::PatternTerm::var("obs"),
            sofos::sparql::PatternTerm::iri(format!("{NS}population")),
            sofos::sparql::PatternTerm::var("pop"),
        ),
    ]);
    let facet = Facet::new(
        "population",
        vec![Dimension::new("country"), Dimension::new("language")],
        pattern,
        "pop",
        AggOp::Sum,
    )
    .expect("valid facet");

    // --- Materialize the {language} view into G+ ---------------------------
    let mask = ViewMask::from_dims(&[1]);
    let view = materialize_view(&mut ds, &facet, mask).expect("materializes");
    println!(
        "Materialized view {{language}}: {} rows, {} triples, in graph <{}>\n",
        view.stats.rows, view.stats.triples, view.graph_iri
    );

    // --- One front door: serve G+ through the Engine -----------------------
    // The same builder serves a single-threaded demo (Backend::Serial) or
    // a sharded concurrent deployment (Backend::Epoch { .. }) — flip one
    // knob. Bounded staleness is one more knob away:
    // `.staleness(StalenessPolicy::bounded_ms(4, 2, 100))`.
    let engine = Engine::builder()
        .dataset(ds)
        .facet(facet)
        .catalog(vec![(mask, view.stats.rows)])
        .staleness(StalenessPolicy::Eager)
        .backend(Backend::Serial)
        .build()
        .expect("engine builds");

    // --- Example 1.1, answered from the view -------------------------------
    let q = parse_query(&format!(
        "SELECT ?language (SUM(?pop) AS ?value) WHERE {{ \
           ?obs <{NS}country> ?country . \
           ?obs <{NS}language> ?language . \
           ?obs <{NS}population> ?pop }} \
         GROUP BY ?language ORDER BY DESC(?value)"
    ))
    .expect("parses");

    let answer = engine.query(&q).expect("engine answers");
    match answer.route {
        Route::View(routed) => println!(
            "Query routed to view {routed} ({}); population by language:\n{}",
            answer.freshness, answer.results
        ),
        Route::BaseGraph => println!(
            "(fell back to base graph)\nPopulation by language:\n{}",
            answer.results
        ),
    }

    // --- A live update: France revises its census --------------------------
    // Engine::update maintains the materialized view incrementally (the
    // eager policy repairs inside the update call), so the next answer is
    // both fresh AND still served from the view.
    let mut delta = Delta::new();
    let obs = Term::blank("obs_fr_2020");
    delta.insert(obs.clone(), iri("country"), iri("France"));
    delta.insert(obs.clone(), iri("language"), Term::literal_str("French"));
    delta.insert(obs, iri("population"), Term::literal_int(1));
    engine.update(delta).expect("update applies");
    println!(
        "After a +1 France update ({} update batch, {} stale views):",
        engine.update_batches(),
        engine.stale_views()
    );
    let answer = engine.query(&q).expect("engine answers");
    println!("{}", answer.results);

    // The engine's answers always match a from-scratch base evaluation.
    let snapshot = engine.snapshot();
    let reference = Evaluator::new(&snapshot).evaluate(&q).expect("evaluates");
    assert!(sofos::core::results_equivalent(&answer.results, &reference));
    println!(
        "Identical to the base-graph answer ✓ (freshness: {})",
        answer.freshness
    );

    // Total French-speaking population, straight off the view graph.
    let total = Evaluator::new(&snapshot)
        .evaluate_str(&format!(
            "SELECT ?s WHERE {{ GRAPH <{graph}> {{ \
               ?o <http://sofos.ics.forth.gr/ns#dim1> \"French\" . \
               ?o <http://sofos.ics.forth.gr/ns#sum> ?s }} }}",
            graph = view.graph_iri
        ))
        .expect("evaluates");
    println!("Total French-speaking population (view lookup):\n{total}");
}
