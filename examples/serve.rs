//! Serve: the quickstart's Figure 1 graph behind the network front door.
//!
//! Boots a real `sofos-server` on an OS-assigned loopback port, then talks
//! to it the way any client would — over a `TcpStream`, no in-process
//! shortcuts: `POST /query` (Example 1.1's aggregate, answered from the
//! materialized view with freshness tags), `POST /update` (France revises
//! its census, as an N-Triples delta), the same query again to see the
//! write reflected, `GET /metrics` for the Prometheus view of what just
//! happened, and a graceful shutdown.
//!
//! Run with: `cargo run --example serve [--smoke]`
//! (`--smoke` is accepted for CI parity; the example is already tiny.)

use sofos::core::{Backend, Engine, StalenessPolicy};
use sofos::cube::{AggOp, Dimension, Facet, ViewMask};
use sofos::materialize::materialize_view;
use sofos::server::{serve, ServerConfig};
use sofos::store::Dataset;
use sofos_rdf::Term;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

const NS: &str = "http://sofos.example/";

fn iri(local: &str) -> Term {
    Term::iri(format!("{NS}{local}"))
}

/// One HTTP/1.1 request over a fresh connection; returns the full response.
fn roundtrip(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: sofos\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    response
}

fn body_of(response: &str) -> &str {
    response.split("\r\n\r\n").nth(1).unwrap_or("")
}

fn main() {
    let _smoke = std::env::args().any(|a| a == "--smoke");

    // --- The Figure 1 graph, one materialized view (as in quickstart) ------
    let mut ds = Dataset::new();
    let rows = [
        ("France", "French", 67),
        ("Germany", "German", 82),
        ("Italy", "Italian", 60),
        ("Canada", "English", 21),
        ("Canada", "French", 8),
    ];
    for (i, (country, lang, pop)) in rows.iter().enumerate() {
        let obs = Term::blank(format!("obs{i}"));
        ds.insert(None, &obs, &iri("country"), &iri(country));
        ds.insert(None, &obs, &iri("language"), &Term::literal_str(*lang));
        ds.insert(None, &obs, &iri("population"), &Term::literal_int(*pop));
    }
    let pattern = sofos::sparql::GroupPattern::triples(vec![
        sofos::sparql::TriplePattern::new(
            sofos::sparql::PatternTerm::var("obs"),
            sofos::sparql::PatternTerm::iri(format!("{NS}country")),
            sofos::sparql::PatternTerm::var("country"),
        ),
        sofos::sparql::TriplePattern::new(
            sofos::sparql::PatternTerm::var("obs"),
            sofos::sparql::PatternTerm::iri(format!("{NS}language")),
            sofos::sparql::PatternTerm::var("language"),
        ),
        sofos::sparql::TriplePattern::new(
            sofos::sparql::PatternTerm::var("obs"),
            sofos::sparql::PatternTerm::iri(format!("{NS}population")),
            sofos::sparql::PatternTerm::var("pop"),
        ),
    ]);
    let facet = Facet::new(
        "population",
        vec![Dimension::new("country"), Dimension::new("language")],
        pattern,
        "pop",
        AggOp::Sum,
    )
    .expect("valid facet");
    let mask = ViewMask::from_dims(&[1]);
    let view = materialize_view(&mut ds, &facet, mask).expect("materializes");

    let engine = Engine::builder()
        .dataset(ds)
        .facet(facet)
        .catalog(vec![(mask, view.stats.rows)])
        .staleness(StalenessPolicy::Eager)
        .backend(Backend::Serial)
        .build()
        .expect("engine builds");

    // --- Boot the front door on an OS-assigned loopback port ---------------
    let handle = serve(Arc::new(engine), ServerConfig::default()).expect("server boots");
    let addr = handle.addr();
    println!("sofos-server listening on http://{addr}\n");

    // --- POST /query: Example 1.1, answered over the wire -------------------
    let sparql = format!(
        "SELECT ?language (SUM(?pop) AS ?value) WHERE {{ \
           ?obs <{NS}country> ?country . \
           ?obs <{NS}language> ?language . \
           ?obs <{NS}population> ?pop }} \
         GROUP BY ?language ORDER BY DESC(?value)"
    );
    let query_body = format!(
        "{{\"query\": {}}}",
        sofos::telemetry::Json::from(sparql.as_str())
    );
    let response = roundtrip(addr, "POST", "/query", &query_body);
    assert!(
        response.starts_with("HTTP/1.1 200"),
        "query served: {response}"
    );
    println!("POST /query → {}", body_of(&response));

    // --- POST /update: France revises its census, as N-Triples --------------
    let update_body = format!(
        "{{\"insert\": \"_:fr2020 <{NS}country> <{NS}France> .\\n\
           _:fr2020 <{NS}language> \\\"French\\\" .\\n\
           _:fr2020 <{NS}population> \\\"1\\\"^^<http://www.w3.org/2001/XMLSchema#integer> .\\n\"}}"
    );
    let response = roundtrip(addr, "POST", "/update", &update_body);
    assert!(
        response.starts_with("HTTP/1.1 200"),
        "update applied: {response}"
    );
    println!("\nPOST /update → {}", body_of(&response));

    // --- Read your write: the same query now includes the new observation ---
    let response = roundtrip(addr, "POST", "/query", &query_body);
    assert!(
        response.starts_with("HTTP/1.1 200"),
        "re-query served: {response}"
    );
    let fresh = body_of(&response);
    assert!(
        fresh.contains("\"epoch\":1"),
        "freshness tag advanced past the update: {fresh}"
    );
    println!("\nPOST /query (after update) → {fresh}");

    // --- GET /metrics: the Prometheus view of what just happened ------------
    let response = roundtrip(addr, "GET", "/metrics", "");
    assert!(
        response.starts_with("HTTP/1.1 200"),
        "metrics served: {response}"
    );
    let interesting: Vec<&str> = body_of(&response)
        .lines()
        .filter(|l| {
            l.starts_with("sofos_http_requests_total") || l.starts_with("sofos_freshness_lag")
        })
        .collect();
    println!("\nGET /metrics (excerpt):\n{}", interesting.join("\n"));

    // --- Graceful shutdown ---------------------------------------------------
    let stats = handle.shutdown();
    println!(
        "\nshutdown clean: served={} rejected={} bad_requests={}",
        stats.served, stats.rejected_connections, stats.bad_requests
    );
    assert_eq!(stats.served, 4);
    assert_eq!(stats.bad_requests, 0);
}
