//! `sofos` — command-line front end to the SOFOS engine.
//!
//! ```text
//! sofos datasets                             list the demo datasets + facets
//! sofos lattice  <dataset>                   size the facet's full lattice
//! sofos compare  <dataset> [k] [queries]     compare all six cost models
//! sofos query    <dataset> <sparql>          run an ad-hoc query
//! sofos export   <dataset> [nt|ttl]          dump the base graph
//! ```
//!
//! Datasets: `dbpedia`, `lubm`, `swdf` (generated, deterministic seeds).

use sofos::core::{EngineConfig, Sofos};
use sofos::cost::CostModelKind;
use sofos::select::Budget;
use sofos::workload::{dbpedia, lubm, swdf, GeneratedDataset};
use std::io::Write;
use std::process::ExitCode;

/// Print to stdout, exiting quietly when the consumer closed the pipe
/// (`sofos export ... | head` must not panic).
macro_rules! out {
    ($($arg:tt)*) => {
        if writeln!(std::io::stdout(), $($arg)*).is_err() {
            return ExitCode::SUCCESS;
        }
    };
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sofos datasets\n  sofos lattice <dataset>\n  \
         sofos compare <dataset> [k] [queries]\n  sofos query <dataset> <sparql>\n  \
         sofos export <dataset> [nt|ttl]\n\ndatasets: dbpedia | lubm | swdf"
    );
    ExitCode::FAILURE
}

fn load(name: &str) -> Option<GeneratedDataset> {
    match name {
        "dbpedia" => Some(dbpedia::generate(&dbpedia::Config::default())),
        "lubm" => Some(lubm::generate(&lubm::Config::default())),
        "swdf" => Some(swdf::generate(&swdf::Config::default())),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("datasets") => {
            for g in sofos::workload::all_datasets() {
                let facet = g.default_facet();
                println!(
                    "{:<14} {:>7} triples  facet `{}` ({} dims → {} views)  — {}",
                    g.name,
                    g.dataset.total_triples(),
                    facet.id,
                    facet.dim_count(),
                    1u64 << facet.dim_count(),
                    g.description
                );
            }
            ExitCode::SUCCESS
        }
        Some("lattice") => {
            let Some(g) = args.get(1).and_then(|n| load(n)) else {
                return usage();
            };
            let system = Sofos::from_generated(&g);
            let sized = match system.size_lattice() {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "facet `{}`: {} views sized in {:.1} ms",
                system.facet().id,
                sized.lattice.num_views(),
                sized.sizing_us as f64 / 1000.0
            );
            out!(
                "{:<40} {:>8} {:>9} {:>8} {:>10}",
                "view",
                "rows",
                "triples",
                "nodes",
                "bytes"
            );
            for mask in sized.lattice.views() {
                let s = &sized.stats[&mask];
                out!(
                    "{:<40} {:>8} {:>9} {:>8} {:>10}",
                    sized.lattice.view_name(mask),
                    s.rows,
                    s.triples,
                    s.nodes,
                    s.bytes
                );
            }
            ExitCode::SUCCESS
        }
        Some("compare") => {
            let Some(g) = args.get(1).and_then(|n| load(n)) else {
                return usage();
            };
            let k: usize = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(4);
            let queries: usize = args.get(3).and_then(|v| v.parse().ok()).unwrap_or(40);
            let system = Sofos::from_generated(&g);
            let mut config = EngineConfig {
                budget: Budget::Views(k),
                ..EngineConfig::default()
            };
            config.workload.num_queries = queries;
            match system.compare(&CostModelKind::ALL, &config) {
                Ok(report) => {
                    println!("{}", report.to_table());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("query") => {
            let (Some(g), Some(text)) = (args.get(1).and_then(|n| load(n)), args.get(2)) else {
                return usage();
            };
            let system = Sofos::from_generated(&g);
            match system.query(text) {
                Ok(results) => {
                    println!("{results}");
                    println!("{} row(s)", results.len());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("export") => {
            let Some(g) = args.get(1).and_then(|n| load(n)) else {
                return usage();
            };
            let format = args.get(2).map(String::as_str).unwrap_or("nt");
            let ds = &g.dataset;
            let mut graph = sofos::rdf::Graph::new();
            for [s, p, o] in ds.default_graph().iter() {
                graph.insert(sofos::rdf::Triple::new_unchecked(
                    ds.term(s).clone(),
                    ds.term(p).clone(),
                    ds.term(o).clone(),
                ));
            }
            match format {
                "nt" => out!("{}", sofos::rdf::write_ntriples(&graph)),
                "ttl" => out!("{}", sofos::rdf::write_turtle(&graph, &[])),
                other => {
                    eprintln!("unknown format {other:?} (use nt or ttl)");
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
