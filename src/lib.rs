//! # SOFOS — facade crate
//!
//! Re-exports the full SOFOS workspace behind a single dependency, so a
//! downstream user can `cargo add sofos` and reach every subsystem:
//!
//! ```
//! use sofos::core::Sofos;          // the engine (offline + online modules)
//! use sofos::workload::dbpedia;    // dataset generators
//! use sofos::cost::CostModelKind;  // the six cost models
//! ```
//!
//! ## Architecture
//!
//! The workspace is layered bottom-up:
//!
//! * [`rdf`] — terms, dictionary interning, Turtle/N-Triples I/O;
//! * [`store`] — the triple store: three LSM-lite permutation indexes per
//!   graph, the dataset (`G+` = base graph + one named graph per view),
//!   live base-graph statistics, and the **transactional write path**
//!   ([`store::Delta`] / `Dataset::apply` → [`store::ChangeSet`]);
//! * [`sparql`] — parser, planner, and evaluator for the SPARQL subset;
//! * [`cube`] — facets `F = ⟨X̄, P, agg(u)⟩`, view masks, lattices, and
//!   query generation;
//! * [`cost`] — the six query-cost models of the paper (including the
//!   learned one), plus maintenance cost models
//!   ([`cost::MaintenanceCostModel`]) pricing per-view upkeep under an
//!   update stream;
//! * [`select`] — greedy budgeted view selection, optionally under the
//!   combined objective `query_cost + λ·maintenance_cost`
//!   ([`select::Objective`]);
//! * [`materialize`] — encodes view results as RDF observations inside
//!   named graphs of `G+`;
//! * [`rewrite`] — answers facet queries from materialized views;
//! * [`maintain`] — **incremental view maintenance** for a living `G+`:
//!   propagates change sets into view graphs with the counting algorithm
//!   (SUM/COUNT/AVG patched in place, MIN/MAX re-evaluated per group on
//!   deletes, emptied groups retracted — except the apex's implicit
//!   group, which survives like SPARQL says it must) and reports
//!   per-view [`maintain::MaintenanceCost`];
//! * [`workload`] — dataset generators, query workloads, and zipf-skewed
//!   update streams;
//! * [`core`] — ties it together: the offline phase (size → select →
//!   materialize), the online phase (rewrite-routed measurement), and the
//!   **one front door** for living graphs — [`core::Engine`], built via
//!   `Engine::builder().dataset(..).facet(..).catalog(..).staleness(..)
//!   .backend(..).clock(..)`. The engine serves interleaved updates and
//!   queries under a [`core::StalenessPolicy`] (eager, lazy-on-hit,
//!   invalidate, or bounded — by batch count, epoch lag, *and* wall-clock
//!   `max_lag_ms` via an injectable [`core::Clock`]) over a pluggable
//!   backend: `Backend::Serial` (one mutable dataset, callers serialize)
//!   or `Backend::Epoch { shards, threads }` (readers pin immutable epoch
//!   snapshots while maintenance publishes batched epochs). Both backends
//!   run the single policy implementation in [`core::policy`] and are
//!   held answer-equivalent by a conformance property suite. On top sits
//!   the adaptive layer: sliding workload/update profiles,
//!   [`core::DriftDetector`], and the [`core::Reselector`] that
//!   re-selects and swaps the materialized set when the workload drifts —
//!   identically over either backend. Every engine also carries a
//!   lock-free telemetry layer ([`core::MetricsHandle`], from
//!   `sofos-telemetry`): serve latency and freshness-lag histograms,
//!   maintenance pipeline timings, epoch lifecycle gauges, and a bounded
//!   event ring, exportable as JSON or Prometheus text via
//!   `engine.metrics().snapshot()`;
//! * [`telemetry`] — the dependency-free metrics substrate the engine
//!   embeds (counters, gauges, histograms, Prometheus rendering) plus the
//!   hand-rolled [`telemetry::Json`] value shared by the bench reports
//!   and the server's wire format;
//! * [`server`] — the serving tier: a hand-rolled HTTP/1.1 front door
//!   ([`server::serve`]) that shares one `Arc<Engine>` across a fixed
//!   worker pool. `POST /query` answers with route, results, and
//!   freshness tags; `POST /update` ingests N-Triples deltas;
//!   `GET /metrics` renders Prometheus text; `GET /healthz` reports
//!   engine state. Admission control refuses with `503 Retry-After`
//!   beyond a configurable in-flight depth (and pending-log cap), so
//!   overload degrades into fast rejections instead of unbounded
//!   queueing; `ServerHandle::shutdown` drains gracefully.
//!
//! See the individual crates for the subsystem documentation.

pub use sofos_core as core;
pub use sofos_cost as cost;
pub use sofos_cube as cube;
pub use sofos_maintain as maintain;
pub use sofos_materialize as materialize;
pub use sofos_rdf as rdf;
pub use sofos_rewrite as rewrite;
pub use sofos_select as select;
pub use sofos_server as server;
pub use sofos_sparql as sparql;
pub use sofos_store as store;
pub use sofos_telemetry as telemetry;
pub use sofos_workload as workload;
