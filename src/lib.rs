//! # SOFOS — facade crate
//!
//! Re-exports the full SOFOS workspace behind a single dependency, so a
//! downstream user can `cargo add sofos` and reach every subsystem:
//!
//! ```
//! use sofos::core::Sofos;          // the engine (offline + online modules)
//! use sofos::workload::dbpedia;    // dataset generators
//! use sofos::cost::CostModelKind;  // the six cost models
//! ```
//!
//! See the individual crates for the subsystem documentation:
//! [`rdf`], [`store`], [`sparql`], [`cube`], [`cost`], [`select`],
//! [`materialize`], [`rewrite`], [`workload`], [`core`].

pub use sofos_core as core;
pub use sofos_cost as cost;
pub use sofos_cube as cube;
pub use sofos_materialize as materialize;
pub use sofos_rdf as rdf;
pub use sofos_rewrite as rewrite;
pub use sofos_select as select;
pub use sofos_sparql as sparql;
pub use sofos_store as store;
pub use sofos_workload as workload;
