//! Cross-crate integration tests: the full SOFOS pipeline on each demo
//! dataset, plus the golden invariant — *view answers equal base answers* —
//! exercised across every lattice view, aggregate, and dataset.

use sofos::core::{results_equivalent, EngineConfig, Sofos};
use sofos::cost::CostModelKind;
use sofos::cube::{facet_query, Lattice};
use sofos::materialize::materialize_view;
use sofos::rewrite::{analyze_query, best_view, rewrite_query};
use sofos::sparql::Evaluator;
use sofos::workload::{
    dbpedia, derivable_aggs, generate_workload, lubm, swdf, GeneratedDataset, WorkloadConfig,
};

fn small_datasets() -> Vec<GeneratedDataset> {
    vec![
        dbpedia::generate(&dbpedia::Config {
            countries: 8,
            years: 2,
            languages: 6,
            ..dbpedia::Config::default()
        }),
        lubm::generate(&lubm::Config {
            universities: 2,
            max_departments: 3,
            ..lubm::Config::default()
        }),
        swdf::generate(&swdf::Config {
            conferences: 2,
            editions: 3,
            ..swdf::Config::default()
        }),
    ]
}

/// The golden invariant of the whole system: for every dataset, every view
/// in the lattice, and every derivable aggregate, a query rewritten against
/// the materialized view returns exactly the base-graph answer.
#[test]
fn rewritten_answers_equal_base_answers_everywhere() {
    for generated in small_datasets() {
        let facet = generated.default_facet().clone();
        let lattice = Lattice::new(facet.clone());
        let mut expanded = generated.dataset.clone();

        // Materialize the full lattice.
        let mut catalog = Vec::new();
        for mask in lattice.views() {
            let view = materialize_view(&mut expanded, &facet, mask).unwrap();
            catalog.push((mask, view.stats.rows));
        }

        let evaluator = Evaluator::new(&expanded);
        for group_mask in lattice.views() {
            for agg in derivable_aggs(&facet) {
                let query = facet_query(&facet, group_mask, agg, vec![]);
                let analysis = analyze_query(&facet, &query)
                    .unwrap_or_else(|e| panic!("{}: {e}", generated.name));
                // Answer from every covering view, not just the best one.
                for view in lattice.covering_views(analysis.required) {
                    let rewritten = rewrite_query(&facet, &analysis, view);
                    let from_view = evaluator.evaluate(&rewritten).unwrap();
                    let from_base = evaluator.evaluate(&query).unwrap();
                    assert!(
                        results_equivalent(&from_view, &from_base),
                        "{}: view {view} answers query over {group_mask} with {agg} wrongly\n\
                         view rows: {}, base rows: {}",
                        generated.name,
                        from_view.len(),
                        from_base.len(),
                    );
                }
                // And the routed best view agrees too.
                let best = best_view(&catalog, analysis.required).expect("full lattice covers");
                assert!(best.covers(analysis.required));
            }
        }
    }
}

/// Filtered queries must also be answered exactly from views.
#[test]
fn filtered_queries_validate_on_all_datasets() {
    for generated in small_datasets() {
        let sofos = Sofos::from_generated(&generated);
        let mut config = EngineConfig {
            workload: WorkloadConfig {
                num_queries: 15,
                filter_probability: 0.8,
                ..WorkloadConfig::default()
            },
            ..EngineConfig::default()
        };
        config.timing_reps = 1;
        let report = sofos
            .compare(&[CostModelKind::Triples, CostModelKind::AggValues], &config)
            .unwrap();
        for row in &report.models {
            assert!(
                row.all_valid,
                "{} on {}: some view answers were wrong",
                row.model, generated.name
            );
            assert!(
                row.view_hits > 0,
                "{}: no queries hit views",
                generated.name
            );
        }
    }
}

/// The full six-model comparison runs end to end on the DBpedia-like data
/// (the demo's main station) and produces coherent numbers.
#[test]
fn six_model_comparison_is_coherent() {
    let generated = dbpedia::generate(&dbpedia::Config {
        countries: 10,
        years: 2,
        ..dbpedia::Config::default()
    });
    let sofos = Sofos::from_generated(&generated);
    let mut config = EngineConfig::default();
    config.workload.num_queries = 12;
    config.timing_reps = 1;
    config.train.epochs = 25;
    let report = sofos.compare(&CostModelKind::ALL, &config).unwrap();

    assert_eq!(report.models.len(), 6);
    for row in &report.models {
        assert_eq!(row.selected_views.len(), 4, "{}", row.model);
        assert!(row.all_valid, "{}", row.model);
        assert!(row.storage_amplification >= 1.0);
        assert!(row.view_hits + row.fallbacks == report.queries);
    }
    // The table renders every model plus the baseline.
    let table = report.to_table();
    assert!(table.contains("(no views)"));
    for kind in CostModelKind::ALL {
        assert!(table.contains(kind.name()), "missing {kind}");
    }
}

/// Offline → online on the engine's own dataset (G becomes G+ in place).
#[test]
fn engine_expands_in_place() {
    let generated = swdf::generate(&swdf::Config::default());
    let mut sofos = Sofos::from_generated(&generated);
    let before = sofos.dataset().total_triples();
    let mut config = EngineConfig::default();
    config.workload.num_queries = 8;
    config.timing_reps = 1;
    let offline = sofos.offline(CostModelKind::Nodes, &config).unwrap();
    assert!(sofos.dataset().total_triples() > before, "G+ grew");
    assert_eq!(
        sofos.dataset().graph_names().len(),
        offline.materialized.len(),
        "one named graph per view"
    );

    let workload = generate_workload(sofos.dataset(), sofos.facet(), &config.workload);
    let online = sofos
        .online(&offline.view_catalog(), &workload, &config)
        .unwrap();
    assert!(online.all_valid);
}

/// Byte-budget selection materializes within the budget.
#[test]
fn byte_budget_end_to_end() {
    let generated = dbpedia::generate(&dbpedia::Config {
        countries: 8,
        years: 2,
        ..dbpedia::Config::default()
    });
    let mut sofos = Sofos::from_generated(&generated);
    let mut config = EngineConfig {
        timing_reps: 1,
        ..EngineConfig::default()
    };
    config.workload.num_queries = 6;
    // Budget: roughly enough for a few small views.
    config.budget = sofos::select::Budget::Bytes(4096);
    let offline = sofos.offline(CostModelKind::AggValues, &config).unwrap();
    let bytes: usize = offline.materialized.iter().map(|v| v.stats.bytes).sum();
    assert!(bytes <= 4096, "materialized {bytes} bytes > budget");
    assert!(!offline.materialized.is_empty(), "something fit the budget");
}

/// N-Triples export/import round-trips a generated dataset.
#[test]
fn generated_data_round_trips_through_ntriples() {
    let generated = swdf::generate(&swdf::Config {
        conferences: 1,
        editions: 2,
        max_papers_per_track: 3,
        ..swdf::Config::default()
    });
    // Export the default graph as N-Triples.
    let mut graph = sofos::rdf::Graph::new();
    let ds = &generated.dataset;
    for [s, p, o] in ds.default_graph().iter() {
        graph.insert(sofos::rdf::Triple::new_unchecked(
            ds.term(s).clone(),
            ds.term(p).clone(),
            ds.term(o).clone(),
        ));
    }
    let text = sofos::rdf::write_ntriples(&graph);
    let parsed = sofos::rdf::parse_ntriples(&text).unwrap();
    assert_eq!(parsed.len(), ds.default_graph().len());

    // Reload into a fresh dataset and check a count query agrees.
    let mut ds2 = sofos::store::Dataset::new();
    ds2.load(None, &parsed);
    let q = "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }";
    let n1 = Evaluator::new(ds).evaluate_str(q).unwrap();
    let n2 = Evaluator::new(&ds2).evaluate_str(q).unwrap();
    assert!(results_equivalent(&n1, &n2));
}

/// ViewMask masks reported by analysis match the query structure
/// (integration between workload generation and the rewriter).
#[test]
fn workload_analysis_agrees_with_generator_metadata() {
    let generated = dbpedia::generate(&dbpedia::Config::default());
    let facet = generated.default_facet();
    let workload = generate_workload(
        &generated.dataset,
        facet,
        &WorkloadConfig {
            num_queries: 25,
            filter_probability: 0.5,
            ..Default::default()
        },
    );
    for q in &workload {
        let analysis = analyze_query(facet, &q.query).expect("generated queries analyzable");
        assert_eq!(analysis.group_mask, q.group_mask, "{}", q.text);
        assert_eq!(analysis.required, q.required, "{}", q.text);
        assert_eq!(analysis.agg, q.agg);
    }
}

/// Exhaustive oracle beats or matches greedy on a real (small) instance.
#[test]
fn oracle_versus_greedy_on_real_data() {
    let generated = swdf::generate(&swdf::Config::default());
    let facet = generated.default_facet().clone();
    let sofos = Sofos::new(generated.dataset.clone(), facet.clone());
    let sized = sofos.size_lattice().unwrap();
    let ctx = sized.context();
    let profile = sofos::select::WorkloadProfile::uniform(&sized.lattice);
    let model = sofos::cost::AggValuesCost;
    for k in 1..=3 {
        let greedy = sofos::select::greedy_select(
            &ctx,
            &sized.lattice,
            &model,
            &profile,
            sofos::select::Budget::Views(k),
        );
        let oracle =
            sofos::select::exhaustive_select(&ctx, &sized.lattice, &model, &profile, k, 1_000_000)
                .expect("small lattice fits the exhaustive caps");
        assert!(
            oracle.estimated_cost <= greedy.estimated_cost + 1e-9,
            "k={k}"
        );
        // Greedy should be close (within the classic (1 - 1/e) regime it is
        // much closer in practice on these lattices).
        assert!(
            greedy.estimated_cost <= oracle.estimated_cost * 2.0,
            "k={k}: greedy {:.1} vs oracle {:.1}",
            greedy.estimated_cost,
            oracle.estimated_cost
        );
    }
}

/// The one front door, end to end: offline selection hands its catalog to
/// an `Engine`, which serves interleaved updates and queries identically
/// (and correctly) on both backends.
#[test]
fn engine_front_door_serves_both_backends() {
    use sofos::core::{Backend, Engine, StalenessPolicy};
    use sofos::rdf::Term;
    use sofos::store::Delta;

    let generated = sofos::workload::synthetic::generate(&sofos::workload::synthetic::Config {
        observations: 100,
        ..sofos::workload::synthetic::Config::default()
    });
    let facet = generated.default_facet().clone();
    let mut sofos = Sofos::new(generated.dataset.clone(), facet.clone());
    let mut config = EngineConfig::default();
    config.workload.num_queries = 8;
    config.timing_reps = 1;
    let offline = sofos.offline(CostModelKind::AggValues, &config).unwrap();
    let workload = generate_workload(sofos.dataset(), sofos.facet(), &config.workload);

    let delta = |batch: usize| {
        use sofos::workload::synthetic::NS;
        let mut delta = Delta::new();
        let node = Term::blank(format!("e2e{batch}"));
        for d in 0..3usize {
            delta.insert(
                node.clone(),
                Term::iri(format!("{NS}dim{d}")),
                Term::iri(format!("{NS}v{d}_{}", batch % 3)),
            );
        }
        delta.insert(
            node,
            Term::iri(format!("{NS}measure")),
            Term::literal_int(7 + batch as i64),
        );
        delta
    };

    for backend in [
        Backend::Serial,
        Backend::Epoch {
            shards: 4,
            threads: 2,
        },
    ] {
        let engine = Engine::builder()
            .dataset(sofos.dataset().clone())
            .facet(facet.clone())
            .catalog(offline.view_catalog())
            .staleness(StalenessPolicy::bounded(2, 1))
            .backend(backend)
            .build()
            .unwrap();
        for batch in 0..4 {
            engine.update(delta(batch)).unwrap();
            let q = &workload[batch % workload.len()];
            let answer = engine.query(&q.query).unwrap();
            assert!(
                answer.freshness.lag <= 1,
                "{backend}: bounded lag budget enforced"
            );
        }
        engine.flush().unwrap();
        let snapshot = engine.snapshot();
        let reference = Evaluator::new(&snapshot);
        for q in &workload {
            let answer = engine.query(&q.query).unwrap();
            let base = reference.evaluate(&q.query).unwrap();
            assert!(
                results_equivalent(&answer.results, &base),
                "{backend}: drained engine answers exactly for {}",
                q.text
            );
        }
        assert_eq!(engine.update_batches(), 4, "{backend}");
    }
}
