//! Integration tests for the RDFS-entailment substrate and multi-facet
//! catalogs: facets defined over *inferred* types must work after the
//! closure is materialized (the paper's "entailment … further complicate[s]
//! the direct adoption" point, made concrete).

use sofos::core::{results_equivalent, EngineConfig, Sofos};
use sofos::cost::CostModelKind;
use sofos::cube::{AggOp, Dimension, Facet, Lattice, ViewMask};
use sofos::materialize::materialize_view;
use sofos::rewrite::plan_rewrite;
use sofos::sparql::{Evaluator, GroupPattern, PatternTerm, TriplePattern};
use sofos::workload::lubm;

const NS: &str = "http://sofos.example/lubm/";

#[test]
fn closure_makes_professor_queries_complete() {
    let generated = lubm::generate(&lubm::Config::default());
    let mut ds = generated.dataset.clone();

    let evaluator_query = format!("SELECT ?p WHERE {{ ?p a <{NS}Professor> }}");
    let before = Evaluator::new(&ds).evaluate_str(&evaluator_query).unwrap();
    assert_eq!(before.len(), 0, "professors are typed by rank only");

    let stats = ds.materialize_rdfs();
    assert!(stats.inferred > 0);

    let after = Evaluator::new(&ds).evaluate_str(&evaluator_query).unwrap();
    let ranks = Evaluator::new(&ds)
        .evaluate_str(&format!(
            "SELECT ?p WHERE {{ \
               {{ ?p a <{NS}FullProfessor> }} UNION {{ ?p a <{NS}AssociateProfessor> }} \
               UNION {{ ?p a <{NS}AssistantProfessor> }} }}"
        ))
        .unwrap();
    assert_eq!(after.len(), ranks.len(), "closure covers every rank");
    assert!(after.len() > 3);
}

#[test]
fn facet_over_inferred_types_round_trips_through_views() {
    // Facet over `?prof a Professor` — empty without the closure, populated
    // with it; views must stay exact either way.
    let generated = lubm::generate(&lubm::Config::default());
    let mut ds = generated.dataset.clone();
    ds.materialize_rdfs();

    let pattern = GroupPattern::triples(vec![
        TriplePattern::new(
            PatternTerm::var("prof"),
            PatternTerm::iri(sofos_rdf::vocab::rdf::TYPE),
            PatternTerm::iri(format!("{NS}Professor")),
        ),
        TriplePattern::new(
            PatternTerm::var("pub"),
            PatternTerm::iri(format!("{NS}author")),
            PatternTerm::var("prof"),
        ),
        TriplePattern::new(
            PatternTerm::var("prof"),
            PatternTerm::iri(format!("{NS}worksFor")),
            PatternTerm::var("dept"),
        ),
        TriplePattern::new(
            PatternTerm::var("pub"),
            PatternTerm::iri(format!("{NS}pages")),
            PatternTerm::var("pages"),
        ),
    ]);
    let facet = Facet::new(
        "profpubs",
        vec![Dimension::new("prof"), Dimension::new("dept")],
        pattern,
        "pages",
        AggOp::Sum,
    )
    .unwrap();

    let lattice = Lattice::new(facet.clone());
    let mut catalog = Vec::new();
    for mask in lattice.views() {
        let view = materialize_view(&mut ds, &facet, mask).unwrap();
        catalog.push((mask, view.stats.rows));
    }
    let evaluator = Evaluator::new(&ds);
    for mask in lattice.views() {
        let query = sofos::cube::facet_query(&facet, mask, AggOp::Sum, vec![]);
        let (routed, rewritten) = plan_rewrite(&facet, &catalog, &query).unwrap();
        assert!(routed.covers(mask));
        let from_view = evaluator.evaluate(&rewritten).unwrap();
        let from_base = evaluator.evaluate(&query).unwrap();
        assert!(results_equivalent(&from_view, &from_base), "mask {mask}");
        assert!(!from_base.is_empty(), "inferred facet has data");
    }
}

#[test]
fn second_facet_runs_the_full_engine() {
    let generated = lubm::generate(&lubm::Config::default());
    assert_eq!(generated.facets.len(), 2, "lubm ships two facets");
    let count_facet = generated.facets[1].clone();
    assert_eq!(count_facet.id, "pubcount");
    assert_eq!(count_facet.agg, AggOp::Count);

    let sofos = Sofos::new(generated.dataset.clone(), count_facet);
    let mut config = EngineConfig::default();
    config.workload.num_queries = 10;
    config.timing_reps = 1;
    config.budget = sofos::select::Budget::Views(2);
    let report = sofos
        .compare(&[CostModelKind::Triples, CostModelKind::AggValues], &config)
        .unwrap();
    for row in &report.models {
        assert!(row.all_valid, "{}", row.model);
        assert_eq!(row.selected_views.len(), 2);
    }
}

#[test]
fn closure_then_facet_sizes_grow_monotonically() {
    // The closure only adds triples: every view of the rank-agnostic facet
    // must have at least as many rows after inference as before.
    let generated = lubm::generate(&lubm::Config::default());
    let facet = generated.default_facet().clone();
    let lattice = Lattice::new(facet.clone());

    let mut closed = generated.dataset.clone();
    closed.materialize_rdfs();

    for mask in [ViewMask::APEX, lattice.base()] {
        let plain =
            sofos::materialize::virtual_view_stats(&generated.dataset, &facet, mask).unwrap();
        let inferred = sofos::materialize::virtual_view_stats(&closed, &facet, mask).unwrap();
        assert!(inferred.rows >= plain.rows, "mask {mask}");
    }
}
