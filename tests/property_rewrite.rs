//! Property-based check of the system's golden invariant on *random*
//! observation graphs: for arbitrary data, any materialized view that
//! covers a query answers it identically to the base graph.

use proptest::prelude::*;
use sofos::core::results_equivalent;
use sofos::cube::{facet_query, AggOp, Dimension, Facet, Lattice, ViewMask};
use sofos::materialize::materialize_view;
use sofos::rewrite::{analyze_query, rewrite_query};
use sofos::sparql::{CompareOp, Evaluator, Expr, GroupPattern, PatternTerm, TriplePattern};
use sofos::store::Dataset;
use sofos_rdf::Term;

const NS: &str = "http://prop.example/";

/// One synthetic observation: dimension value indices + a measure.
#[derive(Debug, Clone)]
struct Obs {
    dims: Vec<u8>,
    measure: i64,
}

fn arb_observations(dim_count: usize) -> impl Strategy<Value = Vec<Obs>> {
    let obs = (proptest::collection::vec(0u8..4, dim_count), -50i64..50i64)
        .prop_map(|(dims, measure)| Obs { dims, measure });
    proptest::collection::vec(obs, 0..40)
}

fn build(dim_count: usize, observations: &[Obs], agg: AggOp) -> (Dataset, Facet) {
    let mut ds = Dataset::new();
    let measure_p = Term::iri(format!("{NS}measure"));
    for (i, obs) in observations.iter().enumerate() {
        let node = Term::blank(format!("o{i}"));
        for (d, &value) in obs.dims.iter().enumerate() {
            ds.insert(
                None,
                &node,
                &Term::iri(format!("{NS}dim{d}")),
                &Term::iri(format!("{NS}v{d}_{value}")),
            );
        }
        ds.insert(None, &node, &measure_p, &Term::literal_int(obs.measure));
    }
    let mut patterns = Vec::new();
    let mut dims = Vec::new();
    for d in 0..dim_count {
        patterns.push(TriplePattern::new(
            PatternTerm::var("o"),
            PatternTerm::iri(format!("{NS}dim{d}")),
            PatternTerm::var(format!("d{d}")),
        ));
        dims.push(Dimension::new(format!("d{d}")));
    }
    patterns.push(TriplePattern::new(
        PatternTerm::var("o"),
        PatternTerm::iri(format!("{NS}measure")),
        PatternTerm::var("m"),
    ));
    let facet = Facet::new("prop", dims, GroupPattern::triples(patterns), "m", agg)
        .expect("facet is well-formed by construction");
    (ds, facet)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random data × random view × random query mask × any aggregate:
    /// the rewritten answer equals the base answer.
    #[test]
    fn rewrite_equivalence_on_random_graphs(
        observations in arb_observations(3),
        view_bits in 0u64..8,
        query_bits in 0u64..8,
        agg_idx in 0usize..5,
        filter_dim in proptest::option::of(0usize..3),
    ) {
        let agg = AggOp::ALL[agg_idx];
        let (mut ds, facet) = build(3, &observations, agg);
        let lattice = Lattice::new(facet.clone());

        let query_mask = ViewMask(query_bits);
        let mut filters = Vec::new();
        let mut required = query_mask;
        if let Some(d) = filter_dim {
            // Filter on a value that may or may not exist in the data.
            filters.push(Expr::Compare(
                CompareOp::Eq,
                Box::new(Expr::var(format!("d{d}"))),
                Box::new(Expr::Const(Term::iri(format!("{NS}v{d}_1")))),
            ));
            required = required.with(d);
        }
        let view_mask = ViewMask(view_bits).union(required); // ensure coverage
        prop_assume!(view_mask.0 < lattice.num_views());

        materialize_view(&mut ds, &facet, view_mask).unwrap();

        let query = facet_query(&facet, query_mask, agg, filters);
        let analysis = analyze_query(&facet, &query).unwrap();
        prop_assert!(view_mask.covers(analysis.required));
        let rewritten = rewrite_query(&facet, &analysis, view_mask);

        let evaluator = Evaluator::new(&ds);
        let from_view = evaluator.evaluate(&rewritten).unwrap();
        let from_base = evaluator.evaluate(&query).unwrap();
        prop_assert!(
            results_equivalent(&from_view, &from_base),
            "agg {agg}, view {view_mask}, query {query_mask}: {} vs {} rows",
            from_view.len(),
            from_base.len()
        );
    }

    /// Materialized view sizes are consistent: rows ≤ triples, nodes ≥ 1
    /// when rows ≥ 1, and coarser views never have more rows than any
    /// parent (roll-up can only merge groups).
    #[test]
    fn lattice_sizing_invariants(
        observations in arb_observations(3),
    ) {
        prop_assume!(!observations.is_empty());
        let (ds, facet) = build(3, &observations, AggOp::Sum);
        let lattice = Lattice::new(facet.clone());
        for mask in lattice.views() {
            let stats = sofos::materialize::virtual_view_stats(&ds, &facet, mask).unwrap();
            prop_assert!(stats.rows <= stats.triples);
            if stats.rows > 0 {
                prop_assert!(stats.nodes > 0);
            }
            for parent in lattice.parents(mask) {
                let pstats =
                    sofos::materialize::virtual_view_stats(&ds, &facet, parent).unwrap();
                prop_assert!(
                    stats.rows <= pstats.rows,
                    "child {mask} has {} rows > parent {parent} {}",
                    stats.rows, pstats.rows
                );
            }
        }
    }
}
