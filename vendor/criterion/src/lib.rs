//! Offline API-subset shim of the `criterion` crate.
//!
//! Benches compile and run (`cargo bench`), printing a one-line
//! median/mean summary per benchmark to stdout. There is no statistical
//! analysis, HTML report, or baseline comparison — this shim exists so the
//! workspace's bench targets stay buildable and give rough numbers in an
//! offline environment. Iteration counts adapt to a ~200 ms budget per
//! benchmark; `CRITERION_QUICK=1` caps sampling at 10 iterations.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (the group name provides the prefix).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs one benchmark body repeatedly and records timings.
pub struct Bencher {
    samples_us: Vec<f64>,
}

impl Bencher {
    /// Time the closure: a few warmup runs, then as many timed iterations
    /// as fit in the budget.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        for _ in 0..2 {
            black_box(f());
        }
        let quick = std::env::var("CRITERION_QUICK").is_ok();
        let budget_us = if quick { 20_000.0 } else { 200_000.0 };
        let max_iters = if quick { 10 } else { 1_000_000 };
        let mut spent = 0.0;
        while spent < budget_us && self.samples_us.len() < max_iters {
            let start = Instant::now();
            black_box(f());
            let us = start.elapsed().as_nanos() as f64 / 1000.0;
            self.samples_us.push(us);
            spent += us;
        }
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Run one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut bencher = Bencher {
        samples_us: Vec::new(),
    };
    f(&mut bencher);
    let mut samples = bencher.samples_us;
    if samples.is_empty() {
        println!("bench {name:<40} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median = samples[samples.len() / 2];
    let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "bench {name:<40} median {median:>12.2} µs   mean {mean:>12.2} µs   ({} iters)",
        samples.len()
    );
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("shim/self_test", |b| b.iter(|| black_box(2 + 2)));
        let mut group = c.benchmark_group("shim/group");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1)));
        group.finish();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("load", 10).to_string(), "load/10");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
