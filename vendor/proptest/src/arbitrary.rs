//! `any::<T>()` for the types the workspace asks for.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (uniform over the whole domain; upstream's
/// edge-case biasing is not reproduced).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for a primitive.
#[derive(Debug, Clone, Copy)]
pub struct FullDomain<T>(std::marker::PhantomData<T>);

macro_rules! full_domain {
    ($($t:ty => $sample:expr),* $(,)?) => {$(
        impl Strategy for FullDomain<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $sample;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullDomain<$t>;
            fn arbitrary() -> FullDomain<$t> {
                FullDomain(std::marker::PhantomData)
            }
        }
    )*}
}

full_domain! {
    bool => |rng| rng.gen(),
    i64 => |rng| rng.gen(),
    u64 => |rng| rng.gen(),
    u32 => |rng| rng.gen(),
    usize => |rng| rng.gen(),
}
