//! `bool` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A fair coin.
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// The fair-coin strategy constant (`proptest::bool::ANY`).
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

/// `true` with the given probability.
pub fn weighted(probability_true: f64) -> Weighted {
    Weighted { probability_true }
}

/// The strategy returned by [`weighted`].
#[derive(Debug, Clone, Copy)]
pub struct Weighted {
    probability_true: f64,
}

impl Strategy for Weighted {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(self.probability_true)
    }
}
