//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Length specification for [`vec()`]: an exact length or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// A `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.min == self.size.max {
            self.size.min
        } else {
            rng.gen_range(self.size.min..=self.size.max)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
