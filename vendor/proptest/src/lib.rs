//! Offline API-subset shim of the `proptest` crate.
//!
//! Provides the strategy combinators and macros this workspace's property
//! tests use, with deterministic per-test RNG streams. Deliberate
//! differences from the real crate:
//!
//! * **no shrinking** — a failing case reports its case number and the
//!   generated inputs (via the assertion message), not a minimal
//!   counterexample;
//! * string strategies implement a small regex *subset*: character classes
//!   (with ranges and `\n`/`\t`/`\\` escapes), literals, groups, and the
//!   `{m}` / `{m,n}` / `?` / `*` / `+` repetitions;
//! * `PROPTEST_CASES` overrides the case count, like upstream.

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declare property tests. Supports an optional leading
/// `#![proptest_config(...)]`, doc comments / attributes per test, and
/// multiple `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config = $cfg;
            let cases = $crate::test_runner::resolve_cases(config.cases);
            let mut case: u32 = 0;
            let mut rejects: u32 = 0;
            while case < cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case as u64 + ((rejects as u64) << 32),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => case += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejects += 1;
                        assert!(
                            rejects < cases.saturating_mul(32) + 1024,
                            "proptest: too many rejected cases ({rejects})"
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {case} failed: {msg}");
                    }
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Assert inside a property test; failure aborts the case (not the
/// process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion with `Debug` output of both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), left, right, format!($($fmt)+)
        );
    }};
}

/// Inequality assertion with `Debug` output of both sides.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discard the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 3u32..10, (a, b) in (0i64..5, -2i64..=2)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0..5).contains(&a));
            prop_assert!((-2..=2).contains(&b));
        }

        #[test]
        fn maps_and_vecs(v in crate::collection::vec((0u32..4).prop_map(|x| x * 2), 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for x in v {
                prop_assert!(x % 2 == 0 && x < 8);
            }
        }

        #[test]
        fn string_regex(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }

        #[test]
        fn oneof_options_and_any(
            choice in prop_oneof![Just(1u8), Just(2u8)],
            opt in crate::option::of(0u32..3),
            flag in any::<bool>(),
            n in any::<i64>(),
        ) {
            prop_assert!(choice == 1 || choice == 2);
            if let Some(v) = opt {
                prop_assert!(v < 3);
            }
            let _ = (flag, n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]
        #[test]
        fn config_cases_respected(_x in 0u32..2) {
            // Runs exactly 7 times; nothing to assert beyond not exploding.
        }
    }

    #[test]
    fn assume_rejects_do_not_fail() {
        // No inner #[test] attribute: the generated fn is driven manually.
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assume!(x % 2 == 0);
                prop_assert!(x % 2 == 0);
            }
        }
        inner();
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_number() {
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
