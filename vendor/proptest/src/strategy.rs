//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type. Unlike the real proptest
/// there is no value tree / shrinking: `generate` draws a value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Type-erase the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among boxed strategies (see [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from at least one option.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*}
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// String literals are regex-subset strategies (see [`crate::string`]).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*}
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}
