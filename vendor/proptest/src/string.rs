//! Generation from a small regex subset (the `&str` strategy).
//!
//! Supported syntax — enough for every pattern in this workspace:
//! character classes `[a-z0-9 -~]` (ranges, literals, `\n`/`\t`/`\r`/`\\`
//! escapes), literal characters, groups `( ... )`, and the repetitions
//! `{m}`, `{m,n}`, `?`, `*`, `+` (`*`/`+` capped at 8 repeats).

use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Atom {
    /// One char drawn uniformly from the expanded class.
    Class(Vec<char>),
    /// A literal char.
    Literal(char),
    /// A nested sequence.
    Group(Vec<Repeated>),
}

#[derive(Debug, Clone)]
struct Repeated {
    atom: Atom,
    min: u32,
    max: u32,
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let seq = parse_seq(&mut pattern.chars().peekable(), pattern);
    let mut out = String::new();
    emit(&seq, rng, &mut out);
    out
}

fn emit(seq: &[Repeated], rng: &mut TestRng, out: &mut String) {
    for rep in seq {
        let n = if rep.min == rep.max {
            rep.min
        } else {
            rng.gen_range(rep.min..=rep.max)
        };
        for _ in 0..n {
            match &rep.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(chars) => out.push(chars[rng.gen_range(0..chars.len())]),
                Atom::Group(inner) => emit(inner, rng, out),
            }
        }
    }
}

type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn parse_seq(chars: &mut Chars<'_>, pattern: &str) -> Vec<Repeated> {
    let mut seq = Vec::new();
    while let Some(&c) = chars.peek() {
        if c == ')' {
            break;
        }
        chars.next();
        let atom = match c {
            '[' => Atom::Class(parse_class(chars, pattern)),
            '(' => {
                let inner = parse_seq(chars, pattern);
                assert_eq!(
                    chars.next(),
                    Some(')'),
                    "unclosed group in regex {pattern:?}"
                );
                Atom::Group(inner)
            }
            '\\' => Atom::Literal(unescape(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}")),
            )),
            '.' => Atom::Class((' '..='~').collect()),
            other => Atom::Literal(other),
        };
        let (min, max) = parse_repetition(chars, pattern);
        seq.push(Repeated { atom, min, max });
    }
    seq
}

fn parse_repetition(chars: &mut Chars<'_>, pattern: &str) -> (u32, u32) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    let (min, max) = match spec.split_once(',') {
                        Some((m, n)) => (parse_u32(m, pattern), parse_u32(n, pattern)),
                        None => {
                            let m = parse_u32(&spec, pattern);
                            (m, m)
                        }
                    };
                    assert!(min <= max, "bad repetition {{{spec}}} in regex {pattern:?}");
                    return (min, max);
                }
                spec.push(c);
            }
            panic!("unclosed repetition in regex {pattern:?}");
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn parse_u32(s: &str, pattern: &str) -> u32 {
    s.trim()
        .parse()
        .unwrap_or_else(|_| panic!("bad repetition bound {s:?} in regex {pattern:?}"))
}

fn parse_class(chars: &mut Chars<'_>, pattern: &str) -> Vec<char> {
    let mut items: Vec<char> = Vec::new();
    let mut out: Vec<char> = Vec::new();
    // Collect raw class members (escapes resolved), then expand ranges.
    loop {
        match chars.next() {
            None => panic!("unclosed character class in regex {pattern:?}"),
            Some(']') => break,
            Some('\\') => {
                items.push(unescape(chars.next().unwrap_or_else(|| {
                    panic!("dangling escape in class of regex {pattern:?}")
                })))
            }
            Some(c) => items.push(c),
        }
    }
    let mut i = 0;
    while i < items.len() {
        if items[i] == '-' && i > 0 && i + 1 < items.len() && !out.is_empty() {
            let lo = out.pop().expect("nonempty");
            let hi = items[i + 1];
            assert!(lo <= hi, "bad range {lo}-{hi} in regex {pattern:?}");
            out.extend(lo..=hi);
            i += 2;
        } else {
            out.push(items[i]);
            i += 1;
        }
    }
    assert!(
        !out.is_empty(),
        "empty character class in regex {pattern:?}"
    );
    out
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn gen_many(pattern: &str) -> Vec<String> {
        (0..200)
            .map(|i| {
                let mut rng = TestRng::for_case("string::tests", i);
                generate(pattern, &mut rng)
            })
            .collect()
    }

    #[test]
    fn classes_ranges_and_counts() {
        for s in gen_many("[a-z]{1,8}") {
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn printable_class_with_literal_dash_range() {
        for s in gen_many("[ -~]{0,12}") {
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn groups_with_repetition() {
        for s in gen_many("[a-z]{1,4}(/[0-9]{1,2}){0,2}") {
            let parts: Vec<&str> = s.split('/').collect();
            assert!((1..=3).contains(&parts.len()), "{s:?}");
            assert!(parts[0].chars().all(|c| c.is_ascii_lowercase()));
            for p in &parts[1..] {
                assert!((1..=2).contains(&p.len()) && p.chars().all(|c| c.is_ascii_digit()));
            }
        }
    }

    #[test]
    fn escapes_in_classes() {
        for s in gen_many("[ -~\\n\\t]{0,20}") {
            assert!(
                s.chars()
                    .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn exact_repetition_and_literals() {
        for s in gen_many("ab[0-1]{3}") {
            assert_eq!(s.len(), 5);
            assert!(s.starts_with("ab"));
            assert!(s[2..].chars().all(|c| c == '0' || c == '1'));
        }
    }
}
