//! Test configuration, RNG, and case errors.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Mirror of `proptest::test_runner::Config` for the fields the workspace
/// sets. Construct with functional-record-update from `default()`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required per test.
    pub cases: u32,
    /// Unused (shrinking is not implemented); kept for API compatibility.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Apply the `PROPTEST_CASES` environment override, like upstream.
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(configured).max(1),
        Err(_) => configured.max(1),
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// Assertion failure: aborts the whole test with this message.
    Fail(String),
    /// `prop_assume!` rejection: the case is discarded and retried.
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }

    /// A discarded case.
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Per-case RNG: deterministic from the test's module path and case index,
/// so failures are replayable by re-running the test binary.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for one case of one named test.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
