//! Offline API-subset shim of the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! exact slice of `rand 0.8`'s API the workspace uses — deterministic,
//! seedable, and fast. See `vendor/README.md` for the full inventory.

pub mod rngs;
pub mod seq;

/// Low-level entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`
    /// (uniform bits for integers, `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a (half-open or inclusive) range.
    /// Panics on empty ranges, like the real crate.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Deterministically construct an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draw one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// 53 uniform mantissa bits in `[0, 1)`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*}
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }
}
