//! Offline API-subset shim of `serde`.
//!
//! The workspace derives `serde::Serialize` on its report structures so a
//! downstream user "can plug any serializer" — nothing in the workspace
//! actually serializes. This shim keeps those derives compiling offline:
//! [`Serialize`] is a marker trait and the derive emits an empty impl.
//! Swapping in the real `serde` + `serde_derive` is a drop-in change.

/// Marker stand-in for `serde::Serialize`. Carries no methods; the real
/// crate's trait is a strict superset, so code written against this shim
/// keeps compiling when the real dependency is restored.
pub trait Serialize {}

pub use serde_derive::Serialize;

// Let the derive's emitted `impl ::serde::Serialize` resolve inside this
// crate's own tests.
#[cfg(test)]
extern crate self as serde;

#[cfg(test)]
mod tests {

    #[derive(Debug, Clone, serde::Serialize)]
    struct Report {
        #[allow(dead_code)]
        value: u64,
    }

    #[derive(Debug, serde::Serialize)]
    enum Kind {
        #[allow(dead_code)]
        A,
    }

    fn assert_serialize<T: serde::Serialize>() {}

    #[test]
    fn derive_emits_marker_impl() {
        assert_serialize::<Report>();
        assert_serialize::<Kind>();
    }
}
