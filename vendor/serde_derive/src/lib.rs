//! Derive macro backing the offline `serde` shim: emits an empty marker
//! `impl serde::Serialize` for the annotated type. Built with only the
//! compiler's `proc_macro` API (no `syn`/`quote` — registry is offline).

use proc_macro::{TokenStream, TokenTree};

/// `#[derive(Serialize)]` — emits `impl ::serde::Serialize for T {}`.
///
/// Handles plain (non-generic) structs and enums, which covers every type
/// in this workspace; a generic type gets no impl (still compiles, since
/// nothing in the workspace requires the bound).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut tokens = input.into_iter();
    // Scan for the `struct`/`enum` keyword, then take the following ident.
    while let Some(token) = tokens.next() {
        if let TokenTree::Ident(ident) = &token {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    // Bail out (no impl) for generic types.
                    if let Some(TokenTree::Punct(p)) = tokens.next() {
                        if p.as_char() == '<' {
                            return TokenStream::new();
                        }
                    }
                    return format!("impl ::serde::Serialize for {name} {{}}")
                        .parse()
                        .expect("generated impl parses");
                }
            }
        }
    }
    TokenStream::new()
}
